"""Snapshot-shipped replication: one WAL-owning writer, N read replicas.

The single-process daemon (PR 6) already separates *durability* (the
delta WAL) from *visibility* (epoch hot-swaps).  Replication stretches
that seam across processes: exactly one **writer** owns the WAL and the
re-estimation pipeline; every successful apply is published as a
**shipped snapshot** — the converged solution (reusing
:func:`~repro.runtime.checkpoint.save_solution`) plus a manifest that
carries the WAL fingerprint chain of the deltas it folded in.  **Read
replicas** share nothing with the writer but the ship directory: they
load snapshots, re-compose the fingerprint chain against their own
graph, and serve ``score``/``top`` from a local immutable
:class:`~repro.serve.epoch.Epoch`.  Because the shipped scores are the
writer's bytes and the serialization helpers are shared, a replica's
answer is bitwise-identical to the writer's — which is exactly what the
differential replica battery asserts through kills, lag and restarts.

Ship directory anatomy (all writes atomic, manifest last)::

    ship/
      CURRENT                 {"wal_seq": 7}        (atomic pointer)
      snap-0000000000/        the base epoch (empty segment)
        solution.npz
        manifest.json
      snap-0000000007/
        solution.npz          save_solution output (fsynced tmp+replace)
        manifest.json         fingerprint chain + CRCs, written LAST

A crash between ``solution.npz`` and ``manifest.json`` leaves a
manifest-less directory that loaders skip and the next ship overwrites;
a crash before ``CURRENT`` advances leaves replicas one epoch behind,
which the next refresh heals.  There is no window in which a replica
can observe a half-shipped epoch.

The manifest's ``segment`` is the WAL records (with their
``parent``/``after`` fingerprints) between the previous shipped
snapshot and this one — one record in steady state, several when
shipping was delayed.  A replica *replays the segment structurally* on
its own graph and requires the result to hash to the manifest's
fingerprint: the composed-fingerprint check from
:func:`~repro.serve.wal.plan_replay`, now running on the read side.
"""

from __future__ import annotations

import json
import os
import threading
import time
import zlib
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from ..core.mass import MassEstimates
from ..errors import (
    ReplicaGapError,
    ReplicationError,
    SnapshotIntegrityError,
    SnapshotMismatchError,
)
from ..obs import get_telemetry
from ..runtime.checkpoint import (
    SOLUTION_FILENAME,
    load_solution,
    save_solution,
)
from ..runtime.supervisor import TaskSupervisor
from .epoch import Epoch, score_from_epoch, top_from_epoch
from .wal import WalRecord

__all__ = [
    "SnapshotManifest",
    "ShippedSnapshot",
    "ship_snapshot",
    "load_snapshot",
    "list_manifests",
    "read_current",
    "ReplicatedWriter",
    "ReadReplica",
    "ReplicaSet",
]

PathLike = Union[str, Path]

MANIFEST_FILENAME = "manifest.json"
CURRENT_FILENAME = "CURRENT"
SNAP_PREFIX = "snap-"
MANIFEST_SCHEMA = 1


def snap_dirname(wal_seq: int) -> str:
    """Directory name of the snapshot at WAL position ``wal_seq``."""
    return f"{SNAP_PREFIX}{int(wal_seq):010d}"


def _atomic_write_json(path: Path, payload: dict, *, fsync: bool) -> None:
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(payload, separators=(",", ":")))
        fh.flush()
        if fsync:
            os.fsync(fh.fileno())
    os.replace(tmp, path)


class SnapshotManifest:
    """The metadata of one shipped snapshot: chain, checksums, params.

    ``parent`` is the graph fingerprint of the *previous shipped
    snapshot* (empty for the base), ``fingerprint`` the graph this
    snapshot's scores solve, and ``segment`` the WAL records composing
    ``parent`` into ``fingerprint``.  ``solution_crc``/``solution_bytes``
    pin the exact ``solution.npz`` the manifest vouches for.
    """

    __slots__ = (
        "wal_seq",
        "epoch",
        "fingerprint",
        "parent",
        "segment",
        "damping",
        "gamma",
        "solution_crc",
        "solution_bytes",
    )

    def __init__(
        self,
        *,
        wal_seq: int,
        epoch: int,
        fingerprint: str,
        parent: str,
        segment: Sequence[WalRecord],
        damping: float,
        gamma: Optional[float],
        solution_crc: int,
        solution_bytes: int,
    ) -> None:
        self.wal_seq = int(wal_seq)
        self.epoch = int(epoch)
        self.fingerprint = str(fingerprint)
        self.parent = str(parent)
        self.segment = list(segment)
        self.damping = float(damping)
        self.gamma = None if gamma is None else float(gamma)
        self.solution_crc = int(solution_crc)
        self.solution_bytes = int(solution_bytes)

    def to_payload(self) -> dict:
        body = {
            "schema": MANIFEST_SCHEMA,
            "wal_seq": self.wal_seq,
            "epoch": self.epoch,
            "fingerprint": self.fingerprint,
            "parent": self.parent,
            "segment": [
                {
                    "seq": r.seq,
                    "parent": r.parent,
                    "after": r.after,
                    "ins": [[u, v] for u, v in r.insertions],
                    "dels": [[u, v] for u, v in r.deletions],
                }
                for r in self.segment
            ],
            "damping": self.damping,
            "gamma": self.gamma,
            "solution_crc": self.solution_crc,
            "solution_bytes": self.solution_bytes,
        }
        canonical = json.dumps(body, separators=(",", ":"), sort_keys=True)
        body["crc"] = zlib.crc32(canonical.encode("utf-8"))
        return body

    @classmethod
    def from_payload(cls, payload: dict, *, source: str) -> "SnapshotManifest":
        try:
            crc = int(payload.pop("crc"))
            canonical = json.dumps(
                payload, separators=(",", ":"), sort_keys=True
            )
            if crc != zlib.crc32(canonical.encode("utf-8")):
                raise SnapshotIntegrityError(
                    f"{source}: manifest checksum mismatch — the file "
                    "was corrupted after it was shipped"
                )
            if int(payload["schema"]) != MANIFEST_SCHEMA:
                raise SnapshotIntegrityError(
                    f"{source}: manifest schema "
                    f"{payload['schema']!r} is not {MANIFEST_SCHEMA}"
                )
            segment = [
                WalRecord(
                    int(r["seq"]),
                    str(r["parent"]),
                    str(r["after"]),
                    [(int(u), int(v)) for u, v in r["ins"]],
                    [(int(u), int(v)) for u, v in r["dels"]],
                )
                for r in payload["segment"]
            ]
            return cls(
                wal_seq=int(payload["wal_seq"]),
                epoch=int(payload["epoch"]),
                fingerprint=str(payload["fingerprint"]),
                parent=str(payload["parent"]),
                segment=segment,
                damping=float(payload["damping"]),
                gamma=payload["gamma"],
                solution_crc=int(payload["solution_crc"]),
                solution_bytes=int(payload["solution_bytes"]),
            )
        except SnapshotIntegrityError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotIntegrityError(
                f"{source}: manifest is malformed ({exc})"
            ) from exc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SnapshotManifest(wal_seq={self.wal_seq}, "
            f"epoch={self.epoch}, segment={len(self.segment)})"
        )


class ShippedSnapshot:
    """One fully verified shipped snapshot: manifest + score vectors."""

    __slots__ = ("manifest", "pagerank", "core_pagerank", "path")

    def __init__(
        self,
        manifest: SnapshotManifest,
        pagerank: np.ndarray,
        core_pagerank: np.ndarray,
        path: Path,
    ) -> None:
        self.manifest = manifest
        self.pagerank = pagerank
        self.core_pagerank = core_pagerank
        self.path = path

    def estimates(self) -> MassEstimates:
        return MassEstimates(
            self.pagerank.copy(),
            self.core_pagerank.copy(),
            self.manifest.damping,
            self.manifest.gamma,
        )


# ----------------------------------------------------------------------
# shipping (writer side)
# ----------------------------------------------------------------------


def ship_snapshot(
    ship_dir: PathLike,
    *,
    epoch: Epoch,
    parent: str,
    segment: Sequence[WalRecord],
    fsync: bool = True,
    pre_manifest: Optional[Callable[[], None]] = None,
) -> Path:
    """Publish one epoch into the ship directory; returns its path.

    Write order is the crash contract: ``solution.npz`` first (atomic
    via :func:`save_solution`), then the manifest (atomic, *last* — a
    snapshot directory without a manifest does not exist as far as
    loaders are concerned), then the ``CURRENT`` pointer.
    ``pre_manifest`` is the chaos injection point sitting exactly in
    the kill-mid-ship window.
    """
    ship_dir = Path(ship_dir)
    est = epoch.estimates
    snap_dir = ship_dir / snap_dirname(epoch.wal_seq)
    solution_path = save_solution(
        snap_dir,
        np.stack([est.pagerank, est.core_pagerank], axis=1),
        fingerprint=epoch.fingerprint,
        extra={
            "damping": est.damping,
            "gamma": est.gamma,
            "labels": ["pagerank", "core"],
            "wal_seq": epoch.wal_seq,
        },
    )
    if pre_manifest is not None:
        pre_manifest()
    raw = solution_path.read_bytes()
    manifest = SnapshotManifest(
        wal_seq=epoch.wal_seq,
        epoch=epoch.seq,
        fingerprint=epoch.fingerprint,
        parent=parent,
        segment=segment,
        damping=est.damping,
        gamma=est.gamma,
        solution_crc=zlib.crc32(raw) & 0xFFFFFFFF,
        solution_bytes=len(raw),
    )
    _atomic_write_json(
        snap_dir / MANIFEST_FILENAME, manifest.to_payload(), fsync=fsync
    )
    _atomic_write_json(
        ship_dir / CURRENT_FILENAME,
        {"wal_seq": epoch.wal_seq},
        fsync=fsync,
    )
    tele = get_telemetry()
    if tele.enabled:
        tele.inc("replica.ships")
        tele.event(
            "replica.ship",
            wal_seq=epoch.wal_seq,
            epoch=epoch.seq,
            segment=len(manifest.segment),
            bytes=manifest.solution_bytes,
        )
    return snap_dir


def read_current(ship_dir: PathLike) -> Optional[int]:
    """The shipped tip's WAL position; ``None`` when nothing shipped.

    A torn ``CURRENT`` (crash mid-replace cannot happen — ``os.replace``
    is atomic — but a hand-edited or zeroed file can) falls back to the
    newest directory holding a manifest rather than failing reads.
    """
    ship_dir = Path(ship_dir)
    path = ship_dir / CURRENT_FILENAME
    if path.exists():
        try:
            return int(
                json.loads(path.read_text(encoding="utf-8"))["wal_seq"]
            )
        except (ValueError, KeyError, OSError):
            pass
    candidates = [
        seq for seq, d in _snap_dirs(ship_dir)
        if (d / MANIFEST_FILENAME).exists()
    ]
    return max(candidates) if candidates else None


def _snap_dirs(ship_dir: Path) -> List:
    out = []
    if not ship_dir.exists():
        return out
    for entry in ship_dir.iterdir():
        if entry.is_dir() and entry.name.startswith(SNAP_PREFIX):
            try:
                out.append((int(entry.name[len(SNAP_PREFIX):]), entry))
            except ValueError:
                continue
    out.sort()
    return out


def read_manifest(snap_dir: PathLike) -> SnapshotManifest:
    """Load and checksum-verify one snapshot's manifest."""
    snap_dir = Path(snap_dir)
    path = snap_dir / MANIFEST_FILENAME
    if not path.exists():
        raise SnapshotIntegrityError(
            f"{snap_dir}: no manifest — the snapshot was never fully "
            "shipped (crash mid-ship) or the directory is foreign"
        )
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(payload, dict):
            raise ValueError("manifest must be a JSON object")
    except (ValueError, OSError) as exc:
        raise SnapshotIntegrityError(
            f"{path}: manifest is unreadable ({exc})"
        ) from exc
    return SnapshotManifest.from_payload(payload, source=str(path))


def list_manifests(
    ship_dir: PathLike, *, after: int = -1, upto: Optional[int] = None
) -> List[SnapshotManifest]:
    """Verified manifests with ``after < wal_seq <= upto``, in order.

    Manifest-less directories (torn ships) are skipped; a *corrupt*
    manifest raises — skipping interior history would silently break
    the chain, the same rule the WAL applies to its segment.
    """
    manifests = []
    for seq, snap_dir in _snap_dirs(Path(ship_dir)):
        if seq <= after or (upto is not None and seq > upto):
            continue
        if not (snap_dir / MANIFEST_FILENAME).exists():
            continue
        manifests.append(read_manifest(snap_dir))
    return manifests


def load_snapshot(
    ship_dir: PathLike, wal_seq: int
) -> ShippedSnapshot:
    """Load one shipped snapshot, verifying every integrity guard.

    Everything is validated *before* a :class:`ShippedSnapshot` is
    constructed — manifest checksum, solution byte count and CRC, the
    stored fingerprint, score finiteness — so a caller can never hold
    a partially-valid snapshot.
    """
    ship_dir = Path(ship_dir)
    snap_dir = ship_dir / snap_dirname(wal_seq)
    manifest = read_manifest(snap_dir)
    solution_path = snap_dir / SOLUTION_FILENAME
    if not solution_path.exists():
        raise SnapshotIntegrityError(
            f"{snap_dir}: manifest present but {SOLUTION_FILENAME} is "
            "missing — the snapshot was pruned or tampered with"
        )
    raw = solution_path.read_bytes()
    if len(raw) != manifest.solution_bytes:
        raise SnapshotIntegrityError(
            f"{solution_path}: {len(raw)} bytes on disk, manifest "
            f"promises {manifest.solution_bytes} — truncated snapshot"
        )
    if (zlib.crc32(raw) & 0xFFFFFFFF) != manifest.solution_crc:
        raise SnapshotIntegrityError(
            f"{solution_path}: solution checksum mismatch — the scores "
            "were corrupted after shipping"
        )
    try:
        snapshot = load_solution(snap_dir, fingerprint=manifest.fingerprint)
    except SnapshotMismatchError:
        raise
    except Exception as exc:  # CheckpointError and below
        raise SnapshotIntegrityError(
            f"{solution_path}: unreadable solution ({exc})"
        ) from exc
    scores = snapshot.scores
    if scores.ndim != 2 or scores.shape[1] != 2:
        raise SnapshotIntegrityError(
            f"{solution_path}: expected an (n, 2) score matrix, got "
            f"shape {scores.shape}"
        )
    tele = get_telemetry()
    if tele.enabled:
        tele.inc("replica.snapshot_loads")
    return ShippedSnapshot(
        manifest, scores[:, 0], scores[:, 1], snap_dir
    )


def prune_snapshots(ship_dir: PathLike, *, keep: int = 8) -> int:
    """Drop the *score files* of all but the newest ``keep`` snapshots.

    Manifests are always retained: they are tiny and they ARE the delta
    chain a restarted replica replays from its base.  Returns how many
    solution files were removed.
    """
    if keep < 1:
        raise ValueError("keep must be >= 1")
    dirs = [
        (seq, d) for seq, d in _snap_dirs(Path(ship_dir))
        if (d / MANIFEST_FILENAME).exists()
    ]
    removed = 0
    for _, snap_dir in dirs[: max(0, len(dirs) - keep)]:
        solution = snap_dir / SOLUTION_FILENAME
        if solution.exists():
            solution.unlink()
            removed += 1
    return removed


# ----------------------------------------------------------------------
# the WAL-owning writer
# ----------------------------------------------------------------------


class ReplicatedWriter:
    """Ships every applied epoch of one :class:`ScoringDaemon`.

    There is exactly one writer per ship directory — it owns the WAL
    through the daemon and is the only process that ever writes
    snapshots.  It hooks ``daemon.on_apply``: after a successful apply
    the new epoch is shipped with the WAL records accumulated since the
    last ship as its segment (one in steady state; several after a
    delayed or failed ship).  Ship failures never fail the apply — the
    records stay queued and :meth:`ship_pending` retries.

    On construction the writer reconciles with an existing ship
    directory (the restart path): a shipped tip at the daemon's current
    WAL position with a matching fingerprint is adopted; a tip *behind*
    the daemon means the crash hit between apply and ship, and the gap
    is re-composed from the daemon's WAL — if the WAL was pruned past
    the tip, :class:`~repro.errors.ReplicaGapError` tells the operator
    to clear the ship directory.
    """

    def __init__(
        self,
        daemon,
        ship_dir: PathLike,
        *,
        keep: int = 8,
        fsync: bool = True,
        chaos=None,
    ) -> None:
        self.daemon = daemon
        self.ship_dir = Path(ship_dir)
        self.keep = keep
        self.fsync = fsync
        self.chaos = chaos
        self._lock = threading.Lock()
        self._unshipped: List[WalRecord] = []
        self.ships = 0
        self.ship_failures = 0
        self.delayed = 0
        self._reconcile()
        daemon.on_apply = self._on_apply

    # -- construction ---------------------------------------------------

    def _reconcile(self) -> None:
        current = self.daemon.store.current
        tip = read_current(self.ship_dir)
        if tip is None:
            self._shipped_fp = ""
            self._shipped_seq = -1
            self._ship(current, segment=[])
            return
        if tip == current.wal_seq:
            manifest = read_manifest(self.ship_dir / snap_dirname(tip))
            if manifest.fingerprint != current.fingerprint:
                raise SnapshotMismatchError(
                    f"ship directory {self.ship_dir} tip (wal seq {tip}) "
                    f"has fingerprint {manifest.fingerprint!r} but the "
                    f"daemon's epoch is {current.fingerprint!r}; the "
                    "directory belongs to a different history",
                    expected=current.fingerprint,
                    actual=manifest.fingerprint,
                )
            self._shipped_fp = manifest.fingerprint
            self._shipped_seq = tip
            return
        if tip > current.wal_seq:
            raise ReplicationError(
                f"ship directory {self.ship_dir} tip is at wal seq "
                f"{tip}, ahead of the daemon's {current.wal_seq}; "
                "another writer owns this directory"
            )
        # tip < current: crash between apply and ship — re-compose the
        # missing segment from the WAL and ship the current epoch
        manifest = read_manifest(self.ship_dir / snap_dirname(tip))
        if self.daemon.wal is None:
            raise ReplicaGapError(
                f"ship tip (wal seq {tip}) is behind the daemon "
                f"({current.wal_seq}) and there is no WAL to re-compose "
                "the segment from; clear the ship directory"
            )
        records, _ = self.daemon.wal.recover()
        segment = [
            r for r in records if tip < r.seq <= current.wal_seq
        ]
        if (
            len(segment) != current.wal_seq - tip
            or (segment and segment[0].parent != manifest.fingerprint)
        ):
            raise ReplicaGapError(
                f"the WAL cannot compose wal seqs ({tip}, "
                f"{current.wal_seq}] onto the shipped tip (pruned past "
                "the ship point?); clear the ship directory and let the "
                "writer re-ship from the current base"
            )
        self._shipped_fp = manifest.fingerprint
        self._shipped_seq = tip
        self._ship(current, segment=segment)

    # -- shipping -------------------------------------------------------

    def _on_apply(
        self, epoch: Epoch, records: Sequence[WalRecord]
    ) -> None:
        # one hook call per apply; a coalesced apply delivers every WAL
        # record its composed splice consumed, so the shipped segment
        # still chains record-by-record to the epoch fingerprint
        with self._lock:
            self._unshipped.extend(records)
            if self.chaos is not None and self.chaos.should_delay_ship(
                records[-1].seq
            ):
                self.delayed += 1
                tele = get_telemetry()
                if tele.enabled:
                    tele.event(
                        "replica.ship_delayed", wal_seq=records[-1].seq
                    )
                return
            self._ship_locked(epoch)

    def ship_pending(self) -> bool:
        """Retry shipping after a delay/failure; True when the tip moved.

        Also the force-reship hook: with nothing pending and the tip
        already shipped this is a no-op.
        """
        with self._lock:
            if not self._unshipped:
                return False
            return self._ship_locked(self.daemon.store.current)

    def reship_tip(self) -> Path:
        """Overwrite the shipped tip in place (corruption recovery)."""
        with self._lock:
            current = self.daemon.store.current
            manifest = read_manifest(
                self.ship_dir / snap_dirname(self._shipped_seq)
            ) if self._shipped_seq >= 0 else None
            segment = manifest.segment if manifest is not None else []
            parent = manifest.parent if manifest is not None else ""
            return ship_snapshot(
                self.ship_dir,
                epoch=current,
                parent=parent,
                segment=segment,
                fsync=self.fsync,
            )

    def _ship_locked(self, epoch: Epoch) -> bool:
        segment = list(self._unshipped)
        try:
            self._ship(epoch, segment=segment)
        except Exception as exc:  # noqa: BLE001 - retried by ship_pending
            self.ship_failures += 1
            tele = get_telemetry()
            if tele.enabled:
                tele.inc("replica.ship_failures")
                tele.event(
                    "replica.ship_failed",
                    wal_seq=epoch.wal_seq,
                    error=type(exc).__name__,
                )
            return False
        self._unshipped.clear()
        return True

    def _ship(self, epoch: Epoch, *, segment: List[WalRecord]) -> None:
        pre_manifest = None
        if self.chaos is not None:
            seq = epoch.wal_seq
            pre_manifest = lambda: self.chaos.before_ship(seq)  # noqa: E731
        ship_snapshot(
            self.ship_dir,
            epoch=epoch,
            parent=self._shipped_fp,
            segment=segment,
            fsync=self.fsync,
            pre_manifest=pre_manifest,
        )
        self._shipped_fp = epoch.fingerprint
        self._shipped_seq = epoch.wal_seq
        self.ships += 1
        if self.keep:
            prune_snapshots(self.ship_dir, keep=self.keep)

    @property
    def shipped_seq(self) -> int:
        """WAL position of the shipped tip (-1 before the base ship)."""
        return self._shipped_seq

    @property
    def pending(self) -> int:
        """Applied-but-unshipped WAL records (0 in steady state)."""
        return len(self._unshipped)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReplicatedWriter(tip={self._shipped_seq}, "
            f"pending={self.pending}, ships={self.ships})"
        )


# ----------------------------------------------------------------------
# read replicas
# ----------------------------------------------------------------------


class ReadReplica:
    """One reader: its own graph chain, scores loaded from the ship dir.

    A replica shares *nothing* mutable with the writer — its only input
    is the ship directory.  ``refresh()`` walks new manifests in WAL
    order, verifies the composed fingerprint chain by replaying each
    segment on its own graph, loads the tip's scores under the full
    integrity battery, and swaps its local epoch in one assignment.
    Any verification failure leaves the previous epoch serving — a
    replica can be *stale*, never *torn*.

    Queries are served through the same payload helpers the writer
    uses (:func:`~repro.serve.epoch.score_from_epoch`), so byte-equal
    inputs produce byte-equal answers.
    """

    def __init__(
        self,
        name: str,
        ship_dir: PathLike,
        base_graph,
        *,
        core: Optional[np.ndarray] = None,
        lookup: Optional[Dict[str, int]] = None,
        chaos=None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.name = str(name)
        self.ship_dir = Path(ship_dir)
        self.core = None if core is None else np.asarray(core, np.int64)
        self.chaos = chaos
        self._clock = clock
        self._graph = base_graph
        self._fingerprint = base_graph.structural_fingerprint()
        self._lookup = (
            lookup
            if lookup is not None
            else {
                base_graph.name_of(i): i
                for i in range(base_graph.num_nodes)
            }
        )
        self._epoch: Optional[Epoch] = None
        self._wal_seq = -1
        self.alive = True
        self.dead_reason: Optional[str] = None
        self.refreshes = 0
        self.loads = 0

    # -- state ----------------------------------------------------------

    @property
    def wal_seq(self) -> int:
        """WAL position of the serving epoch (-1 before the first load)."""
        return self._wal_seq

    @property
    def fingerprint(self) -> str:
        return self._fingerprint

    @property
    def epoch(self) -> Optional[Epoch]:
        """The local serving epoch (one atomic pointer read)."""
        return self._epoch

    @property
    def ready(self) -> bool:
        return self.alive and self._epoch is not None

    def kill(self, reason: str = "killed") -> None:
        """Simulate the replica process dying (chaos / tests)."""
        self.alive = False
        self.dead_reason = reason
        tele = get_telemetry()
        if tele.enabled:
            tele.event("replica.dead", replica=self.name, reason=reason)

    # -- refresh --------------------------------------------------------

    def refresh(self) -> int:
        """Catch up to the shipped tip; returns snapshots advanced.

        Raises a :class:`~repro.errors.ReplicationError` subclass (or
        :class:`~repro.errors.SnapshotMismatchError`) on a bad snapshot
        — the local epoch is untouched and still serving.  Any *other*
        exception (the chaos kill, an OS-level failure) marks the
        replica dead before propagating: the router routes around it
        and the set restarts it.
        """
        if not self.alive:
            raise ReplicationError(
                f"replica {self.name} is dead ({self.dead_reason})"
            )
        self.refreshes += 1
        try:
            return self._refresh_inner()
        except (ReplicationError, SnapshotMismatchError):
            raise
        except Exception as exc:
            self.kill(f"{type(exc).__name__}: {exc}")
            raise

    def _refresh_inner(self) -> int:
        target = read_current(self.ship_dir)
        if target is None or target <= self._wal_seq:
            return 0
        manifests = list_manifests(
            self.ship_dir, after=self._wal_seq, upto=target
        )
        if not manifests or manifests[-1].wal_seq != target:
            raise SnapshotIntegrityError(
                f"replica {self.name}: CURRENT points at wal seq "
                f"{target} but no complete snapshot is shipped there"
            )
        graph = self._graph
        fingerprint = self._fingerprint
        advanced = 0
        for manifest in manifests:
            if self.chaos is not None:
                self.chaos.before_replica_load(self.name, manifest.wal_seq)
            graph, fingerprint = self._advance(graph, fingerprint, manifest)
            advanced += 1
        snapshot = load_snapshot(self.ship_dir, target)
        estimates = snapshot.estimates()
        if len(estimates.pagerank) != graph.num_nodes:
            raise SnapshotIntegrityError(
                f"replica {self.name}: snapshot at wal seq {target} has "
                f"{len(estimates.pagerank)} scores for a "
                f"{graph.num_nodes}-node graph"
            )
        epoch = Epoch(
            snapshot.manifest.epoch,
            graph,
            estimates,
            wal_seq=target,
            lookup=self._lookup,
            clock=self._clock,
        )
        # single-assignment swap: readers see the old epoch or the new
        # one, never an intermediate
        self._epoch = epoch
        self._graph = graph
        self._fingerprint = fingerprint
        self._wal_seq = target
        self.loads += 1
        tele = get_telemetry()
        if tele.enabled:
            tele.inc("replica.loads")
            tele.event(
                "replica.load",
                replica=self.name,
                wal_seq=target,
                epoch=epoch.seq,
                advanced=advanced,
            )
        return advanced

    def _advance(self, graph, fingerprint: str, manifest: SnapshotManifest):
        """Replay one manifest's segment; verify the composed chain."""
        if manifest.parent and manifest.parent != fingerprint:
            raise ReplicaGapError(
                f"replica {self.name}: snapshot at wal seq "
                f"{manifest.wal_seq} chains from {manifest.parent!r} "
                f"but the replica's graph is at {fingerprint!r} — a "
                "snapshot in between was pruned or never shipped"
            )
        if not manifest.segment:
            if manifest.fingerprint != fingerprint:
                raise SnapshotMismatchError(
                    f"replica {self.name}: base snapshot fingerprint "
                    f"{manifest.fingerprint!r} does not match the "
                    f"replica's graph {fingerprint!r} (wrong world?)",
                    expected=fingerprint,
                    actual=manifest.fingerprint,
                )
            return graph, fingerprint
        for record in manifest.segment:
            if record.parent != fingerprint:
                raise ReplicaGapError(
                    f"replica {self.name}: wal record seq {record.seq} "
                    f"chains from {record.parent!r}, replica graph is "
                    f"at {fingerprint!r}"
                )
            graph = record.delta().apply(graph).after
            fingerprint = graph.structural_fingerprint()
            if fingerprint != record.after:
                raise SnapshotMismatchError(
                    f"replica {self.name}: replaying wal seq "
                    f"{record.seq} composed to {fingerprint!r}, record "
                    f"promises {record.after!r}",
                    expected=record.after,
                    actual=fingerprint,
                )
        if fingerprint != manifest.fingerprint:
            raise SnapshotMismatchError(
                f"replica {self.name}: segment of snapshot at wal seq "
                f"{manifest.wal_seq} composed to {fingerprint!r}, "
                f"manifest promises {manifest.fingerprint!r}",
                expected=manifest.fingerprint,
                actual=fingerprint,
            )
        return graph, fingerprint

    # -- queries --------------------------------------------------------

    def _serving_epoch(self) -> Epoch:
        epoch = self._epoch
        if not self.alive or epoch is None:
            raise ReplicationError(
                f"replica {self.name} is not serving "
                f"({'dead: ' + str(self.dead_reason) if not self.alive else 'no epoch loaded'})"
            )
        return epoch

    def _meta(self, epoch: Epoch) -> dict:
        return {
            "epoch": epoch.seq,
            "fingerprint": epoch.fingerprint,
            "wal_seq": epoch.wal_seq,
            "replica": self.name,
        }

    def query_score(self, host: str) -> dict:
        epoch = self._serving_epoch()
        return {**score_from_epoch(epoch, host), **self._meta(epoch)}

    def query_top(self, k: int = 10, *, tau: float, rho: float) -> dict:
        epoch = self._serving_epoch()
        return {
            **top_from_epoch(epoch, k, tau=tau, rho=rho),
            **self._meta(epoch),
        }

    def query_explain(self, host: str, *, top: int = 10) -> dict:
        """Contribution breakdown — only on a replica carrying a core."""
        from ..core.explain import explain_mass

        if self.core is None:
            raise ReplicationError(
                f"replica {self.name} has no good core and cannot "
                "serve explain"
            )
        epoch = self._serving_epoch()
        node = epoch.lookup.get(host)
        if node is None:
            raise KeyError(host)
        explanation = explain_mass(
            epoch.graph,
            int(node),
            self.core,
            damping=epoch.estimates.damping,
            top=top,
        )
        return {
            "host": host,
            "text": explanation.render(epoch.graph),
            **self._meta(epoch),
        }

    def health(self) -> dict:
        return {
            "replica": self.name,
            "alive": self.alive,
            "ready": self.ready,
            "dead_reason": self.dead_reason,
            "wal_seq": self._wal_seq,
            "fingerprint": self._fingerprint,
            "loads": self.loads,
            "refreshes": self.refreshes,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReadReplica({self.name!r}, wal_seq={self._wal_seq}, "
            f"alive={self.alive})"
        )


class ReplicaSet:
    """Spawns and restarts replicas under the task supervisor.

    Bootstrapping a replica is a supervised task — construct, refresh
    to the shipped tip, verify — run through
    :class:`~repro.runtime.supervisor.TaskSupervisor`, so a transient
    ship-directory race is retried with backoff and a persistent
    failure surfaces as a :class:`~repro.errors.SupervisionError`
    instead of a half-spawned fleet.
    """

    def __init__(
        self,
        ship_dir: PathLike,
        base_graph,
        *,
        core: Optional[np.ndarray] = None,
        supervisor: Optional[TaskSupervisor] = None,
        chaos=None,
    ) -> None:
        self.ship_dir = Path(ship_dir)
        self.base_graph = base_graph
        self.core = core
        self.chaos = chaos
        self.supervisor = (
            supervisor if supervisor is not None else TaskSupervisor()
        )
        # all replicas of one set share the immutable name->node dict
        self._lookup = {
            base_graph.name_of(i): i for i in range(base_graph.num_nodes)
        }
        self.restarts = 0

    def _bootstrap(self, name: str, with_core: bool) -> ReadReplica:
        replica = ReadReplica(
            name,
            self.ship_dir,
            self.base_graph,
            core=self.core if with_core else None,
            lookup=self._lookup,
            chaos=self.chaos,
        )
        replica.refresh()
        return replica

    def spawn(
        self, count: int, *, names: Optional[Sequence[str]] = None,
        with_core: bool = False,
    ) -> List[ReadReplica]:
        """Bootstrap ``count`` replicas (supervised, in plan order)."""
        if count < 1:
            raise ValueError("count must be >= 1")
        if names is None:
            names = [f"replica-{i}" for i in range(count)]
        if len(names) != count:
            raise ValueError("names must match count")
        report = self.supervisor.run(
            self._bootstrap,
            [(str(name), with_core) for name in names],
            label="replica-spawn",
        )
        return list(report.results)

    def restart(self, name: str, *, with_core: bool = False) -> ReadReplica:
        """Supervised restart: a fresh replica walks the chain from base."""
        report = self.supervisor.run(
            self._bootstrap,
            [(str(name), with_core)],
            label="replica-restart",
        )
        self.restarts += 1
        tele = get_telemetry()
        if tele.enabled:
            tele.inc("replica.restarts")
            tele.event("replica.restart", replica=str(name))
        return report.results[0]
