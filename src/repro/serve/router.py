"""Shard-aware request routing across the writer and its read replicas.

The router is the traffic-shaping half of replicated serving: the
:mod:`~repro.serve.replication` layer guarantees any replica's answer
is bitwise-identical to the writer's, so routing is free to optimize
for *load* and *availability* without touching correctness.

Routing policy
--------------
``ingest`` / ``health`` / ``stats``
    Always the writer — there is exactly one WAL owner.
``explain``
    Pinned to a dedicated explain replica when one exists.  Explain
    walks contribution paths over the whole graph (orders of magnitude
    above a score read), so it gets a machine of its own and never
    steals read capacity; without a pinned replica it stays on the
    writer, where the admission controller's slow lane bounds it.
``score host=<h>``
    Shard-affine: the host's node id is mapped through the shard
    boundaries (:attr:`~repro.graph.sharded.ShardedWebGraph.boundaries`
    when the base graph is sharded, an even
    :func:`~repro.graph.sharded.default_boundaries` split otherwise)
    and boundary ranges are assigned round-robin over the read
    replicas.  The same host therefore always lands on the same
    replica — its shard's pages stay hot in exactly one page cache,
    the property the sharded backend's LRU was built around.
``top``
    Round-robin over ready read replicas (a full-vector scan has no
    shard affinity to exploit).

Failure handling
----------------
A dead or unready replica is *routed around*: its shard ranges fall
through to the next ready replica, and the set's supervisor restarts it
from the shipped chain on the next :meth:`ReplicaRouter.refresh`.  When
no replica can serve, reads fall back to the writer — replication
degrades to single-process serving, never to an outage.  Replica lag
(shipped tip minus replica epoch) beyond ``max_lag`` marks the router
``lagging``; the daemon feeds that into the admission controller, so
clients see an honest ``degraded`` mode instead of silently stale
answers.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Sequence

import numpy as np

from ..graph.sharded import default_boundaries
from ..obs import get_telemetry
from .replication import ReadReplica, ReplicaSet

__all__ = ["ReplicaRouter"]

#: Ops that must always execute on the WAL-owning writer.
WRITER_OPS = frozenset({"ingest", "health", "stats"})


class ReplicaRouter:
    """Fans queries across read replicas; pins explain; routes around
    death.

    Parameters
    ----------
    replicas:
        The read rotation, in shard-assignment order.
    explain_replica:
        Optional replica dedicated to ``explain`` — NOT part of the
        read rotation (an explain storm on it never slows a score
        read).
    boundaries:
        Shard boundaries (``num_shards + 1`` ascending ints) used for
        shard-affine ``score`` routing.  Pass the sharded store's own
        :attr:`~repro.graph.sharded.ShardedWebGraph.boundaries` when
        the base graph is sharded; defaults to an even
        :func:`~repro.graph.sharded.default_boundaries` split with one
        range per replica.
    replica_set:
        When given, dead replicas are restarted through the set's
        supervisor on :meth:`refresh`.
    max_lag:
        WAL records a replica may trail the shipped tip before the
        router reports :attr:`lagging` (admission degrades).
    """

    def __init__(
        self,
        replicas: Sequence[ReadReplica],
        *,
        explain_replica: Optional[ReadReplica] = None,
        boundaries: Optional[np.ndarray] = None,
        num_nodes: Optional[int] = None,
        replica_set: Optional[ReplicaSet] = None,
        max_lag: int = 4,
    ) -> None:
        if not replicas:
            raise ValueError("a router needs at least one read replica")
        if max_lag < 1:
            raise ValueError("max_lag must be >= 1")
        self.replicas: List[ReadReplica] = list(replicas)
        self.explain_replica = explain_replica
        self.replica_set = replica_set
        self.max_lag = max_lag
        if boundaries is None:
            if num_nodes is None:
                num_nodes = self.replicas[0]._graph.num_nodes
            boundaries = default_boundaries(
                num_nodes, max(1, len(self.replicas))
            )
        self.boundaries = np.asarray(boundaries, dtype=np.int64)
        if (
            self.boundaries.ndim != 1
            or len(self.boundaries) < 2
            or np.any(np.diff(self.boundaries) < 0)
        ):
            raise ValueError(
                "boundaries must be a non-decreasing 1-d array of "
                "length num_shards + 1"
            )
        self._lock = threading.Lock()
        self._rr = 0
        self.routed = 0
        self.fallbacks = 0
        self.routed_around = 0

    # ------------------------------------------------------------------
    # selection
    # ------------------------------------------------------------------

    def _ready(self) -> List[ReadReplica]:
        return [r for r in self.replicas if r.ready]

    def shard_of(self, node: int) -> int:
        """Boundary range owning ``node`` (clipped to valid ranges)."""
        k = int(np.searchsorted(self.boundaries, node, side="right")) - 1
        return min(max(k, 0), len(self.boundaries) - 2)

    def replica_for_node(self, node: int) -> Optional[ReadReplica]:
        """The shard-affine replica for a node; ``None`` if none ready.

        Shard ranges are assigned to replicas round-robin by range
        index, so with R replicas and S ranges replica ``i`` owns every
        range ``k`` with ``k % R == i``.  A dead owner's ranges fall
        through to the next ready replica in rotation order — a
        deterministic route-around, not a reshuffle, so the other
        replicas' working sets are undisturbed.
        """
        ready = self._ready()
        if not ready:
            return None
        shard = self.shard_of(node)
        owner = shard % len(self.replicas)
        for offset in range(len(self.replicas)):
            candidate = self.replicas[(owner + offset) % len(self.replicas)]
            if candidate.ready:
                if offset:
                    self.routed_around += 1
                    tele = get_telemetry()
                    if tele.enabled:
                        tele.inc("replica.route_arounds")
                return candidate
        return None  # pragma: no cover - ready was non-empty

    def next_replica(self) -> Optional[ReadReplica]:
        """Round-robin over ready replicas (for un-affine ops)."""
        with self._lock:
            start = self._rr
            self._rr += 1
        n = len(self.replicas)
        for offset in range(n):
            candidate = self.replicas[(start + offset) % n]
            if candidate.ready:
                return candidate
        return None

    # ------------------------------------------------------------------
    # routed queries (None return = caller serves from the writer)
    # ------------------------------------------------------------------

    def route_score(self, host: str) -> Optional[ReadReplica]:
        """The replica that should answer ``score host``; ``None`` →
        writer fallback.  Unknown hosts also fall through to the writer
        so the error payload is produced exactly once, by one code
        path."""
        ready = self._ready()
        if not ready:
            self.fallbacks += 1
            return None
        node = ready[0].epoch.lookup.get(host)
        if node is None:
            self.fallbacks += 1
            return None
        replica = self.replica_for_node(int(node))
        if replica is not None:
            self.routed += 1
        return replica

    def route_top(self) -> Optional[ReadReplica]:
        replica = self.next_replica()
        if replica is None:
            self.fallbacks += 1
        else:
            self.routed += 1
        return replica

    def route_explain(self) -> Optional[ReadReplica]:
        """The pinned explain replica, if alive and carrying a core."""
        r = self.explain_replica
        if r is not None and r.ready and r.core is not None:
            self.routed += 1
            return r
        if r is not None:
            self.fallbacks += 1
        return None

    # ------------------------------------------------------------------
    # health
    # ------------------------------------------------------------------

    def _all(self) -> List[ReadReplica]:
        extra = (
            [self.explain_replica]
            if self.explain_replica is not None
            else []
        )
        return self.replicas + extra

    def refresh(self, *, shipped_seq: Optional[int] = None) -> dict:
        """Advance every replica to the shipped tip; restart the dead.

        Called by the daemon's background refresher (and explicitly by
        tests).  Per-replica failures are contained: a corrupt snapshot
        leaves that replica on its previous epoch, a crash marks it
        dead; either way the sweep continues.  Dead replicas are
        restarted through the set's supervisor and swapped back into
        their rotation slot.  Returns a summary dict.
        """
        advanced = 0
        errors = 0
        restarted = 0
        for i, replica in enumerate(list(self._all())):
            if not replica.alive and self.replica_set is not None:
                try:
                    fresh = self.replica_set.restart(
                        replica.name,
                        with_core=replica is self.explain_replica,
                    )
                except Exception:  # noqa: BLE001 - keep sweeping
                    errors += 1
                    continue
                if replica is self.explain_replica:
                    self.explain_replica = fresh
                else:
                    self.replicas[i] = fresh
                restarted += 1
                continue
            if not replica.alive:
                continue
            try:
                advanced += replica.refresh()
            except Exception:  # noqa: BLE001 - contained per replica
                errors += 1
        summary = {
            "advanced": advanced,
            "errors": errors,
            "restarted": restarted,
        }
        self._gauge_lag(shipped_seq)
        return summary

    def lag(self, shipped_seq: int) -> int:
        """Worst replica lag in WAL records behind the shipped tip."""
        lags = [
            shipped_seq - r.wal_seq for r in self.replicas if r.ready
        ]
        if not lags:  # nothing serving: maximally lagged
            return shipped_seq + 1
        return max(0, max(lags))

    def lagging(self, shipped_seq: int) -> bool:
        """True when the worst lag exceeds ``max_lag`` (degrade feed)."""
        return self.lag(shipped_seq) > self.max_lag

    def _gauge_lag(self, shipped_seq: Optional[int]) -> None:
        if shipped_seq is None:
            return
        tele = get_telemetry()
        if tele.enabled:
            tele.set_gauge("replica.lag", self.lag(shipped_seq))
            tele.set_gauge(
                "replica.ready",
                sum(1 for r in self.replicas if r.ready),
            )

    def stats(self) -> dict:
        return {
            "replicas": [r.health() for r in self.replicas],
            "explain_replica": (
                self.explain_replica.health()
                if self.explain_replica is not None
                else None
            ),
            "shards": len(self.boundaries) - 1,
            "routed": self.routed,
            "fallbacks": self.fallbacks,
            "routed_around": self.routed_around,
            "max_lag": self.max_lag,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ready = sum(1 for r in self.replicas if r.ready)
        return (
            f"ReplicaRouter({ready}/{len(self.replicas)} ready, "
            f"shards={len(self.boundaries) - 1})"
        )
