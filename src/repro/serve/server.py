"""Local socket front-end for the scoring daemon.

Transport is deliberately boring: a unix-domain socket speaking
newline-delimited JSON — one request object per line, one response
object per line, in order.  Each connection gets a reader thread that
parses and *admits* requests (:mod:`repro.serve.admission`); admitted
work goes through a shared queue to a small worker pool, so a slow
query (``explain`` walks contribution paths) never blocks admission
decisions, and overload is shed at the door with a structured refusal
instead of a growing backlog.

Every response carries the serving context a client needs to interpret
it: the epoch sequence, the ``staleness`` count (accepted deltas not
yet folded into the scores) and the service ``mode``
(``full``/``degraded``/``reject``).  SIGTERM triggers a clean drain:
new requests are refused with ``shutting-down``, in-flight ones
finish, the ingest worker stops after its current apply (pending
deltas stay durable in the WAL), and the socket is unlinked.

Protocol ops
------------
``score``    ``{"op": "score", "host": "spam.example.com"}``
``top``      ``{"op": "top", "k": 10, "tau": 0.98, "rho": 10.0}``
``explain``  ``{"op": "explain", "host": "...", "top": 10}``
``ingest``   ``{"op": "ingest", "insertions": [[u, v], ...],
             "deletions": [[u, v], ...]}``
``health``   ``{"op": "health"}``
``stats``    ``{"op": "stats"}``
"""

from __future__ import annotations

import json
import os
import queue
import signal
import socket
import threading
from pathlib import Path
from typing import Optional, Union

from ..errors import ReplicationError, ReproError, WalError
from ..obs import get_telemetry
from .admission import AdmissionController, AdmissionRejected
from .daemon import ScoringDaemon

__all__ = ["ScoringServer", "ServeClient"]

PathLike = Union[str, Path]

#: Requests larger than this are refused outright (a malformed client
#: must not be able to balloon the reader's buffer).
MAX_REQUEST_BYTES = 4 * 1024 * 1024


class _Job:
    """One admitted request travelling from reader to worker."""

    __slots__ = ("ticket", "request", "done", "response")

    def __init__(self, ticket, request: dict) -> None:
        self.ticket = ticket
        self.request = request
        self.done = threading.Event()
        self.response: Optional[dict] = None


class ScoringServer:
    """Serves one :class:`~repro.serve.daemon.ScoringDaemon` on a socket.

    Parameters
    ----------
    daemon:
        The scoring daemon (already loaded; the server starts its
        ingest worker).
    socket_path:
        Unix-domain socket path; unlinked on startup and shutdown.
    max_queue / request_timeout:
        Admission bounds (see :class:`AdmissionController`).
    workers:
        Worker threads draining the fast request queue.
    slow_workers:
        Worker threads dedicated to the slow lane
        (:data:`~repro.serve.admission.SLOW_OPS` — ``explain``).  Slow
        requests never occupy a fast worker, so an explain storm's
        only effect on ``score`` latency is CPU contention.
    max_requests:
        Optional cap on processed requests, after which the server
        drains itself — benchmark/soak plumbing.
    router / writer:
        Replicated serving (see :mod:`repro.serve.router` /
        :mod:`repro.serve.replication`): reads fan out across the
        router's replicas, the writer ships every applied epoch, and a
        background refresher advances replicas every ``replica_poll``
        seconds.  Both ``None`` for single-process serving.
    """

    def __init__(
        self,
        daemon: ScoringDaemon,
        socket_path: PathLike,
        *,
        max_queue: int = 64,
        request_timeout: Optional[float] = None,
        workers: int = 2,
        slow_workers: int = 1,
        max_requests: Optional[int] = None,
        router=None,
        writer=None,
        replica_poll: float = 0.05,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if slow_workers < 1:
            raise ValueError("slow_workers must be >= 1")
        if max_requests is not None and max_requests < 1:
            raise ValueError("max_requests must be >= 1")
        if replica_poll <= 0:
            raise ValueError("replica_poll must be positive")
        self.daemon = daemon
        self.socket_path = Path(socket_path)
        self.admission = AdmissionController(
            max_queue, request_timeout=request_timeout
        )
        self.workers = workers
        self.slow_workers = slow_workers
        self.max_requests = max_requests
        self.router = router
        self.writer = writer
        self.replica_poll = replica_poll
        self._queue: "queue.Queue[Optional[_Job]]" = queue.Queue()
        self._slow_queue: "queue.Queue[Optional[_Job]]" = queue.Queue()
        self._threads: list = []
        self._listener: Optional[socket.socket] = None
        self._stopping = threading.Event()
        self._stopped = threading.Event()
        self._lock = threading.Lock()
        self.requests = 0
        self.errors = 0
        self.replica_fallbacks = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Bind the socket, start workers + acceptor + ingest worker."""
        if not hasattr(socket, "AF_UNIX"):  # pragma: no cover
            raise ReproError(
                "the scoring server needs unix-domain sockets, which "
                "this platform does not provide"
            )
        if self.socket_path.exists():
            self.socket_path.unlink()
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(str(self.socket_path))
        listener.listen(16)
        listener.settimeout(0.2)
        self._listener = listener
        self.daemon.start()
        for i in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                args=(self._queue,),
                name=f"serve-worker-{i}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        for i in range(self.slow_workers):
            thread = threading.Thread(
                target=self._worker_loop,
                args=(self._slow_queue,),
                name=f"serve-slow-{i}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        if self.router is not None:
            refresher = threading.Thread(
                target=self._refresh_loop,
                name="serve-replica-refresh",
                daemon=True,
            )
            refresher.start()
            self._threads.append(refresher)
        acceptor = threading.Thread(
            target=self._accept_loop, name="serve-accept", daemon=True
        )
        acceptor.start()
        self._threads.append(acceptor)
        tele = get_telemetry()
        if tele.enabled:
            tele.event(
                "serve.listening",
                socket=str(self.socket_path),
                workers=self.workers,
            )

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → drain (main thread only)."""

        def _handler(signum, _frame) -> None:
            tele = get_telemetry()
            if tele.enabled:
                tele.event("serve.signal", signum=int(signum))
            self.stop()

        signal.signal(signal.SIGTERM, _handler)
        signal.signal(signal.SIGINT, _handler)

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the server stops; True when it did."""
        return self._stopped.wait(timeout)

    def stop(self) -> None:
        """Drain: refuse new work, finish in-flight, close everything."""
        with self._lock:
            first = not self._stopping.is_set()
            self._stopping.set()
        if not first:  # another stop() is already draining; wait it out
            self._stopped.wait()
            return
        self.admission.start_drain()
        listener, self._listener = self._listener, None
        if listener is not None:
            listener.close()
        # one poison pill per worker; queued jobs ahead of them finish
        for _ in range(self.workers):
            self._queue.put(None)
        for _ in range(self.slow_workers):
            self._slow_queue.put(None)
        self.daemon.close()
        if self.socket_path.exists():
            try:
                self.socket_path.unlink()
            except OSError:  # pragma: no cover - racing a re-bind
                pass
        tele = get_telemetry()
        if tele.enabled:
            tele.event(
                "serve.drained",
                requests=self.requests,
                shed=self.admission.shed,
            )
        # set LAST: wait() returning is the caller's license to exit
        # the process, and everything above (socket unlink, telemetry)
        # must be done by then — stop() often runs on a daemon thread
        self._stopped.set()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopped.is_set():
            listener = self._listener
            if listener is None:
                return
            try:
                conn, _ = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            thread = threading.Thread(
                target=self._reader_loop,
                args=(conn,),
                name="serve-conn",
                daemon=True,
            )
            thread.start()

    def _reader_loop(self, conn: socket.socket) -> None:
        """Parse, admit and dispatch one connection's requests, in order."""
        buf = b""
        try:
            with conn:
                fh = conn.makefile("rb")
                while not self._stopped.is_set():
                    line = fh.readline(MAX_REQUEST_BYTES + 1)
                    if not line:
                        return
                    if len(line) > MAX_REQUEST_BYTES:
                        self._send(conn, {
                            "ok": False,
                            "error": "bad-request",
                            "detail": "request too large",
                        })
                        return
                    response = self._handle_line(line)
                    if response is None:
                        return
                    self._send(conn, response)
        except (OSError, ValueError):
            return

    def _handle_line(self, line: bytes) -> Optional[dict]:
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request must be an object")
            op = str(request.get("op", ""))
        except (ValueError, UnicodeDecodeError):
            self.errors += 1
            return {"ok": False, "error": "bad-request",
                    "detail": "unparsable request line"}
        try:
            ticket = self.admission.admit(op)
        except AdmissionRejected as rejected:
            return {
                "ok": False,
                "error": "rejected",
                "reason": rejected.reason,
                "mode": rejected.mode,
                "staleness": self.daemon.staleness,
            }
        job = _Job(ticket, request)
        (self._slow_queue if ticket.slow else self._queue).put(job)
        job.done.wait()
        return job.response

    def _send(self, conn: socket.socket, response: dict) -> None:
        conn.sendall(
            json.dumps(response, separators=(",", ":")).encode("utf-8")
            + b"\n"
        )

    # ------------------------------------------------------------------
    # workers
    # ------------------------------------------------------------------

    def _refresh_loop(self) -> None:
        """Background replica upkeep: re-ship, refresh, restart, gauge."""
        while not self._stopped.wait(self.replica_poll):
            try:
                if self.writer is not None:
                    self.writer.ship_pending()
                # lag is measured against the writer's *applied* epoch,
                # not the shipped tip — a delayed ship IS lag
                self.router.refresh(
                    shipped_seq=self.daemon.store.current.wal_seq
                )
            except Exception as exc:  # noqa: BLE001 - contained upkeep
                tele = get_telemetry()
                if tele.enabled:
                    tele.event(
                        "replica.refresh_error",
                        error=type(exc).__name__,
                    )

    def _healthy(self) -> bool:
        """Ingest-path health: breaker/staleness AND replica lag."""
        if self.daemon.degraded:
            return False
        if self.router is not None:
            return not self.router.lagging(
                self.daemon.store.current.wal_seq
            )
        return True

    def _worker_loop(self, jobs: "queue.Queue[Optional[_Job]]") -> None:
        while True:
            job = jobs.get()
            if job is None:
                return
            try:
                # keep the admission mode honest before deciding anything
                self.admission.set_ingest_healthy(self._healthy())
                self.admission.check_deadline(job.ticket)
                job.response = self._dispatch(job.request)
            except AdmissionRejected as rejected:
                job.response = {
                    "ok": False,
                    "error": "rejected",
                    "reason": rejected.reason,
                    "mode": rejected.mode,
                    "staleness": self.daemon.staleness,
                }
            except Exception as exc:  # noqa: BLE001 - boundary
                self.errors += 1
                job.response = {
                    "ok": False,
                    "error": "internal",
                    "detail": f"{type(exc).__name__}: {exc}",
                }
            finally:
                self.admission.release(job.ticket)
                job.done.set()
                with self._lock:
                    self.requests += 1
                    hit_cap = (
                        self.max_requests is not None
                        and self.requests >= self.max_requests
                    )
            if hit_cap:
                threading.Thread(target=self.stop, daemon=True).start()

    def _routed(self, op: str, host: Optional[str] = None):
        """The replica to serve a read from, or ``None`` → writer."""
        router = self.router
        if router is None:
            return None
        if op == "score":
            return router.route_score(host)
        if op == "top":
            return router.route_top()
        if op == "explain":
            return router.route_explain()
        return None

    def _dispatch(self, request: dict) -> dict:
        op = str(request.get("op", ""))
        daemon = self.daemon
        try:
            if op == "score":
                host = str(request["host"])
                replica = self._routed("score", host)
                if replica is not None:
                    try:
                        return {"ok": True, **replica.query_score(host),
                                "served_by": replica.name}
                    except ReplicationError:
                        self.replica_fallbacks += 1
                body = {"ok": True, **daemon.query_score(host)}
                if self.router is not None:
                    body["served_by"] = "writer"
                return body
            if op == "top":
                k = int(request.get("k", 10))
                tau = _opt_float(request.get("tau"))
                rho = _opt_float(request.get("rho"))
                replica = self._routed("top")
                if replica is not None:
                    try:
                        return {
                            "ok": True,
                            **replica.query_top(
                                k,
                                tau=(daemon.config.tau
                                     if tau is None else tau),
                                rho=(daemon.config.rho
                                     if rho is None else rho),
                            ),
                            "served_by": replica.name,
                        }
                    except ReplicationError:
                        self.replica_fallbacks += 1
                body = {"ok": True, **daemon.query_top(k, tau=tau, rho=rho)}
                if self.router is not None:
                    body["served_by"] = "writer"
                return body
            if op == "explain":
                host = str(request["host"])
                top = int(request.get("top", 10))
                replica = self._routed("explain")
                if replica is not None:
                    try:
                        return {"ok": True,
                                **replica.query_explain(host, top=top),
                                "served_by": replica.name}
                    except ReplicationError:
                        self.replica_fallbacks += 1
                body = {"ok": True, **daemon.query_explain(host, top=top)}
                if self.router is not None:
                    body["served_by"] = "writer"
                return body
            if op == "ingest":
                return {"ok": True, **daemon.submit_delta(
                    [tuple(edge) for edge in request.get("insertions", [])],
                    [tuple(edge) for edge in request.get("deletions", [])],
                )}
            if op == "health":
                return {"ok": True, **daemon.health()}
            if op == "stats":
                return {"ok": True, **self.stats()}
        except KeyError as exc:
            return {"ok": False, "error": "unknown-host",
                    "detail": str(exc)}
        except WalError as exc:
            return {
                "ok": False,
                "error": "rejected",
                "reason": "degraded",
                "mode": "degraded",
                "detail": str(exc),
                "staleness": daemon.staleness,
            }
        except (ValueError, TypeError) as exc:
            return {"ok": False, "error": "bad-request",
                    "detail": str(exc)}
        except ReproError as exc:
            self.errors += 1
            return {"ok": False, "error": "error",
                    "detail": f"{type(exc).__name__}: {exc}"}
        return {"ok": False, "error": "bad-request",
                "detail": f"unknown op {op!r}"}

    def stats(self) -> dict:
        daemon = self.daemon
        return {
            "requests": self.requests,
            "request_errors": self.errors,
            "admitted": self.admission.admitted,
            "shed": self.admission.shed,
            "deadline_drops": self.admission.deadline_drops,
            "queue_depth": self.admission.depth,
            "mode": self.admission.mode,
            "staleness": daemon.staleness,
            "epoch": daemon.store.current.seq,
            "applies": daemon.applies,
            "apply_failures": daemon.apply_failures,
            "degraded_applies": daemon.degraded_applies,
            "swaps": daemon.store.swaps,
            "rollbacks": daemon.store.rollbacks,
            "pid": os.getpid(),
            "slow_depth": self.admission.slow_depth,
            "slow_shed": self.admission.slow_shed,
            "replication": self._replication_stats(),
        }

    def _replication_stats(self) -> Optional[dict]:
        if self.router is None:
            return None
        writer = {
            "ships": self.writer.ships,
            "ship_failures": self.writer.ship_failures,
            "pending": self.writer.pending,
            "shipped_seq": self.writer.shipped_seq,
        } if self.writer is not None else None
        lag = self.router.lag(self.daemon.store.current.wal_seq)
        return {
            "writer": writer,
            "lag": lag,
            "query_fallbacks": self.replica_fallbacks,
            **self.router.stats(),
        }


def _opt_float(value) -> Optional[float]:
    return None if value is None else float(value)


class ServeClient:
    """Minimal synchronous client for the NDJSON protocol.

    Used by the CLI's poke path, the soak test and the serving
    benchmark; also the reference for how to talk to the daemon from
    anything else.
    """

    def __init__(
        self, socket_path: PathLike, *, timeout: float = 30.0
    ) -> None:
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(timeout)
        self._sock.connect(str(socket_path))
        self._fh = self._sock.makefile("rb")

    def request(self, payload: dict) -> dict:
        self._sock.sendall(
            json.dumps(payload, separators=(",", ":")).encode("utf-8")
            + b"\n"
        )
        line = self._fh.readline()
        if not line:
            raise ReproError("server closed the connection mid-request")
        return json.loads(line)

    def score(self, host: str) -> dict:
        return self.request({"op": "score", "host": host})

    def top(self, k: int = 10, **kwargs) -> dict:
        return self.request({"op": "top", "k": k, **kwargs})

    def explain(self, host: str, top: int = 10) -> dict:
        return self.request({"op": "explain", "host": host, "top": top})

    def ingest(self, insertions=None, deletions=None) -> dict:
        return self.request({
            "op": "ingest",
            "insertions": [list(e) for e in (insertions or [])],
            "deletions": [list(e) for e in (deletions or [])],
        })

    def health(self) -> dict:
        return self.request({"op": "health"})

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def close(self) -> None:
        try:
            self._fh.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
