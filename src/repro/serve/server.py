"""Local socket front-end for the scoring daemon.

Transport is deliberately boring: a unix-domain socket speaking
newline-delimited JSON — one request object per line, one response
object per line, in order.  Each connection gets a reader thread that
parses and *admits* requests (:mod:`repro.serve.admission`); admitted
work goes through a shared queue to a small worker pool, so a slow
query (``explain`` walks contribution paths) never blocks admission
decisions, and overload is shed at the door with a structured refusal
instead of a growing backlog.

Every response carries the serving context a client needs to interpret
it: the epoch sequence, the ``staleness`` count (accepted deltas not
yet folded into the scores) and the service ``mode``
(``full``/``degraded``/``reject``).  SIGTERM triggers a clean drain:
new requests are refused with ``shutting-down``, in-flight ones
finish, the ingest worker stops after its current apply (pending
deltas stay durable in the WAL), and the socket is unlinked.

Protocol ops
------------
``score``    ``{"op": "score", "host": "spam.example.com"}``
``top``      ``{"op": "top", "k": 10, "tau": 0.98, "rho": 10.0}``
``explain``  ``{"op": "explain", "host": "...", "top": 10}``
``ingest``   ``{"op": "ingest", "insertions": [[u, v], ...],
             "deletions": [[u, v], ...]}``
``health``   ``{"op": "health"}``
``stats``    ``{"op": "stats"}``
"""

from __future__ import annotations

import json
import os
import queue
import signal
import socket
import threading
from pathlib import Path
from typing import Optional, Union

from ..errors import ReproError, WalError
from ..obs import get_telemetry
from .admission import AdmissionController, AdmissionRejected
from .daemon import ScoringDaemon

__all__ = ["ScoringServer", "ServeClient"]

PathLike = Union[str, Path]

#: Requests larger than this are refused outright (a malformed client
#: must not be able to balloon the reader's buffer).
MAX_REQUEST_BYTES = 4 * 1024 * 1024


class _Job:
    """One admitted request travelling from reader to worker."""

    __slots__ = ("ticket", "request", "done", "response")

    def __init__(self, ticket, request: dict) -> None:
        self.ticket = ticket
        self.request = request
        self.done = threading.Event()
        self.response: Optional[dict] = None


class ScoringServer:
    """Serves one :class:`~repro.serve.daemon.ScoringDaemon` on a socket.

    Parameters
    ----------
    daemon:
        The scoring daemon (already loaded; the server starts its
        ingest worker).
    socket_path:
        Unix-domain socket path; unlinked on startup and shutdown.
    max_queue / request_timeout:
        Admission bounds (see :class:`AdmissionController`).
    workers:
        Worker threads draining the request queue.
    max_requests:
        Optional cap on processed requests, after which the server
        drains itself — benchmark/soak plumbing.
    """

    def __init__(
        self,
        daemon: ScoringDaemon,
        socket_path: PathLike,
        *,
        max_queue: int = 64,
        request_timeout: Optional[float] = None,
        workers: int = 2,
        max_requests: Optional[int] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_requests is not None and max_requests < 1:
            raise ValueError("max_requests must be >= 1")
        self.daemon = daemon
        self.socket_path = Path(socket_path)
        self.admission = AdmissionController(
            max_queue, request_timeout=request_timeout
        )
        self.workers = workers
        self.max_requests = max_requests
        self._queue: "queue.Queue[Optional[_Job]]" = queue.Queue()
        self._threads: list = []
        self._listener: Optional[socket.socket] = None
        self._stopped = threading.Event()
        self._lock = threading.Lock()
        self.requests = 0
        self.errors = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Bind the socket, start workers + acceptor + ingest worker."""
        if not hasattr(socket, "AF_UNIX"):  # pragma: no cover
            raise ReproError(
                "the scoring server needs unix-domain sockets, which "
                "this platform does not provide"
            )
        if self.socket_path.exists():
            self.socket_path.unlink()
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(str(self.socket_path))
        listener.listen(16)
        listener.settimeout(0.2)
        self._listener = listener
        self.daemon.start()
        for i in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"serve-worker-{i}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        acceptor = threading.Thread(
            target=self._accept_loop, name="serve-accept", daemon=True
        )
        acceptor.start()
        self._threads.append(acceptor)
        tele = get_telemetry()
        if tele.enabled:
            tele.event(
                "serve.listening",
                socket=str(self.socket_path),
                workers=self.workers,
            )

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → drain (main thread only)."""

        def _handler(signum, _frame) -> None:
            tele = get_telemetry()
            if tele.enabled:
                tele.event("serve.signal", signum=int(signum))
            self.stop()

        signal.signal(signal.SIGTERM, _handler)
        signal.signal(signal.SIGINT, _handler)

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the server stops; True when it did."""
        return self._stopped.wait(timeout)

    def stop(self) -> None:
        """Drain: refuse new work, finish in-flight, close everything."""
        if self._stopped.is_set():
            return
        self.admission.start_drain()
        listener, self._listener = self._listener, None
        if listener is not None:
            listener.close()
        # one poison pill per worker; queued jobs ahead of them finish
        for _ in range(self.workers):
            self._queue.put(None)
        self.daemon.close()
        self._stopped.set()
        if self.socket_path.exists():
            try:
                self.socket_path.unlink()
            except OSError:  # pragma: no cover - racing a re-bind
                pass
        tele = get_telemetry()
        if tele.enabled:
            tele.event(
                "serve.drained",
                requests=self.requests,
                shed=self.admission.shed,
            )

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopped.is_set():
            listener = self._listener
            if listener is None:
                return
            try:
                conn, _ = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            thread = threading.Thread(
                target=self._reader_loop,
                args=(conn,),
                name="serve-conn",
                daemon=True,
            )
            thread.start()

    def _reader_loop(self, conn: socket.socket) -> None:
        """Parse, admit and dispatch one connection's requests, in order."""
        buf = b""
        try:
            with conn:
                fh = conn.makefile("rb")
                while not self._stopped.is_set():
                    line = fh.readline(MAX_REQUEST_BYTES + 1)
                    if not line:
                        return
                    if len(line) > MAX_REQUEST_BYTES:
                        self._send(conn, {
                            "ok": False,
                            "error": "bad-request",
                            "detail": "request too large",
                        })
                        return
                    response = self._handle_line(line)
                    if response is None:
                        return
                    self._send(conn, response)
        except (OSError, ValueError):
            return

    def _handle_line(self, line: bytes) -> Optional[dict]:
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request must be an object")
            op = str(request.get("op", ""))
        except (ValueError, UnicodeDecodeError):
            self.errors += 1
            return {"ok": False, "error": "bad-request",
                    "detail": "unparsable request line"}
        try:
            ticket = self.admission.admit(op)
        except AdmissionRejected as rejected:
            return {
                "ok": False,
                "error": "rejected",
                "reason": rejected.reason,
                "mode": rejected.mode,
                "staleness": self.daemon.staleness,
            }
        job = _Job(ticket, request)
        self._queue.put(job)
        job.done.wait()
        return job.response

    def _send(self, conn: socket.socket, response: dict) -> None:
        conn.sendall(
            json.dumps(response, separators=(",", ":")).encode("utf-8")
            + b"\n"
        )

    # ------------------------------------------------------------------
    # workers
    # ------------------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            try:
                # keep the admission mode honest before deciding anything
                self.admission.set_ingest_healthy(not self.daemon.degraded)
                self.admission.check_deadline(job.ticket)
                job.response = self._dispatch(job.request)
            except AdmissionRejected as rejected:
                job.response = {
                    "ok": False,
                    "error": "rejected",
                    "reason": rejected.reason,
                    "mode": rejected.mode,
                    "staleness": self.daemon.staleness,
                }
            except Exception as exc:  # noqa: BLE001 - boundary
                self.errors += 1
                job.response = {
                    "ok": False,
                    "error": "internal",
                    "detail": f"{type(exc).__name__}: {exc}",
                }
            finally:
                self.admission.release(job.ticket)
                job.done.set()
                with self._lock:
                    self.requests += 1
                    hit_cap = (
                        self.max_requests is not None
                        and self.requests >= self.max_requests
                    )
            if hit_cap:
                threading.Thread(target=self.stop, daemon=True).start()

    def _dispatch(self, request: dict) -> dict:
        op = str(request.get("op", ""))
        daemon = self.daemon
        try:
            if op == "score":
                return {"ok": True,
                        **daemon.query_score(str(request["host"]))}
            if op == "top":
                return {"ok": True, **daemon.query_top(
                    int(request.get("k", 10)),
                    tau=_opt_float(request.get("tau")),
                    rho=_opt_float(request.get("rho")),
                )}
            if op == "explain":
                return {"ok": True, **daemon.query_explain(
                    str(request["host"]),
                    top=int(request.get("top", 10)),
                )}
            if op == "ingest":
                return {"ok": True, **daemon.submit_delta(
                    [tuple(edge) for edge in request.get("insertions", [])],
                    [tuple(edge) for edge in request.get("deletions", [])],
                )}
            if op == "health":
                return {"ok": True, **daemon.health()}
            if op == "stats":
                return {"ok": True, **self.stats()}
        except KeyError as exc:
            return {"ok": False, "error": "unknown-host",
                    "detail": str(exc)}
        except WalError as exc:
            return {
                "ok": False,
                "error": "rejected",
                "reason": "degraded",
                "mode": "degraded",
                "detail": str(exc),
                "staleness": daemon.staleness,
            }
        except (ValueError, TypeError) as exc:
            return {"ok": False, "error": "bad-request",
                    "detail": str(exc)}
        except ReproError as exc:
            self.errors += 1
            return {"ok": False, "error": "error",
                    "detail": f"{type(exc).__name__}: {exc}"}
        return {"ok": False, "error": "bad-request",
                "detail": f"unknown op {op!r}"}

    def stats(self) -> dict:
        daemon = self.daemon
        return {
            "requests": self.requests,
            "request_errors": self.errors,
            "admitted": self.admission.admitted,
            "shed": self.admission.shed,
            "deadline_drops": self.admission.deadline_drops,
            "queue_depth": self.admission.depth,
            "mode": self.admission.mode,
            "staleness": daemon.staleness,
            "epoch": daemon.store.current.seq,
            "applies": daemon.applies,
            "apply_failures": daemon.apply_failures,
            "degraded_applies": daemon.degraded_applies,
            "swaps": daemon.store.swaps,
            "rollbacks": daemon.store.rollbacks,
            "pid": os.getpid(),
        }


def _opt_float(value) -> Optional[float]:
    return None if value is None else float(value)


class ServeClient:
    """Minimal synchronous client for the NDJSON protocol.

    Used by the CLI's poke path, the soak test and the serving
    benchmark; also the reference for how to talk to the daemon from
    anything else.
    """

    def __init__(
        self, socket_path: PathLike, *, timeout: float = 30.0
    ) -> None:
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(timeout)
        self._sock.connect(str(socket_path))
        self._fh = self._sock.makefile("rb")

    def request(self, payload: dict) -> dict:
        self._sock.sendall(
            json.dumps(payload, separators=(",", ":")).encode("utf-8")
            + b"\n"
        )
        line = self._fh.readline()
        if not line:
            raise ReproError("server closed the connection mid-request")
        return json.loads(line)

    def score(self, host: str) -> dict:
        return self.request({"op": "score", "host": host})

    def top(self, k: int = 10, **kwargs) -> dict:
        return self.request({"op": "top", "k": k, **kwargs})

    def explain(self, host: str, top: int = 10) -> dict:
        return self.request({"op": "explain", "host": host, "top": top})

    def ingest(self, insertions=None, deletions=None) -> dict:
        return self.request({
            "op": "ingest",
            "insertions": [list(e) for e in (insertions or [])],
            "deletions": [list(e) for e in (deletions or [])],
        })

    def health(self) -> dict:
        return self.request({"op": "health"})

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def close(self) -> None:
        try:
            self._fh.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
