"""Fault-tolerant streaming crawl ingestion.

:class:`StreamIngestor` sits between a crawler frontier (the event
streams of :mod:`repro.synth.crawler`, or any JSONL source speaking the
same schema) and a :class:`~repro.serve.daemon.ScoringDaemon`.  The
batch pipeline assumes well-formed deltas handed over by an operator;
a live crawl offers no such courtesy — lines arrive torn, duplicated,
reordered, late, occasionally adversarial.  The ingestor's contract:

* **validate** every event against the strict schema
  (:func:`repro.synth.crawler.validate_event`) and quarantine malformed
  records into a crash-safe :class:`DeadLetterQueue` with a typed
  reason instead of dying;
* **deduplicate** by event id and tolerate bounded out-of-order arrival
  via event-time windows — any interleaving of duplicates and shuffles
  within ``max_lateness`` produces the same windows, hence the same
  deltas, hence bitwise-identical scores;
* **compact** each sealed window into one net
  :class:`~repro.graph.delta.GraphDelta` with
  :func:`~repro.graph.delta.compose_deltas` (insert-then-delete pairs
  cancel — window compaction *is* delta coalescing);
* **apply** through the daemon's WAL, journaling source offsets and an
  intent/state protocol so a crash at any point resumes exactly where
  it left off — restart is bitwise-identical;
* **quarantine poison at two levels**: a window whose compacted delta
  fails validation (``"poison-delta"``) never reaches the WAL; a
  window that is durable but unapplicable — both the warm and the cold
  estimate fail — is abandoned wholesale (``"apply-failed"``, via
  :meth:`~repro.serve.daemon.ScoringDaemon.quarantine_pending`) while
  the daemon keeps serving its current epoch;
* **backpressure**: under a burst flood the effective window size
  halves (down to ``min_window``) and the lateness allowance drops to
  zero, so windows seal and drain aggressively instead of buffering
  without bound; ``max_pending_windows`` is the hard cap.

Windowing
---------
Event time is the ``ts`` field.  Windows are consecutive half-open
intervals ``[start, start + cw)`` beginning at ``ts = 0``, where ``cw``
is the *current* window size (``window`` normally, degraded under
flood).  The watermark is ``max_ts_seen - max_lateness``; a window
seals when the watermark passes its end.  An event whose ``ts`` falls
in already-sealed territory is quarantined as ``"late"`` — its id is
consumed, so a retransmit of the same id is a duplicate, not a second
DLQ entry.

Crash anatomy
-------------
The journal (``journal.jsonl``) holds two record kinds.  A ``state``
record is the durable ingest position: consumed-id watermark + extras,
the safe source byte offset (everything before it is consumed), the
open-window boundaries and the flow-control state.  An ``intent``
record precedes every daemon submit and names the fingerprint chain
(``parent`` → ``after``) plus the event ids the window consumes.  On
resume, intents after the last state are reconciled against the
daemon's actual position: an intent whose ``after`` the daemon already
reached (snapshot or WAL replay) is *adopted* — its ids are marked
consumed without re-submitting — while intents the daemon never saw
are simply dropped and their events re-read from the source.  Either
way the replayed run converges to the same graph and bitwise-identical
scores.  The only at-least-once artifact is the DLQ itself: a
malformed line quarantined just before a crash may be quarantined
again on resume (entries carry the source offset for dedup); scores
are never affected.

See ``docs/streaming.md`` for the operator-facing runbook.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..errors import DeltaError, StreamError, StreamEventError
from ..graph.delta import GraphDelta, compose_deltas
from ..obs import get_telemetry
from ..synth.crawler import CrawlEvent, parse_event_line
from .daemon import ScoringDaemon

__all__ = ["StreamConfig", "DeadLetterQueue", "StreamIngestor"]

PathLike = Union[str, Path]

JOURNAL_FILENAME = "journal.jsonl"
DLQ_FILENAME = "dlq.jsonl"


@dataclass(frozen=True)
class StreamConfig:
    """Windowing and flow-control knobs of one ingestor.

    ``window``/``max_lateness``/``min_window`` are in event-time ticks
    (the stream's ``ts`` unit); ``max_pending_windows`` and
    ``flood_threshold`` are counts.
    """

    window: int = 16
    max_lateness: int = 8
    min_window: int = 2
    max_pending_windows: int = 64
    flood_threshold: int = 10_000
    apply_every: int = 1

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.min_window < 1 or self.min_window > self.window:
            raise ValueError("min_window must be in [1, window]")
        if self.max_lateness < 0:
            raise ValueError("max_lateness must be >= 0")
        if self.max_pending_windows < 1:
            raise ValueError("max_pending_windows must be >= 1")
        if self.flood_threshold < 1:
            raise ValueError("flood_threshold must be >= 1")
        if self.apply_every < 1:
            raise ValueError("apply_every must be >= 1")


class DeadLetterQueue:
    """Append-only, fsynced quarantine log (``dlq.jsonl``).

    Every entry carries a typed ``reason``: one of the schema slugs of
    :class:`~repro.errors.StreamEventError` (``"bad-json"``,
    ``"missing-field"``, ``"bad-type"``, ``"bad-op"``,
    ``"negative-id"``, ``"self-link"``, ``"out-of-range"``), ``"late"``
    for an event whose window already sealed, ``"poison-delta"`` for a
    window whose compacted delta fails validation, or
    ``"apply-failed"`` for a durable window both the warm and the cold
    solve reject.  Window-level entries keep the quarantined event
    lines verbatim so an operator can inspect, repair and re-ingest
    them (re-ingesting an *unrepaired* quarantined window is a no-op on
    scores — its ids are consumed).
    """

    def __init__(self, directory: PathLike, *, fsync: bool = True) -> None:
        self.directory = Path(directory)
        self.fsync = fsync
        self._count: Optional[int] = None

    @property
    def path(self) -> Path:
        return self.directory / DLQ_FILENAME

    def append(
        self,
        reason: str,
        *,
        detail: str = "",
        line: Optional[str] = None,
        lines: Optional[List[str]] = None,
        ids: Optional[List[int]] = None,
        window: Optional[Tuple[int, int]] = None,
        offset: Optional[int] = None,
    ) -> dict:
        """Durably quarantine one record (or one whole window)."""
        entry: dict = {"n": len(self), "reason": reason}
        if detail:
            entry["detail"] = detail
        if line is not None:
            entry["line"] = line
        if lines is not None:
            entry["lines"] = list(lines)
        if ids is not None:
            entry["ids"] = [int(i) for i in ids]
        if window is not None:
            entry["window"] = [int(window[0]), int(window[1])]
        if offset is not None:
            entry["offset"] = int(offset)
        self.directory.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(entry, separators=(",", ":")) + "\n")
            fh.flush()
            if self.fsync:
                os.fsync(fh.fileno())
        self._count = len(self) + 1
        tele = get_telemetry()
        if tele.enabled:
            tele.inc("stream.dlq")
            tele.event(
                "stream.dead_lettered",
                reason=reason,
                ids=len(ids) if ids else (1 if line else 0),
            )
        return entry

    def entries(self) -> List[dict]:
        """Every parsable entry, in order (a torn tail is skipped)."""
        if not self.path.exists():
            return []
        out: List[dict] = []
        with open(self.path, "r", encoding="utf-8") as fh:
            for raw in fh:
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    out.append(json.loads(raw))
                except ValueError:
                    # torn tail (crash mid-append): drop and stop
                    break
        return out

    def __len__(self) -> int:
        if self._count is None:
            self._count = len(self.entries())
        return self._count


class _IdTracker:
    """Consumed event ids: contiguous watermark + sparse extras."""

    __slots__ = ("watermark", "extras")

    def __init__(self, watermark: int = -1, extras=()) -> None:
        self.watermark = int(watermark)
        self.extras = set(int(i) for i in extras)

    def seen(self, event_id: int) -> bool:
        return event_id <= self.watermark or event_id in self.extras

    def consume(self, event_id: int) -> None:
        if event_id <= self.watermark:
            return
        self.extras.add(event_id)
        while self.watermark + 1 in self.extras:
            self.watermark += 1
            self.extras.discard(self.watermark)

    def as_dict(self) -> dict:
        return {"wm": self.watermark, "extra": sorted(self.extras)}


class _Window:
    """One open event-time window: ``[start, end)`` plus its events."""

    __slots__ = ("start", "end", "events")

    def __init__(self, start: int, end: int) -> None:
        self.start = start
        self.end = end
        # id -> (event, source byte offset or None)
        self.events: Dict[int, Tuple[CrawlEvent, Optional[int]]] = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_Window([{self.start}, {self.end}), {len(self.events)} ev)"


class StreamIngestor:
    """Drives one daemon from a crawl-event stream; crash-resumable.

    Parameters
    ----------
    daemon:
        The scoring daemon to feed.  Must be quiescent (no background
        worker) — the ingestor owns the submit/apply cadence.
    state_dir:
        Holds the journal (and, unless ``dlq_dir`` overrides it, the
        dead-letter queue).  Point a restarted ingestor at the same
        directory to resume.
    on_commit:
        Optional hook called after every committed window with
        ``(info, epoch)`` — ``info`` has the window bounds, the ids it
        consumed, and the running consumed-event count; ``epoch`` is
        the daemon epoch whose scores now include it.  Detection-
        latency probes (:mod:`repro.eval.latency`) attach here.
    """

    def __init__(
        self,
        daemon: ScoringDaemon,
        state_dir: PathLike,
        *,
        config: Optional[StreamConfig] = None,
        dlq_dir: Optional[PathLike] = None,
        on_commit: Optional[Callable[[dict, object], None]] = None,
        fsync: bool = True,
    ) -> None:
        self.daemon = daemon
        self.config = config if config is not None else StreamConfig()
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.dlq = DeadLetterQueue(
            dlq_dir if dlq_dir is not None else self.state_dir, fsync=fsync
        )
        self.on_commit = on_commit
        self.fsync = fsync
        self._num_nodes = daemon.store.current.graph.num_nodes
        self._tracker = _IdTracker()
        self._windows: List[_Window] = []
        self._buffered_ids: set = set()
        self._sealed_until = 0
        self._next_start = 0
        self._cw = self.config.window
        self._max_ts = -1
        self._position = 0  # byte offset past the last line ingest_file read
        self._flooded = False
        # windows submitted to the daemon but not yet applied
        self._inflight: List[dict] = []
        # counters (monotone over the life of the *state*, journaled)
        self.events_consumed = 0
        self.duplicates = 0
        self.late = 0
        self.malformed = 0
        self.windows_committed = 0
        self.windows_quarantined = 0
        self._resume()

    # ------------------------------------------------------------------
    # journal
    # ------------------------------------------------------------------

    @property
    def journal_path(self) -> Path:
        return self.state_dir / JOURNAL_FILENAME

    def _journal_append(self, obj: dict) -> None:
        with open(self.journal_path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(obj, separators=(",", ":")) + "\n")
            fh.flush()
            if self.fsync:
                os.fsync(fh.fileno())

    def _journal_read(self) -> List[dict]:
        if not self.journal_path.exists():
            return []
        out: List[dict] = []
        with open(self.journal_path, "r", encoding="utf-8") as fh:
            for raw in fh:
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    out.append(json.loads(raw))
                except ValueError:
                    break  # torn tail: everything before it is fsynced
        return out

    def _safe_offset(self) -> int:
        """Largest offset below which every source line is consumed."""
        offsets = [
            off
            for w in self._windows
            for (_ev, off) in w.events.values()
            if off is not None
        ]
        return min(offsets) if offsets else self._position

    def _state_entry(self) -> dict:
        return {
            "k": "state",
            **self._tracker.as_dict(),
            "offset": self._safe_offset(),
            "max_ts": self._max_ts,
            "next_start": self._next_start,
            "cw": self._cw,
            "sealed_until": self._sealed_until,
            "windows": [[w.start, w.end] for w in self._windows],
            "counters": [
                self.events_consumed,
                self.duplicates,
                self.late,
                self.malformed,
                self.windows_committed,
                self.windows_quarantined,
            ],
        }

    def _journal_state(self) -> None:
        self._journal_append(self._state_entry())

    def _restore_state(self, state: dict) -> None:
        self._tracker = _IdTracker(state["wm"], state["extra"])
        self._position = int(state["offset"])
        self._max_ts = int(state["max_ts"])
        self._next_start = int(state["next_start"])
        self._cw = int(state["cw"])
        self._sealed_until = int(state["sealed_until"])
        self._windows = [
            _Window(int(s), int(e)) for s, e in state["windows"]
        ]
        (
            self.events_consumed,
            self.duplicates,
            self.late,
            self.malformed,
            self.windows_committed,
            self.windows_quarantined,
        ) = (int(c) for c in state["counters"])

    def _resume(self) -> None:
        """Reconcile the journal with the daemon's actual position."""
        entries = self._journal_read()
        if not entries:
            return
        last_state = None
        intents: List[dict] = []
        for entry in entries:
            if entry.get("k") == "state":
                last_state = entry
                intents = []
            elif entry.get("k") == "intent":
                intents.append(entry)
        if last_state is not None:
            self._restore_state(last_state)
        if not intents:
            return
        # the daemon may hold the intents' records as a WAL-replay
        # suffix (crash between submit and apply): folding them in now
        # is exactly what the crashed run would have done next
        if self.daemon.staleness:
            self.daemon.apply_pending()
            if self.daemon.staleness:
                # the replayed suffix is poison even on restart: abandon
                # it now, exactly as the crashed run eventually would
                dropped = self.daemon.quarantine_pending()
                dropped_after = {record.after for record in dropped}
                for intent in intents:
                    if intent["after"] not in dropped_after:
                        continue
                    for event_id in intent["ids"]:
                        self._tracker.consume(int(event_id))
                    self.events_consumed += len(intent["ids"])
                    self.windows_quarantined += 1
                    self.dlq.append(
                        "apply-failed",
                        detail=(
                            "warm and cold re-estimates both failed on "
                            "WAL replay; window abandoned at resume"
                        ),
                        ids=[int(i) for i in intent["ids"]],
                        window=tuple(intent.get("window", (0, 0))),
                    )
                intents = [
                    i for i in intents if i["after"] not in dropped_after
                ]
        tip = self.daemon.store.current.fingerprint
        adopted: List[dict] = []
        if intents and tip != intents[0]["parent"]:
            matched = None
            for i, intent in enumerate(intents):
                if intent["after"] == tip:
                    matched = i
                    break
            if matched is None:
                raise StreamError(
                    f"journal and daemon disagree: daemon is at "
                    f"{tip!r}, which matches no journaled intent "
                    f"(base {intents[0]['parent']!r}); the state "
                    "directory belongs to a different daemon history"
                )
            adopted = intents[: matched + 1]
        for intent in adopted:
            for event_id in intent["ids"]:
                self._tracker.consume(int(event_id))
            self.events_consumed += len(intent["ids"])
            self.windows_committed += 1
        # seal the reconciled intents off behind a fresh state record so
        # a second resume never re-examines them
        self._journal_state()
        tele = get_telemetry()
        if tele.enabled:
            tele.event(
                "stream.resumed",
                adopted=len(adopted),
                dropped_intents=len(intents) - len(adopted),
                offset=self._position,
            )

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------

    @property
    def buffered(self) -> int:
        """Events sitting in open windows (accepted, not yet applied)."""
        return len(self._buffered_ids)

    @property
    def resume_offset(self) -> int:
        """Source byte offset a resumed ingest should seek to."""
        return self._position

    def ingest_line(self, raw: str, *, offset: Optional[int] = None) -> None:
        """Ingest one wire line; never raises on bad input (DLQ)."""
        raw = raw.strip()
        if not raw:
            return
        try:
            event = parse_event_line(raw, num_nodes=self._num_nodes)
        except StreamEventError as exc:
            self.malformed += 1
            self.dlq.append(
                exc.reason, detail=str(exc), line=raw, offset=offset
            )
            return
        if self._tracker.seen(event.id) or event.id in self._buffered_ids:
            self.duplicates += 1
            tele = get_telemetry()
            if tele.enabled:
                tele.inc("stream.duplicates")
            return
        if event.ts > self._max_ts:
            self._max_ts = event.ts
        if event.ts < self._sealed_until:
            # its window is gone; consume the id so a retransmit of the
            # same event is a duplicate, not a second DLQ entry
            self.late += 1
            self._tracker.consume(event.id)
            self.dlq.append(
                "late",
                detail=(
                    f"ts {event.ts} is before the sealed horizon "
                    f"{self._sealed_until}"
                ),
                line=raw,
                ids=[event.id],
                offset=offset,
            )
            self._seal_ready()
            return
        self._place(event, offset)
        self._flow_control()
        self._seal_ready()

    def ingest_file(self, path: PathLike) -> dict:
        """Ingest a JSONL stream file from the journaled resume offset.

        Returns :meth:`stats`.  Call :meth:`flush` afterwards to seal
        the stream's tail windows (end-of-stream has no watermark).
        """
        path = Path(path)
        with open(path, "rb") as fh:
            fh.seek(self._position)
            while True:
                start = fh.tell()
                raw = fh.readline()
                if not raw:
                    break
                if not raw.endswith(b"\n"):
                    # torn final line of a still-growing file: leave it
                    # for the next pass rather than DLQ half a record
                    break
                self._position = fh.tell()
                self.ingest_line(
                    raw.decode("utf-8", errors="replace"), offset=start
                )
        return self.stats()

    def flush(self) -> None:
        """Seal and commit every open window (end-of-stream)."""
        while self._windows:
            self._seal_oldest()
        self._apply_inflight()
        self._journal_state()
        tele = get_telemetry()
        if tele.enabled:
            tele.set_gauge("stream.open_windows", 0)
            tele.set_gauge("stream.buffered", 0)

    def stats(self) -> dict:
        return {
            "events_consumed": self.events_consumed,
            "buffered": self.buffered,
            "duplicates": self.duplicates,
            "late": self.late,
            "malformed": self.malformed,
            "windows_committed": self.windows_committed,
            "windows_quarantined": self.windows_quarantined,
            "dlq_entries": len(self.dlq),
            "sealed_until": self._sealed_until,
            "effective_window": self._cw,
            "epoch": self.daemon.store.current.seq,
        }

    # ------------------------------------------------------------------
    # windowing
    # ------------------------------------------------------------------

    def _place(self, event: CrawlEvent, offset: Optional[int]) -> None:
        window = self._window_for(event.ts)
        window.events[event.id] = (event, offset)
        self._buffered_ids.add(event.id)

    def _window_for(self, ts: int) -> _Window:
        for window in self._windows:
            if window.start <= ts < window.end:
                return window
        if ts < self._next_start:
            # inside a gap an empty, already-sealed window once covered
            raise StreamError(
                f"event ts {ts} falls in no open window but before the "
                f"window frontier {self._next_start}"
            )
        guard = 0
        while True:
            window = _Window(self._next_start, self._next_start + self._cw)
            self._windows.append(window)
            self._next_start = window.end
            if ts < window.end:
                return window
            guard += 1
            if guard > 100_000:
                raise StreamError(
                    f"event ts {ts} is unreachably far past the window "
                    f"frontier; clock-skewed stream?"
                )

    def _flow_control(self) -> None:
        """Degrade window size under a flood; recover when it drains."""
        threshold = self.config.flood_threshold
        if self.buffered > threshold and self._cw > self.config.min_window:
            self._cw = max(self.config.min_window, self._cw // 2)
            self._flooded = True
            tele = get_telemetry()
            if tele.enabled:
                tele.inc("stream.floods")
                tele.event(
                    "stream.flood",
                    buffered=self.buffered,
                    effective_window=self._cw,
                )
        elif (
            self._flooded
            and self.buffered < threshold // 2
            and self._cw < self.config.window
        ):
            self._cw = min(self.config.window, self._cw * 2)
            if self._cw == self.config.window:
                self._flooded = False
            tele = get_telemetry()
            if tele.enabled:
                tele.event(
                    "stream.flood_recovered",
                    buffered=self.buffered,
                    effective_window=self._cw,
                )

    def _seal_ready(self) -> None:
        # flooded mode forfeits the lateness allowance: windows seal the
        # moment the max event time passes them, draining the buffer
        lateness = 0 if self._flooded else self.config.max_lateness
        watermark = self._max_ts - lateness
        while self._windows and self._windows[0].end <= watermark:
            self._seal_oldest()
        while len(self._windows) > self.config.max_pending_windows:
            self._seal_oldest()
        if self._inflight and len(self._inflight) >= self.config.apply_every:
            self._apply_inflight()
        tele = get_telemetry()
        if tele.enabled:
            tele.set_gauge("stream.open_windows", len(self._windows))
            tele.set_gauge("stream.buffered", self.buffered)

    def _seal_oldest(self) -> None:
        window = self._windows.pop(0)
        self._sealed_until = max(self._sealed_until, window.end)
        if not window.events:
            return
        self._commit_window(window)

    # ------------------------------------------------------------------
    # commit path
    # ------------------------------------------------------------------

    def _consume_window(self, window: _Window) -> List[int]:
        ids = sorted(window.events)
        for event_id in ids:
            self._tracker.consume(event_id)
            self._buffered_ids.discard(event_id)
        return ids

    def _quarantine_window(
        self, window: _Window, reason: str, detail: str
    ) -> None:
        ids = sorted(window.events)
        lines = [window.events[i][0].to_line() for i in ids]
        self._consume_window(window)
        self.events_consumed += len(ids)
        self.windows_quarantined += 1
        self.dlq.append(
            reason,
            detail=detail,
            lines=lines,
            ids=ids,
            window=(window.start, window.end),
        )
        self._journal_state()
        tele = get_telemetry()
        if tele.enabled:
            tele.event(
                "stream.window_quarantined",
                reason=reason,
                start=window.start,
                end=window.end,
                events=len(ids),
            )

    def _commit_window(self, window: _Window) -> None:
        ids = sorted(window.events)
        events = [window.events[i][0] for i in ids]
        try:
            delta = compose_deltas(
                [
                    GraphDelta(
                        insertions=[(e.src, e.dst)] if e.op == "+" else (),
                        deletions=[(e.src, e.dst)] if e.op == "-" else (),
                    )
                    for e in events
                ]
            )
        except DeltaError as exc:
            self._quarantine_window(window, "poison-delta", str(exc))
            return
        if len(delta) == 0:
            # the window cancelled itself out — nothing to apply
            self._consume_window(window)
            self.events_consumed += len(ids)
            self.windows_committed += 1
            self._journal_state()
            return
        parent = self.daemon._tail.structural_fingerprint()
        after = delta.derive_fingerprint(self.daemon._tail)
        self._journal_append(
            {
                "k": "intent",
                "parent": parent,
                "after": after,
                "ids": ids,
                "window": [window.start, window.end],
            }
        )
        try:
            self.daemon.submit_delta(
                list(delta.insertions), list(delta.deletions)
            )
        except DeltaError as exc:
            # structurally poison against the accepted tip: the submit
            # validated before the WAL append, nothing is durable
            self._quarantine_window(window, "poison-delta", str(exc))
            return
        self._consume_window(window)
        self._inflight.append(
            {
                "window": (window.start, window.end),
                "ids": ids,
                "after": after,
            }
        )
        if len(self._inflight) >= self.config.apply_every:
            self._apply_inflight()

    def _apply_inflight(self) -> None:
        """Apply every submitted-but-unapplied window; quarantine poison."""
        if not self._inflight:
            return
        self.daemon.apply_pending()
        if self.daemon.staleness:
            # some suffix of the inflight windows is durable but
            # unapplicable (warm AND cold both failed): abandon it,
            # keep serving the epoch the prefix reached
            dropped = self.daemon.quarantine_pending()
            dropped_after = {record.after for record in dropped}
            survivors: List[dict] = []
            for entry in self._inflight:
                if entry["after"] in dropped_after:
                    self.windows_quarantined += 1
                    self.dlq.append(
                        "apply-failed",
                        detail=(
                            "warm and cold re-estimates both failed; "
                            "window abandoned via quarantine_pending"
                        ),
                        ids=entry["ids"],
                        window=entry["window"],
                    )
                else:
                    survivors.append(entry)
            applied = survivors
        else:
            applied = self._inflight
        epoch = self.daemon.store.current
        for entry in applied:
            self.events_consumed += len(entry["ids"])
            self.windows_committed += 1
            tele = get_telemetry()
            if tele.enabled:
                tele.inc("stream.windows")
                tele.event(
                    "stream.window_committed",
                    start=entry["window"][0],
                    end=entry["window"][1],
                    events=len(entry["ids"]),
                    epoch=epoch.seq,
                )
        quarantined = [e for e in self._inflight if e not in applied]
        for entry in quarantined:
            self.events_consumed += len(entry["ids"])
        self._inflight = []
        self._journal_state()
        if self.on_commit is not None:
            for entry in applied:
                info = {
                    "window": entry["window"],
                    "ids": entry["ids"],
                    "events_consumed": self.events_consumed,
                    "last_id": entry["ids"][-1],
                }
                try:
                    self.on_commit(info, epoch)
                except Exception:  # noqa: BLE001 - observer containment
                    pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StreamIngestor(consumed={self.events_consumed}, "
            f"open={len(self._windows)}, dlq={len(self.dlq)})"
        )
