"""Crash-safe write-ahead log for accepted-but-unapplied graph deltas.

The serving daemon acknowledges an ingest request the moment the delta
is durable, not the moment it is applied — applying means a warm
re-estimate, which takes orders of magnitude longer than an fsync and
may be deferred behind a queue of earlier batches.  The WAL is the
durability contract: a delta that was acknowledged survives any crash
between acceptance and apply, and replaying the log after a restart
reconverges to bitwise-identical scores (the push update is
deterministic given the same base solution and the same delta chain).

Format
------
One append-only segment, ``wal.jsonl``, one JSON record per line::

    {"seq": 3, "parent": "<fp>", "after": "<fp>", "ins": [[u, v], ...],
     "dels": [[u, v], ...], "crc": 123456}

``parent``/``after`` are the structural fingerprints of the graph
before and after the delta (``after`` is derived in O(|delta|) via
:meth:`~repro.graph.delta.GraphDelta.derive_fingerprint` — the
commutative edge digest).  ``crc`` is a zlib CRC-32 over the canonical
payload; every append is flushed and fsynced before the record is
acknowledged.  A sidecar ``applied.json`` holds the apply watermark,
written atomically *after* the re-estimated solution snapshot is
durable.

Crash anatomy
-------------
* **Crash mid-append**: the tail line is short or fails its CRC.
  Recovery truncates the segment back to the last good record (the
  un-acknowledged delta is simply gone, which is correct — the client
  never got an ack) and reports how many bytes were dropped.
* **Crash between apply and watermark write**: the record is fully in
  the log but ``applied.json`` still names its predecessor.  Replay
  dedupes by fingerprint — the delta chain is walked from its first
  record, and every record whose chained ``after`` has already been
  folded into the live snapshot fingerprint is skipped.  Applying the
  same segment twice is therefore a no-op.
* **Corruption in the middle of the segment**: never tolerated —
  recovery raises :class:`~repro.errors.WalError` rather than silently
  skipping history (which would desynchronize the replay chain).
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from pathlib import Path
from typing import List, Optional, Tuple, Union

from ..errors import WalError
from ..graph.delta import GraphDelta
from ..obs import get_telemetry

__all__ = ["WalRecord", "DeltaWAL", "plan_replay"]

PathLike = Union[str, Path]

SEGMENT_FILENAME = "wal.jsonl"
WATERMARK_FILENAME = "applied.json"


def _payload_crc(seq: int, parent: str, after: str, ins, dels) -> int:
    """CRC-32 of the canonical record payload (everything but the crc)."""
    canonical = json.dumps(
        [seq, parent, after, ins, dels], separators=(",", ":")
    )
    return zlib.crc32(canonical.encode("utf-8"))


class WalRecord:
    """One durable delta: its sequence number and fingerprint chain."""

    __slots__ = ("seq", "parent", "after", "insertions", "deletions")

    def __init__(
        self,
        seq: int,
        parent: str,
        after: str,
        insertions: List[Tuple[int, int]],
        deletions: List[Tuple[int, int]],
    ) -> None:
        self.seq = seq
        self.parent = parent
        self.after = after
        self.insertions = [(int(u), int(v)) for u, v in insertions]
        self.deletions = [(int(u), int(v)) for u, v in deletions]

    def delta(self) -> GraphDelta:
        """Materialize the :class:`GraphDelta` this record carries."""
        return GraphDelta(self.insertions, self.deletions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WalRecord(seq={self.seq}, +{len(self.insertions)}, "
            f"-{len(self.deletions)})"
        )


class DeltaWAL:
    """Append-only delta log with torn-tail recovery and a watermark.

    Parameters
    ----------
    directory:
        Log directory; created on first append.  Holds the segment
        (``wal.jsonl``) and the apply watermark (``applied.json``).
    fsync:
        Whether appends fsync before acknowledging (the default; tests
        that simulate torn writes turn it off to control the file tail
        byte-exactly).
    """

    def __init__(self, directory: PathLike, *, fsync: bool = True) -> None:
        self.directory = Path(directory)
        self.fsync = fsync
        self._last_seq: Optional[int] = None
        # serializes append/recover/prune/watermark: prune's atomic
        # rewrite (tmp + replace) would otherwise clobber a record a
        # concurrent append just acknowledged into the old segment
        self._mutex = threading.RLock()

    @property
    def segment_path(self) -> Path:
        return self.directory / SEGMENT_FILENAME

    @property
    def watermark_path(self) -> Path:
        return self.directory / WATERMARK_FILENAME

    # ------------------------------------------------------------------
    # appending
    # ------------------------------------------------------------------

    def append(
        self, delta: GraphDelta, *, parent: str, after: str
    ) -> WalRecord:
        """Durably append one delta; returns the record (with its seq).

        The caller supplies the fingerprint chain — ``parent`` is the
        fingerprint of the graph the delta applies to, ``after`` the
        derived fingerprint of the result — so replay can dedupe and
        divergence-check without re-deriving anything.
        """
        with self._mutex:
            self.directory.mkdir(parents=True, exist_ok=True)
            if self._last_seq is None:
                records, _ = self.recover(repair=False)
                self._last_seq = records[-1].seq if records else 0
            seq = self._last_seq + 1
            ins = [[int(u), int(v)] for u, v in delta.insertions]
            dels = [[int(u), int(v)] for u, v in delta.deletions]
            record = {
                "seq": seq,
                "parent": parent,
                "after": after,
                "ins": ins,
                "dels": dels,
                "crc": _payload_crc(seq, parent, after, ins, dels),
            }
            line = json.dumps(record, separators=(",", ":")) + "\n"
            with open(self.segment_path, "a", encoding="utf-8") as fh:
                fh.write(line)
                fh.flush()
                if self.fsync:
                    os.fsync(fh.fileno())
            self._last_seq = seq
        tele = get_telemetry()
        if tele.enabled:
            tele.inc("serve.wal.appends")
            tele.event(
                "serve.wal_append",
                seq=seq,
                insertions=len(ins),
                deletions=len(dels),
            )
        return WalRecord(seq, parent, after, ins, dels)

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------

    def recover(self, *, repair: bool = True) -> Tuple[List[WalRecord], int]:
        """Scan the segment; returns ``(records, dropped_bytes)``.

        A torn *tail* — a final line that is incomplete, unparsable or
        fails its CRC — is expected after a crash mid-append: the tail
        is dropped and, when ``repair`` is true, the segment file is
        truncated back to the last good record.  Corruption *before*
        the last line raises :class:`~repro.errors.WalError`: skipping
        interior history would silently desynchronize the delta chain.
        """
        with self._mutex:
            path = self.segment_path
            if not path.exists():
                return [], 0
            raw = path.read_bytes()
            records: List[WalRecord] = []
            offset = 0
            good_end = 0
            torn = False
            while offset < len(raw):
                newline = raw.find(b"\n", offset)
                end = len(raw) if newline < 0 else newline + 1
                line = raw[offset:end]
                record = self._parse_line(line)
                if record is None:
                    if end < len(raw):
                        raise WalError(
                            f"{path}: corrupt record at byte {offset} "
                            "with further records after it — the log and "
                            "its history disagree; refusing to replay"
                        )
                    torn = True
                    break
                if records and record.seq != records[-1].seq + 1:
                    raise WalError(
                        f"{path}: sequence gap ({records[-1].seq} -> "
                        f"{record.seq}); refusing to replay"
                    )
                records.append(record)
                offset = end
                good_end = end
            dropped = len(raw) - good_end if torn else 0
            if torn and repair and dropped:
                with open(path, "r+b") as fh:
                    fh.truncate(good_end)
                    fh.flush()
                    if self.fsync:
                        os.fsync(fh.fileno())
                tele = get_telemetry()
                if tele.enabled:
                    tele.inc("serve.wal.torn_tails")
                    tele.event(
                        "serve.wal_truncated",
                        dropped_bytes=dropped,
                        kept_records=len(records),
                    )
            self._last_seq = records[-1].seq if records else 0
            return records, dropped

    @staticmethod
    def _parse_line(line: bytes) -> Optional[WalRecord]:
        """Parse one segment line; ``None`` for a torn/corrupt record."""
        if not line.endswith(b"\n"):
            return None
        try:
            data = json.loads(line)
            seq = int(data["seq"])
            parent = str(data["parent"])
            after = str(data["after"])
            ins = [(int(u), int(v)) for u, v in data["ins"]]
            dels = [(int(u), int(v)) for u, v in data["dels"]]
            crc = int(data["crc"])
        except (ValueError, KeyError, TypeError):
            return None
        if crc != _payload_crc(
            seq, parent, after,
            [[u, v] for u, v in ins], [[u, v] for u, v in dels],
        ):
            return None
        return WalRecord(seq, parent, after, ins, dels)

    # ------------------------------------------------------------------
    # watermark
    # ------------------------------------------------------------------

    def applied_seq(self) -> int:
        """The durable apply watermark (0 when nothing was applied)."""
        path = self.watermark_path
        if not path.exists():
            return 0
        try:
            return int(json.loads(path.read_text(encoding="utf-8"))["seq"])
        except (ValueError, KeyError, OSError):
            # a torn watermark is survivable: replay dedupes by
            # fingerprint, the watermark only short-circuits it
            return 0

    def mark_applied(self, seq: int) -> None:
        """Atomically advance the watermark to ``seq``."""
        with self._mutex:
            self.directory.mkdir(parents=True, exist_ok=True)
            tmp = self.watermark_path.with_suffix(".json.tmp")
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(json.dumps({"seq": int(seq)}))
                fh.flush()
                if self.fsync:
                    os.fsync(fh.fileno())
            os.replace(tmp, self.watermark_path)

    def prune(self) -> int:
        """Drop records at or below the watermark; returns how many.

        Atomic rewrite (tmp + replace): a crash mid-prune leaves either
        the old segment or the new one, never a partial file.
        """
        with self._mutex:
            records, _ = self.recover()
            watermark = self.applied_seq()
            keep = [r for r in records if r.seq > watermark]
            if len(keep) == len(records):
                return 0
            tmp = self.segment_path.with_suffix(".jsonl.tmp")
            with open(tmp, "w", encoding="utf-8") as fh:
                for record in keep:
                    ins = [[u, v] for u, v in record.insertions]
                    dels = [[u, v] for u, v in record.deletions]
                    fh.write(json.dumps({
                        "seq": record.seq,
                        "parent": record.parent,
                        "after": record.after,
                        "ins": ins,
                        "dels": dels,
                        "crc": _payload_crc(
                            record.seq, record.parent, record.after,
                            ins, dels
                        ),
                    }, separators=(",", ":")) + "\n")
                fh.flush()
                if self.fsync:
                    os.fsync(fh.fileno())
            os.replace(tmp, self.segment_path)
            return len(records) - len(keep)


def plan_replay(
    records: List[WalRecord], fingerprint: str
) -> List[WalRecord]:
    """Which records still need applying onto a snapshot at ``fingerprint``.

    Walks the chained fingerprints of ``records`` (each record's
    ``parent`` must equal its predecessor's ``after``) and locates the
    snapshot inside the chain: records *before* that point were already
    folded into the snapshot (apply-then-crash-before-watermark) and
    are skipped; records after it are returned in order.  This is what
    makes replay idempotent — replaying a fully-applied segment returns
    an empty plan.

    Raises
    ------
    WalError
        The chain is discontinuous, or ``fingerprint`` appears nowhere
        in it (the snapshot and the log tell different histories).
    """
    if not records:
        return []
    for i in range(1, len(records)):
        if records[i].parent != records[i - 1].after:
            raise WalError(
                f"wal chain broken between seq {records[i - 1].seq} "
                f"(after {records[i - 1].after!r}) and seq "
                f"{records[i].seq} (parent {records[i].parent!r})"
            )
    if records[0].parent == fingerprint:
        return list(records)
    for i, record in enumerate(records):
        if record.after == fingerprint:
            return list(records[i + 1:])
    raise WalError(
        f"snapshot fingerprint {fingerprint!r} matches neither the base "
        f"nor any applied prefix of the {len(records)}-record wal chain "
        f"(base parent {records[0].parent!r}); the log belongs to a "
        "different history"
    )
