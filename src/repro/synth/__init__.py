"""Synthetic Yahoo!-like world: base host graph, good communities,
anomalies, spam farms and good-core assembly (the stand-in for the
paper's proprietary data set — see DESIGN.md section 2)."""

from .assembler import GOOD, SPAM, SyntheticWorld, WorldAssembler
from .communities import (
    add_blog_community,
    add_country_web,
    add_directory,
    add_edu_institutions,
    add_good_clique,
    add_gov_hosts,
    add_portal_community,
)
from .goodcore import (
    assemble_good_core,
    core_coverage,
    country_only_core,
    repair_core,
    subsample_core,
)
from .crawler import (
    ATTACK_KINDS,
    CrawlEvent,
    CrawlStream,
    TemporalAttack,
    parse_event_line,
    read_stream,
    synthesize_stream,
    validate_event,
)
from .hostgraph import BaseWeb, BaseWebConfig, generate_base_web, sample_targets
from .huge import (
    CORE_LINK_FRACTION,
    HUGE_CHUNK_EDGES,
    build_huge_store,
    huge_good_core,
    iter_huge_edges,
)
from .rng import RngStreams
from .scenario import WorldConfig, build_world, default_good_core, true_gamma
from .validation import assert_valid_world, validate_world
from .spamfarm import (
    SpamFarm,
    add_expired_domain_spam,
    add_farm_alliance,
    add_spam_farm,
)

__all__ = [
    "GOOD",
    "SPAM",
    "WorldAssembler",
    "SyntheticWorld",
    "RngStreams",
    "BaseWebConfig",
    "BaseWeb",
    "generate_base_web",
    "sample_targets",
    "add_directory",
    "add_gov_hosts",
    "add_edu_institutions",
    "add_portal_community",
    "add_blog_community",
    "add_country_web",
    "add_good_clique",
    "SpamFarm",
    "add_spam_farm",
    "add_farm_alliance",
    "add_expired_domain_spam",
    "assemble_good_core",
    "subsample_core",
    "country_only_core",
    "repair_core",
    "core_coverage",
    "WorldConfig",
    "build_world",
    "default_good_core",
    "true_gamma",
    "HUGE_CHUNK_EDGES",
    "CORE_LINK_FRACTION",
    "build_huge_store",
    "huge_good_core",
    "iter_huge_edges",
    "validate_world",
    "assert_valid_world",
    "ATTACK_KINDS",
    "CrawlEvent",
    "CrawlStream",
    "TemporalAttack",
    "parse_event_line",
    "read_stream",
    "synthesize_stream",
    "validate_event",
]
