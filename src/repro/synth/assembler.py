"""Incremental assembly of a labeled synthetic world.

The synthetic Yahoo!-like world is built in layers — base web first,
then good communities, then spam farms — by generators that each claim a
block of node ids, register host names, add edges, assign ground-truth
labels and tag named *groups* (e.g. ``"gov"``, ``"portal:hubs"``,
``"farm:3:boosters"``).  :class:`WorldAssembler` is the shared
accumulator those generators write into; :meth:`WorldAssembler.build`
freezes everything into an immutable :class:`SyntheticWorld`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..graph.webgraph import WebGraph

__all__ = ["WorldAssembler", "SyntheticWorld", "GOOD", "SPAM"]

GOOD = 0
SPAM = 1


class SyntheticWorld:
    """A frozen synthetic world: graph + ground truth + named groups.

    Attributes
    ----------
    graph:
        The host-level :class:`WebGraph` (with host names attached).
    spam_mask:
        Boolean per-node ground truth; ``True`` marks ``V⁻`` members.
    groups:
        Mapping of group name to a sorted node-id array.  Conventional
        names used by the scenario builder: ``"base:active"``,
        ``"directory"``, ``"gov"``, ``"edu"``, ``"edu:<country>"``,
        ``"portal:*"``, ``"blogs"``, ``"country:<cc>"``,
        ``"farm:<i>:target"``, ``"farm:<i>:boosters"``,
        ``"expired:targets"``, ``"clique:*"``, ``"anomalous"``.
    metadata:
        Free-form generator parameters, for provenance.
    """

    __slots__ = ("graph", "spam_mask", "groups", "metadata")

    def __init__(
        self,
        graph: WebGraph,
        spam_mask: np.ndarray,
        groups: Dict[str, np.ndarray],
        metadata: Optional[dict] = None,
    ) -> None:
        if spam_mask.shape != (graph.num_nodes,):
            raise ValueError("spam_mask length must equal node count")
        self.graph = graph
        self.spam_mask = spam_mask
        self.groups = groups
        self.metadata = dict(metadata or {})

    @property
    def num_nodes(self) -> int:
        """Number of hosts in the world."""
        return self.graph.num_nodes

    def good_nodes(self) -> np.ndarray:
        """Node ids of the ground-truth good set ``V⁺``."""
        return np.flatnonzero(~self.spam_mask)

    def spam_nodes(self) -> np.ndarray:
        """Node ids of the ground-truth spam set ``V⁻``."""
        return np.flatnonzero(self.spam_mask)

    def group(self, name: str) -> np.ndarray:
        """Node ids of a named group (raises ``KeyError`` if absent)."""
        return self.groups[name]

    def groups_matching(self, prefix: str) -> Dict[str, np.ndarray]:
        """All groups whose name starts with ``prefix``."""
        return {
            name: ids
            for name, ids in self.groups.items()
            if name.startswith(prefix)
        }

    def anomalous_nodes(self) -> np.ndarray:
        """Members of all groups tagged anomalous (the gray bars of
        Figure 3: good hosts with high relative mass caused by core
        coverage gaps, not by spamming)."""
        if "anomalous" in self.groups:
            return self.groups["anomalous"]
        return np.empty(0, dtype=np.int64)

    def label_of(self, node: int) -> str:
        """Ground-truth label string of a node (``"good"``/``"spam"``)."""
        return "spam" if self.spam_mask[node] else "good"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SyntheticWorld(nodes={self.num_nodes}, "
            f"spam={int(self.spam_mask.sum())}, groups={len(self.groups)})"
        )


class WorldAssembler:
    """Mutable accumulator for building a :class:`SyntheticWorld`."""

    def __init__(self) -> None:
        self._names: List[str] = []
        self._edge_blocks: List[np.ndarray] = []
        self._labels: List[int] = []
        self._groups: Dict[str, List[np.ndarray]] = {}
        self._metadata: dict = {}

    # ------------------------------------------------------------------
    # nodes
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of hosts claimed so far."""
        return len(self._names)

    def add_hosts(
        self, names: Sequence[str], label: int = GOOD
    ) -> np.ndarray:
        """Claim a block of hosts; returns their node ids.

        All hosts in the block share the same ground-truth ``label``
        (:data:`GOOD` or :data:`SPAM`).
        """
        if label not in (GOOD, SPAM):
            raise ValueError(f"label must be GOOD or SPAM, got {label}")
        start = len(self._names)
        self._names.extend(names)
        self._labels.extend([label] * len(names))
        return np.arange(start, len(self._names), dtype=np.int64)

    def relabel(self, nodes: np.ndarray, label: int) -> None:
        """Override the ground-truth label of existing nodes."""
        if label not in (GOOD, SPAM):
            raise ValueError(f"label must be GOOD or SPAM, got {label}")
        for node in np.asarray(nodes, dtype=np.int64):
            self._labels[int(node)] = label

    # ------------------------------------------------------------------
    # edges
    # ------------------------------------------------------------------

    def add_edges(self, sources: np.ndarray, dests: np.ndarray) -> None:
        """Append a block of directed edges (vectorized)."""
        sources = np.asarray(sources, dtype=np.int64)
        dests = np.asarray(dests, dtype=np.int64)
        if sources.shape != dests.shape:
            raise ValueError("sources and dests must have the same shape")
        if sources.size == 0:
            return
        upper = len(self._names)
        if sources.min() < 0 or dests.min() < 0 or max(
            sources.max(), dests.max()
        ) >= upper:
            raise ValueError("edge endpoint references an unclaimed node id")
        self._edge_blocks.append(np.column_stack((sources, dests)))

    def add_edge(self, source: int, dest: int) -> None:
        """Append one directed edge."""
        self.add_edges(
            np.asarray([source], dtype=np.int64),
            np.asarray([dest], dtype=np.int64),
        )

    # ------------------------------------------------------------------
    # groups and metadata
    # ------------------------------------------------------------------

    def mark(self, group: str, nodes: np.ndarray) -> None:
        """Add nodes to a named group (creating it on first use)."""
        nodes = np.asarray(nodes, dtype=np.int64)
        self._groups.setdefault(group, []).append(nodes)

    def note(self, key: str, value) -> None:
        """Record a metadata entry (generator provenance)."""
        self._metadata[key] = value

    # ------------------------------------------------------------------
    # build
    # ------------------------------------------------------------------

    def build(self) -> SyntheticWorld:
        """Freeze into a :class:`SyntheticWorld` (dedups edges, drops
        self-links — the host-graph conventions)."""
        if self._edge_blocks:
            edges = np.concatenate(self._edge_blocks, axis=0)
        else:
            edges = np.empty((0, 2), dtype=np.int64)
        graph = WebGraph.from_edges(len(self._names), edges, self._names)
        spam_mask = np.asarray(self._labels, dtype=np.int8) == SPAM
        groups = {
            name: np.unique(np.concatenate(blocks))
            for name, blocks in self._groups.items()
        }
        return SyntheticWorld(graph, spam_mask, groups, self._metadata)
