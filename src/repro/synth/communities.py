"""Good-web communities: core families and the Section 4.4.1 anomalies.

The paper's good core is assembled from three host families — a
trustworthy web directory, US governmental hosts and worldwide
educational hosts (Section 4.2) — and its false-positive post-mortem
identifies three *anomaly* archetypes whose relative mass is high only
because the core fails to cover them:

* a huge single-domain community (Alibaba's ``*.alibaba.com`` hosts),
* a large, decentralized blog community (``*.blogger.com.br``),
* an under-covered national web (Poland, with only 12 Polish
  educational hosts in the core, versus 4020 Czech ones).

Plus one benign observation: *isolated cliques* of good hosts (gaming
communities, web-design shops and their clients) that show moderate
positive mass.

This module generates all of these as labeled groups on top of the base
web, so the evaluation harness can reproduce Figures 3–5 — including
the gray "anomalous" bars and the core-repair experiment of
Section 4.4.2.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .assembler import GOOD, WorldAssembler
from .hostgraph import BaseWeb, sample_targets

__all__ = [
    "add_directory",
    "add_gov_hosts",
    "add_edu_institutions",
    "add_portal_community",
    "add_blog_community",
    "add_country_web",
    "add_good_clique",
]


def _attach_inlinks(
    assembler: WorldAssembler,
    rng: np.random.Generator,
    base: BaseWeb,
    targets: np.ndarray,
    count: int,
) -> None:
    """Add ``count`` links from random active base hosts to ``targets``
    (popularity-weighted sources are unnecessary; any active host can
    link out)."""
    if count <= 0 or len(targets) == 0:
        return
    sources = rng.choice(base.active, size=count)
    dests = rng.choice(targets, size=count)
    assembler.add_edges(sources, dests)


def _attach_outlinks(
    assembler: WorldAssembler,
    rng: np.random.Generator,
    base: BaseWeb,
    sources: np.ndarray,
    count: int,
    *,
    uniform: bool = False,
) -> None:
    """Add ``count`` links from ``sources`` to base hosts.

    Targets are popularity-weighted by default (citations go to the
    visible head of the web); ``uniform=True`` spreads them evenly over
    all linkable hosts instead — directories deliberately list obscure
    sites too, which is what gives a directory-seeded core its breadth.
    """
    if count <= 0 or len(sources) == 0:
        return
    from_nodes = rng.choice(sources, size=count)
    if uniform:
        to_nodes = rng.choice(base.linkable, size=count)
    else:
        to_nodes = sample_targets(rng, base.linkable, base.popularity, count)
    assembler.add_edges(from_nodes, to_nodes)


def add_directory(
    assembler: WorldAssembler,
    rng: np.random.Generator,
    base: BaseWeb,
    size: int = 400,
    *,
    listings_per_host: int = 30,
) -> np.ndarray:
    """A small, spam-free web directory (core family #1).

    Directory hosts form a shallow category tree (each links its parent
    and children) and, crucially, link *out* to many reputable base
    hosts — that is what makes a directory-seeded jump spread trust
    through the good web.  They also receive inlinks from the base web.
    """
    if size < 2:
        raise ValueError("directory needs at least 2 hosts")
    names = [f"cat{i}.web-directory.org" for i in range(size)]
    ids = assembler.add_hosts(names, GOOD)
    # category tree: node i links to parent (i-1)//2 and vice versa
    children = np.arange(1, size, dtype=np.int64)
    parents = (children - 1) // 2
    assembler.add_edges(ids[children], ids[parents])
    assembler.add_edges(ids[parents], ids[children])
    # listings: every directory host points at reputable base hosts;
    # half the listings go to the popular head, half are spread
    # uniformly (directories list obscure sites too — breadth is
    # what makes the core cover the web)
    _attach_outlinks(
        assembler, rng, base, ids, size * listings_per_host // 2
    )
    _attach_outlinks(
        assembler,
        rng,
        base,
        ids,
        size * listings_per_host // 2,
        uniform=True,
    )
    # the directory is known and linked-to
    _attach_inlinks(assembler, rng, base, ids, max(size // 2, 1))
    assembler.mark("directory", ids)
    return ids


def add_gov_hosts(
    assembler: WorldAssembler,
    rng: np.random.Generator,
    base: BaseWeb,
    size: int = 1200,
    *,
    interlink_factor: float = 3.0,
) -> np.ndarray:
    """US governmental hosts (core family #2).

    Agencies interlink heavily and are widely cited by the ordinary
    web; they also link out to base hosts (press rooms, resources).
    """
    if size < 2:
        raise ValueError("need at least 2 gov hosts")
    names = [f"www.agency{i}.gov" for i in range(size)]
    ids = assembler.add_hosts(names, GOOD)
    num_internal = int(size * interlink_factor)
    src = rng.choice(ids, size=num_internal)
    dst = rng.choice(ids, size=num_internal)
    keep = src != dst
    assembler.add_edges(src[keep], dst[keep])
    _attach_outlinks(assembler, rng, base, ids, size * 3)
    _attach_inlinks(assembler, rng, base, ids, size * 2)
    assembler.mark("gov", ids)
    return ids


def add_edu_institutions(
    assembler: WorldAssembler,
    rng: np.random.Generator,
    base: BaseWeb,
    countries: Dict[str, Tuple[int, int]],
    *,
    interlink_factor: float = 2.0,
) -> Dict[str, np.ndarray]:
    """Educational hosts of many countries (core family #3).

    ``countries`` maps a country code (``"us"``, ``"cz"``, …) to
    ``(num_institutions, mean_hosts_per_institution)``.  Hosts within an
    institution interlink (department sites), institutions interlink
    within and across countries (the international academic web), and
    the surrounding base web both cites and is cited by them.

    Returns the per-country id arrays; every host is also added to the
    global ``"edu"`` group and to ``"edu:<cc>"``.
    """
    per_country: Dict[str, np.ndarray] = {}
    for cc, (num_institutions, mean_hosts) in countries.items():
        if num_institutions < 1 or mean_hosts < 1:
            raise ValueError(f"invalid edu sizing for country {cc!r}")
        suffix = ".edu" if cc == "us" else f".edu.{cc}"
        country_ids: List[np.ndarray] = []
        for inst in range(num_institutions):
            count = max(1, int(rng.poisson(mean_hosts)))
            names = [
                (
                    f"www.uni{inst}-{cc}{suffix}"
                    if h == 0
                    else f"dept{h}.uni{inst}-{cc}{suffix}"
                )
                for h in range(count)
            ]
            ids = assembler.add_hosts(names, GOOD)
            # hub-and-spoke inside the institution: departments link the
            # main host and back
            if count > 1:
                spokes = ids[1:]
                assembler.add_edges(
                    spokes, np.full(len(spokes), ids[0], dtype=np.int64)
                )
                assembler.add_edges(
                    np.full(len(spokes), ids[0], dtype=np.int64), spokes
                )
            country_ids.append(ids)
        all_ids = np.concatenate(country_ids)
        # academic interlinking within the country
        num_internal = int(len(all_ids) * interlink_factor)
        if len(all_ids) > 1 and num_internal:
            src = rng.choice(all_ids, size=num_internal)
            dst = rng.choice(all_ids, size=num_internal)
            keep = src != dst
            assembler.add_edges(src[keep], dst[keep])
        _attach_outlinks(assembler, rng, base, all_ids, len(all_ids) * 3)
        _attach_inlinks(assembler, rng, base, all_ids, len(all_ids) * 2)
        assembler.mark("edu", all_ids)
        assembler.mark(f"edu:{cc}", all_ids)
        per_country[cc] = all_ids
    # international academic links
    codes = [cc for cc in per_country if len(per_country[cc]) > 0]
    if len(codes) > 1:
        for cc in codes:
            others = np.concatenate(
                [per_country[other] for other in codes if other != cc]
            )
            count = max(len(per_country[cc]) // 4, 1)
            src = rng.choice(per_country[cc], size=count)
            dst = rng.choice(others, size=count)
            assembler.add_edges(src, dst)
    return per_country


def add_portal_community(
    assembler: WorldAssembler,
    rng: np.random.Generator,
    base: BaseWeb,
    domain: str = "megaportal.com",
    num_hosts: int = 800,
    *,
    num_hubs: int = 8,
    external_inlinks: int = 6,
    member_links: int = 2,
) -> Tuple[np.ndarray, np.ndarray]:
    """A huge single-domain community (the Alibaba analogue).

    One registrable domain with very many subdomain hosts: a few *hub*
    hosts (``www.``, regional portals) that everything links to, dense
    member↔hub linking, sparse member↔member links, and only a
    trickle of inlinks from the outside web.  All hosts are good, but
    with the community absent from the good core their PageRank is
    self-sourced (uniform jumps of many members), so estimated relative
    mass comes out high — the Figure 3 gray-bar anomaly.

    Returns ``(all_ids, hub_ids)``.  The Section 4.4.2 repair experiment
    adds the hubs to the core and watches the members' mass collapse.
    """
    if num_hosts < num_hubs + 1:
        raise ValueError("num_hosts must exceed num_hubs")
    hub_labels = ["www", "china", "en", "trade", "shop", "news", "mail",
                  "search", "forum", "help", "dev", "m"]
    names = [f"{hub_labels[i % len(hub_labels)]}{i // len(hub_labels) or ''}"
             f".{domain}" for i in range(num_hubs)]
    names += [f"member{i}.{domain}" for i in range(num_hosts - num_hubs)]
    ids = assembler.add_hosts(names, GOOD)
    hubs = ids[:num_hubs]
    members = ids[num_hubs:]
    # members ↔ hubs: every member links (and is linked from) two
    # hubs — portal navigation touches the www host plus a regional
    # hub.  The hubs being on every member's path is what makes the
    # Section 4.4.2 repair work: adding the few hubs to the core
    # re-covers the whole community.
    for _ in range(2):
        hub_choice = rng.choice(hubs, size=len(members))
        assembler.add_edges(members, hub_choice)
        assembler.add_edges(hub_choice, members)
    # hubs interlink fully
    for h in hubs:
        others = hubs[hubs != h]
        assembler.add_edges(np.full(len(others), h, dtype=np.int64), others)
    # sparse member ↔ member
    num_member_links = len(members) * member_links
    src = rng.choice(members, size=num_member_links)
    dst = rng.choice(members, size=num_member_links)
    keep = src != dst
    assembler.add_edges(src[keep], dst[keep])
    # a trickle of external citations (weak connection to the web)
    _attach_inlinks(assembler, rng, base, hubs, external_inlinks)
    # the portal cites the outside web normally — isolation is one-way:
    # outlinks exist, inlinks are what the community lacks
    _attach_outlinks(assembler, rng, base, members, len(members) // 2)
    _attach_outlinks(assembler, rng, base, hubs, num_hubs * 2)
    assembler.mark(f"portal:{domain}", ids)
    assembler.mark(f"portal:{domain}:hubs", hubs)
    assembler.mark("anomalous", ids)
    return ids, hubs


def add_blog_community(
    assembler: WorldAssembler,
    rng: np.random.Generator,
    base: BaseWeb,
    suffix: str = "blogger.com.br",
    num_hosts: int = 900,
    *,
    blogroll_links: int = 3,
    external_inlinks: int = 4,
) -> np.ndarray:
    """A large decentralized blog community (the ``blogger.com.br``
    analogue).

    Many small hosts under one suffix, connected by random blogroll
    links with *no* central reputable hubs — which is exactly why the
    paper found this anomaly hard to repair: there is no short list of
    hosts whose inclusion in the core would cover the community.
    """
    if num_hosts < 2:
        raise ValueError("need at least 2 blog hosts")
    names = [f"blog{i}.{suffix}" for i in range(num_hosts)]
    ids = assembler.add_hosts(names, GOOD)
    num_links = num_hosts * blogroll_links
    src = rng.choice(ids, size=num_links)
    dst = rng.choice(ids, size=num_links)
    keep = src != dst
    assembler.add_edges(src[keep], dst[keep])
    _attach_inlinks(assembler, rng, base, ids, external_inlinks)
    # bloggers link the outside web liberally; the community's problem
    # is that nothing reputable links back
    _attach_outlinks(assembler, rng, base, ids, len(ids))
    assembler.mark("blogs", ids)
    assembler.mark("anomalous", ids)
    return ids


def add_country_web(
    assembler: WorldAssembler,
    rng: np.random.Generator,
    base: BaseWeb,
    cc: str,
    num_hosts: int,
    *,
    num_edu_hosts: int = 60,
    mean_outdegree: float = 5.0,
    cross_links: Optional[int] = None,
    anomalous: bool = False,
) -> Tuple[np.ndarray, np.ndarray]:
    """A national web community under one ccTLD (the Poland/Czech
    analogues).

    A self-contained national web: ordinary ``.<cc>`` hosts linking
    preferentially among themselves, a contingent of national
    educational hosts (added to ``"edu:<cc>"``, so the good-core builder
    can include many — Czech-style coverage — or almost none —
    Polish-style), and a modest number of cross links to and from the
    global base web.

    Mark ``anomalous=True`` for the under-covered country whose good
    hosts are expected to surface as high-mass false positives.

    Returns ``(all_ids, edu_ids)``.
    """
    if num_hosts < num_edu_hosts + 2:
        raise ValueError("num_hosts must exceed num_edu_hosts")
    if cross_links is None:
        cross_links = max(num_hosts // 12, 10)
    ordinary = [f"www.firma{i}.{cc}" for i in range(num_hosts - num_edu_hosts)]
    edu = [
        (f"www.uni{i}.edu.{cc}" if i % 3 == 0 else f"dept{i}.uni{i // 3}.edu.{cc}")
        for i in range(num_edu_hosts)
    ]
    ordinary_ids = assembler.add_hosts(ordinary, GOOD)
    edu_ids = assembler.add_hosts(edu, GOOD)
    ids = np.concatenate([ordinary_ids, edu_ids])
    # internal national web: preferential attachment within the country
    popularity = rng.zipf(1.8, size=len(ids)).astype(np.float64)
    num_links = int(len(ids) * mean_outdegree)
    src = rng.choice(ids, size=num_links)
    dst = sample_targets(rng, ids, popularity, num_links)
    keep = src != dst
    assembler.add_edges(src[keep], dst[keep])
    # the national web cites its universities
    uni_links = max(num_edu_hosts * 3, 1)
    assembler.add_edges(
        rng.choice(ordinary_ids, size=uni_links),
        rng.choice(edu_ids, size=uni_links),
    )
    # cross links with the global web: the national web cites the
    # global one freely, but is cited back more rarely
    _attach_inlinks(assembler, rng, base, ids, cross_links)
    _attach_outlinks(assembler, rng, base, ids, cross_links * 3)
    assembler.mark(f"country:{cc}", ids)
    assembler.mark("edu", edu_ids)
    assembler.mark(f"edu:{cc}", edu_ids)
    if anomalous:
        assembler.mark("anomalous", ids)
    return ids, edu_ids


def add_good_clique(
    assembler: WorldAssembler,
    rng: np.random.Generator,
    base: BaseWeb,
    size: int = 20,
    *,
    tag: str = "clique:0",
    hub_and_clients: bool = True,
    external_inlinks: int = 0,
) -> np.ndarray:
    """An isolated clique of good hosts (Section 4.4.3, observation 1).

    Two honest shapes the paper found among positive-mass good hosts:
    a web-design/hosting company whose clients link to it and it links
    back (``hub_and_clients=True``), or an online-gaming community with
    dense mutual links (``False``).  Few or no external links point in,
    so the members' PageRank is self-sourced and their estimated mass
    is positive despite being good.
    """
    if size < 2:
        raise ValueError("a clique needs at least 2 hosts")
    slug = tag.replace(":", "-")
    names = [f"www.{slug}-member{i}.com" for i in range(size)]
    ids = assembler.add_hosts(names, GOOD)
    if hub_and_clients:
        hub = ids[0]
        clients = ids[1:]
        assembler.add_edges(
            clients, np.full(len(clients), hub, dtype=np.int64)
        )
        assembler.add_edges(
            np.full(len(clients), hub, dtype=np.int64), clients
        )
    else:
        # dense mutual linking
        for i in ids:
            others = ids[ids != i]
            pick = rng.choice(
                others, size=min(len(others), 6), replace=False
            )
            assembler.add_edges(np.full(len(pick), i, dtype=np.int64), pick)
    # the few external links a clique does attract land on its most
    # visible member and come from visible (popularity-weighted,
    # core-reachable) hosts — the clique is weakly connected, not
    # disconnected, so its relative mass is high but below saturation
    if external_inlinks > 0:
        sources = sample_targets(
            rng,
            base.connected,
            base.connected_popularity,
            external_inlinks,
        )
        assembler.add_edges(
            sources, np.full(len(sources), ids[0], dtype=np.int64)
        )
    assembler.mark(tag, ids)
    assembler.mark("cliques", ids)
    return ids
