"""Simulated crawler frontier: timestamped edge-event streams.

The paper's threat model is temporal — expired-domain takeovers
(Section 2.3) happen *to* a graph over time, farms are grown link by
link to stay under the ``ρ`` radar, and a good-core member can rot
long after ``Ṽ⁺`` was assembled.  A single snapshot cannot exhibit any
of that, so this module emits what a crawler frontier would: a
deterministic, seeded stream of timestamped edge events over an
existing :class:`~repro.synth.assembler.SyntheticWorld` (or any
labeled graph), with scripted *temporal attacks* interleaved into the
background churn.

Event schema (one JSON object per line on the wire)::

    {"id": 17, "ts": 42, "op": "+", "src": 3, "dst": 9}

``id`` is a unique non-negative event id, sequential in true stream
order (duplicates and reordering are transport artifacts the ingestor
must undo); ``ts`` is a non-decreasing event-time tick; ``op`` is
``"+"`` (link appeared) or ``"-"`` (link disappeared).  The schema is
deliberately strict — :func:`validate_event` rejects everything else
with a typed :class:`~repro.errors.StreamEventError` so the ingestor
can quarantine malformed records under a machine-readable reason.

Attack scripts
--------------
``expired-takeover``
    A reputable good host's domain expires and a spammer re-registers
    it: the ground-truth label flips at onset, the host's outgoing
    good links rot away, and a farm of previously dormant hosts grows
    to amplify it.  Caught when Algorithm 2 fires (scaled PageRank
    ≥ ρ and relative mass ≥ τ).
``gradual-farm``
    A farm grown one booster every few events, staying under ``ρ``
    for as long as possible.  Same catch condition.
``stale-core``
    A member of the good core goes stale and gets hijacked: its
    outlinks rot, dormant boosters point at it.  Caught by the core
    audit (relative mass ≥ the audit threshold) — the detector the
    ``audit-core`` flow runs.

Everything is deterministic in ``seed``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import StreamError, StreamEventError
from ..graph.webgraph import WebGraph

__all__ = [
    "ATTACK_KINDS",
    "CrawlEvent",
    "TemporalAttack",
    "CrawlStream",
    "validate_event",
    "parse_event_line",
    "synthesize_stream",
    "read_stream",
]

PathLike = Union[str, Path]

#: The scripted attack kinds, in the order they are scheduled.
ATTACK_KINDS = ("expired-takeover", "gradual-farm", "stale-core")

_REQUIRED_FIELDS = ("id", "ts", "op", "src", "dst")


class CrawlEvent:
    """One timestamped edge event of the crawl stream."""

    __slots__ = ("id", "ts", "op", "src", "dst")

    def __init__(self, id: int, ts: int, op: str, src: int, dst: int) -> None:
        self.id = int(id)
        self.ts = int(ts)
        self.op = str(op)
        self.src = int(src)
        self.dst = int(dst)

    def edge(self) -> Tuple[int, int]:
        return (self.src, self.dst)

    def as_dict(self) -> dict:
        return {
            "id": self.id,
            "ts": self.ts,
            "op": self.op,
            "src": self.src,
            "dst": self.dst,
        }

    def to_line(self) -> str:
        """The canonical one-line wire encoding (no trailing newline)."""
        return json.dumps(self.as_dict(), separators=(",", ":"))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CrawlEvent):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CrawlEvent(id={self.id}, ts={self.ts}, "
            f"{self.op}({self.src}, {self.dst}))"
        )


def validate_event(obj: object, *, num_nodes: Optional[int] = None) -> CrawlEvent:
    """Validate a decoded event object against the strict schema.

    Returns the typed :class:`CrawlEvent`; raises
    :class:`~repro.errors.StreamEventError` with a machine-readable
    ``reason`` otherwise.  ``num_nodes`` (when given) additionally
    bounds the endpoints — the crawl universe is fixed, an endpoint
    outside it is a poison record, not a new host.
    """
    if not isinstance(obj, dict):
        raise StreamEventError("bad-type", f"event must be an object, got {type(obj).__name__}")
    for field in _REQUIRED_FIELDS:
        if field not in obj:
            raise StreamEventError("missing-field", f"event is missing {field!r}")
    unknown = set(obj) - set(_REQUIRED_FIELDS)
    if unknown:
        raise StreamEventError(
            "bad-type", f"event carries unknown field {sorted(unknown)[0]!r}"
        )
    for field in ("id", "ts", "src", "dst"):
        value = obj[field]
        # bool is an int subclass; a crawler emitting `true` is broken
        if isinstance(value, bool) or not isinstance(value, int):
            raise StreamEventError(
                "bad-type", f"event field {field!r} must be an integer, got {value!r}"
            )
    op = obj["op"]
    if op not in ("+", "-"):
        raise StreamEventError("bad-op", f"event op must be '+' or '-', got {op!r}")
    if obj["id"] < 0 or obj["ts"] < 0:
        raise StreamEventError(
            "negative-id", f"event id/ts must be non-negative (id={obj['id']}, ts={obj['ts']})"
        )
    src, dst = obj["src"], obj["dst"]
    if src < 0 or dst < 0:
        raise StreamEventError("negative-id", f"negative endpoint ({src}, {dst})")
    if src == dst:
        raise StreamEventError("self-link", f"self-link ({src}, {dst})")
    if num_nodes is not None and (src >= num_nodes or dst >= num_nodes):
        raise StreamEventError(
            "out-of-range", f"endpoint ({src}, {dst}) outside the {num_nodes}-host universe"
        )
    return CrawlEvent(obj["id"], obj["ts"], op, src, dst)


def parse_event_line(line: str, *, num_nodes: Optional[int] = None) -> CrawlEvent:
    """Decode + validate one wire line (torn JSON → ``"bad-json"``)."""
    try:
        obj = json.loads(line)
    except (ValueError, TypeError) as exc:
        raise StreamEventError("bad-json", f"unparsable event line: {exc}") from None
    return validate_event(obj, num_nodes=num_nodes)


class TemporalAttack:
    """One scripted temporal attack and its ground truth.

    Attributes
    ----------
    name:
        Unique label (``"expired-takeover:0"``).
    kind:
        One of :data:`ATTACK_KINDS`.
    target:
        The node the attack promotes (and the detector must catch).
    onset_id:
        Event id of the attack's first step — detection latency is
        measured in events past this point.
    nodes:
        Every node the script touches (boosters + target), sorted.
    """

    __slots__ = ("name", "kind", "target", "onset_id", "nodes")

    def __init__(
        self, name: str, kind: str, target: int, onset_id: int, nodes: Sequence[int]
    ) -> None:
        if kind not in ATTACK_KINDS:
            raise StreamError(f"unknown attack kind {kind!r}")
        self.name = name
        self.kind = kind
        self.target = int(target)
        self.onset_id = int(onset_id)
        self.nodes = np.unique(np.asarray(list(nodes), dtype=np.int64))

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "target": self.target,
            "onset_id": self.onset_id,
            "nodes": [int(n) for n in self.nodes],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TemporalAttack":
        return cls(
            data["name"], data["kind"], data["target"], data["onset_id"], data["nodes"]
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TemporalAttack({self.name}, target={self.target}, "
            f"onset_id={self.onset_id}, nodes={len(self.nodes)})"
        )


class CrawlStream:
    """A synthesized event stream plus its attack ground truth."""

    __slots__ = ("events", "attacks", "num_nodes", "seed")

    def __init__(
        self,
        events: Sequence[CrawlEvent],
        attacks: Sequence[TemporalAttack],
        num_nodes: int,
        seed: int,
    ) -> None:
        self.events = list(events)
        self.attacks = list(attacks)
        self.num_nodes = int(num_nodes)
        self.seed = int(seed)

    def lines(self) -> List[str]:
        """The wire encoding, one line per event (true order)."""
        return [event.to_line() for event in self.events]

    def write(self, path: PathLike) -> Path:
        """Write the stream as JSONL plus a ``.attacks.json`` sidecar."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            for event in self.events:
                fh.write(event.to_line() + "\n")
        sidecar = {
            "num_nodes": self.num_nodes,
            "seed": self.seed,
            "num_events": len(self.events),
            "attacks": [attack.as_dict() for attack in self.attacks],
        }
        attacks_path(path).write_text(
            json.dumps(sidecar, indent=2) + "\n", encoding="utf-8"
        )
        return path

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CrawlStream(events={len(self.events)}, "
            f"attacks={len(self.attacks)}, n={self.num_nodes})"
        )


def attacks_path(stream_path: PathLike) -> Path:
    """The sidecar path holding a stream's attack ground truth."""
    stream_path = Path(stream_path)
    return stream_path.with_name(stream_path.name + ".attacks.json")


def read_stream(path: PathLike, *, num_nodes: Optional[int] = None) -> CrawlStream:
    """Read a stream written by :meth:`CrawlStream.write`.

    Strict: any malformed line raises (this reads *trusted* synthesized
    streams — the lenient path is the ingestor's DLQ, not this reader).
    """
    path = Path(path)
    events = []
    with open(path, "r", encoding="utf-8") as fh:
        for raw in fh:
            raw = raw.strip()
            if not raw:
                continue
            events.append(parse_event_line(raw, num_nodes=num_nodes))
    sidecar = attacks_path(path)
    attacks: List[TemporalAttack] = []
    n = num_nodes or 0
    seed = 0
    if sidecar.exists():
        data = json.loads(sidecar.read_text(encoding="utf-8"))
        attacks = [TemporalAttack.from_dict(a) for a in data.get("attacks", [])]
        n = int(data.get("num_nodes", n))
        seed = int(data.get("seed", 0))
    if not n:
        n = 1 + max((max(e.src, e.dst) for e in events), default=0)
    return CrawlStream(events, attacks, n, seed)


# ----------------------------------------------------------------------
# synthesis
# ----------------------------------------------------------------------


class _AttackScript:
    """A precomputed step list scheduled into the background churn."""

    __slots__ = ("name", "kind", "target", "steps", "stride", "onset", "nodes")

    def __init__(self, name, kind, target, steps, stride, onset, nodes) -> None:
        self.name = name
        self.kind = kind
        self.target = target
        self.steps = steps  # list of (op, src, dst)
        self.stride = stride
        self.onset = onset  # event index of the first step
        self.nodes = nodes


def _script_expired_takeover(
    rng: np.random.Generator,
    graph: WebGraph,
    target: int,
    boosters: np.ndarray,
) -> List[Tuple[str, int, int]]:
    """The takeover script: old endorsements rot, a booster farm grows."""
    steps: List[Tuple[str, int, int]] = []
    # the re-registered domain stops endorsing anyone (parked page)
    for v in graph.out_neighbors(target):
        steps.append(("-", int(target), int(v)))
    # the good web gradually cleans up its links to the parked page —
    # the residual trusted rank the spammer bought decays away...
    for w in graph.in_neighbors(target):
        steps.append(("-", int(w), int(target)))
    # ...while the amplification farm grows one booster at a time
    for booster in boosters:
        steps.append(("+", int(booster), int(target)))
    return steps


def _script_gradual_farm(
    rng: np.random.Generator, target: int, boosters: np.ndarray
) -> List[Tuple[str, int, int]]:
    """A farm grown link by link around a dormant target."""
    return [("+", int(b), int(target)) for b in boosters]


def _script_stale_core(
    rng: np.random.Generator,
    graph: WebGraph,
    target: int,
    boosters: np.ndarray,
) -> List[Tuple[str, int, int]]:
    """A core member rots, then gets hijacked by a booster farm."""
    steps: List[Tuple[str, int, int]] = []
    # staleness: most of its pages stop linking out (one outlink is
    # kept — a fully dangling core member would recirculate its own
    # mass through the core jump vector and mask the hijack), and the
    # good community stops endorsing it, so its core-backed share fades
    for v in graph.out_neighbors(target)[1:]:
        steps.append(("-", int(target), int(v)))
    for w in graph.in_neighbors(target):
        steps.append(("-", int(w), int(target)))
    # the hijacker's farm then points at the husk
    for booster in boosters:
        steps.append(("+", int(booster), int(target)))
    return steps


def synthesize_stream(
    graph: WebGraph,
    *,
    spam_mask: Optional[np.ndarray] = None,
    core: Optional[np.ndarray] = None,
    seed: int = 0,
    num_events: int = 1500,
    attacks: Sequence[str] = ATTACK_KINDS,
    boosters_per_attack: int = 30,
    attack_stride: int = 4,
    ts_increment: int = 2,
    burst: Optional[Tuple[int, int]] = None,
) -> CrawlStream:
    """Emit a deterministic crawl-event stream over ``graph``.

    Background churn (inserts and deletes over the connected good part
    of the graph) is interleaved with one script per requested attack
    kind.  Attack actors are drawn from the *dormant* pool — isolated
    hosts, which every synthetic world carries (~25% of the base web) —
    so the fixed node universe never needs to grow mid-stream.

    Parameters
    ----------
    spam_mask:
        Ground-truth labels; attack targets are drawn from the good
        side.  Defaults to all-good.
    core:
        Good-core node ids; required for the ``stale-core`` attack
        (its target must be a core member with outlinks).
    boosters_per_attack:
        Farm size each attack grows to.  Together with the graph size
        this controls when the attack crosses ρ.
    attack_stride:
        Background events between consecutive steps of one attack —
        the "gradual" in gradual farm growth.
    ts_increment:
        Mean event-time advance per event (drawn from
        ``[0, ts_increment]``; 0 allows ts ties).
    burst:
        Optional ``(start_index, length)``: events in that index range
        advance ``ts`` by 0 — a flood arriving "at the same instant",
        for backpressure tests.
    """
    if num_events < 1:
        raise StreamError("num_events must be positive")
    for kind in attacks:
        if kind not in ATTACK_KINDS:
            raise StreamError(f"unknown attack kind {kind!r}")
    rng = np.random.default_rng(seed)
    n = graph.num_nodes
    if spam_mask is None:
        spam_mask = np.zeros(n, dtype=bool)
    spam_mask = np.asarray(spam_mask, dtype=bool)

    isolated = np.flatnonzero(graph.isolated_mask())
    active = np.flatnonzero(~graph.isolated_mask() & ~spam_mask)
    if len(active) < 8:
        raise StreamError("graph has too few active good hosts to churn")

    # --- build the attack scripts -----------------------------------
    scripts: List[_AttackScript] = []
    claimed: set = set()
    dormant_pool = list(isolated)
    rng.shuffle(dormant_pool)

    def _claim_dormant(count: int) -> np.ndarray:
        picked = []
        while dormant_pool and len(picked) < count:
            node = int(dormant_pool.pop())
            if node not in claimed:
                claimed.add(node)
                picked.append(node)
        if len(picked) < count:
            raise StreamError(
                f"dormant pool exhausted: needed {count} isolated hosts, "
                f"got {len(picked)}"
            )
        return np.asarray(picked, dtype=np.int64)

    indeg = graph.in_degree()
    outdeg = graph.out_degree()
    # two scripts may tear down the same base edge (e.g. an expired
    # target that links to the stale core member: one deletes its
    # out-link, the other its in-link) — only the first delete is real
    script_deletes: set = set()
    for i, kind in enumerate(attacks):
        if kind == "expired-takeover":
            # a reputable host: good, linked-to, with outlinks to rot
            pool = active[(indeg[active] >= 2) & (outdeg[active] >= 1)]
            pool = pool[~np.isin(pool, list(claimed))]
            if len(pool) == 0:
                raise StreamError("no reputable good host to expire")
            target = int(pool[int(rng.integers(0, len(pool)))])
            boosters = _claim_dormant(boosters_per_attack)
            steps = _script_expired_takeover(rng, graph, target, boosters)
        elif kind == "gradual-farm":
            boosters = _claim_dormant(boosters_per_attack)
            target = int(_claim_dormant(1)[0])
            steps = _script_gradual_farm(rng, target, boosters)
        elif kind == "stale-core":
            if core is None or len(core) == 0:
                raise StreamError("stale-core attack requires a good core")
            core = np.asarray(core, dtype=np.int64)
            pool = core[(outdeg[core] >= 1)]
            pool = pool[~np.isin(pool, list(claimed))]
            if len(pool) == 0:
                raise StreamError("no core member with outlinks to go stale")
            target = int(pool[int(rng.integers(0, len(pool)))])
            # a core member starts with a 1/|core| jump-share floor on
            # its core PageRank; pushing relative mass past the audit
            # gate takes a farm roughly twice the size
            boosters = _claim_dormant(2 * boosters_per_attack)
            steps = _script_stale_core(rng, graph, target, boosters)
        steps = [
            step
            for step in steps
            if step[0] == "+" or (step[1], step[2]) not in script_deletes
        ]
        script_deletes.update(
            (step[1], step[2]) for step in steps if step[0] == "-"
        )
        claimed.add(target)
        claimed.update(int(b) for b in boosters)
        scripts.append(
            _AttackScript(
                f"{kind}:{i}",
                kind,
                target,
                steps,
                attack_stride,
                0,  # onset assigned below
                np.concatenate([[target], boosters]),
            )
        )

    # stagger onsets so the scripts overlap but start distinctly; make
    # sure every script fits before the stream ends
    for i, script in enumerate(scripts):
        span = len(script.steps) * script.stride
        latest = max(1, num_events - span - 1)
        onset = int(num_events * (0.15 + 0.18 * i))
        script.onset = min(onset, latest)

    # schedule: event index -> (script, step index)
    scheduled: Dict[int, Tuple[_AttackScript, int]] = {}
    for script in scripts:
        for j in range(len(script.steps)):
            idx = script.onset + j * script.stride
            while idx in scheduled:  # collision: slide to the next slot
                idx += 1
            scheduled[idx] = (script, j)

    # --- background churn over the active good web -------------------
    # live set + deletable pool (never touching attack-claimed nodes)
    live = set()
    deletable: List[Tuple[int, int]] = []
    for u, v in zip(
        np.repeat(np.arange(n, dtype=np.int64), outdeg), graph.indices
    ):
        edge = (int(u), int(v))
        live.add(edge)
        if edge[0] not in claimed and edge[1] not in claimed:
            deletable.append(edge)
    rng.shuffle(deletable)
    churn_pool = active[~np.isin(active, list(claimed))]
    if len(churn_pool) < 4:
        raise StreamError("attack scripts claimed the whole active pool")

    def _churn_step() -> Tuple[str, int, int]:
        if deletable and rng.random() < 0.4:
            u, v = deletable.pop()
            if (u, v) in live:
                return ("-", u, v)
        for _ in range(64):
            u = int(churn_pool[int(rng.integers(0, len(churn_pool)))])
            v = int(churn_pool[int(rng.integers(0, len(churn_pool)))])
            if u != v and (u, v) not in live:
                return ("+", u, v)
        raise StreamError("could not draw a fresh churn edge")

    events: List[CrawlEvent] = []
    onset_ids: Dict[str, int] = {}
    ts = 0
    for i in range(num_events):
        if i in scheduled:
            script, j = scheduled[i]
            op, u, v = script.steps[j]
            if j == 0:
                onset_ids[script.name] = i
        else:
            op, u, v = _churn_step()
        # keep the live set exact so every event is applicable in order
        if op == "+":
            if (u, v) in live:
                raise StreamError(f"internal: duplicate insert ({u}, {v})")
            live.add((u, v))
        else:
            if (u, v) not in live:
                raise StreamError(f"internal: deleting a dead edge ({u}, {v})")
            live.discard((u, v))
        events.append(CrawlEvent(i, ts, op, u, v))
        in_burst = burst is not None and burst[0] <= i < burst[0] + burst[1]
        if not in_burst and ts_increment > 0:
            ts += int(rng.integers(0, ts_increment + 1))

    attacks_out = [
        TemporalAttack(
            s.name, s.kind, s.target, onset_ids.get(s.name, s.onset), s.nodes
        )
        for s in scripts
    ]
    return CrawlStream(events, attacks_out, n, seed)
