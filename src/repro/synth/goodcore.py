"""Good-core assembly (Section 4.2) and core manipulation (Sections
4.4.2 and 4.5).

The paper builds its core ``Ṽ⁺`` with minimal human effort from three
name-selectable host families: a trusted web directory (16,776 hosts),
US governmental hosts (55,320) and educational hosts worldwide
(434,045) — 504,150 hosts total.  The experiments then manipulate the
core three ways, all mirrored here:

* **uniform subsampling** to 10% / 1% / 0.1% (Figure 5's size sweep);
* a **narrow national core** (the ``.it``-educational-hosts-only core
  that underperforms a 19×-smaller uniform sample — breadth beats
  size);
* **anomaly repair** (Section 4.4.2): adding a handful of key hub
  hosts of an under-covered community (the 12 ``alibaba.com`` hosts)
  and watching only that community's mass estimates collapse.

Coverage gaps are induced at assembly time through per-country
inclusion fractions — e.g. the Polish anomaly is "include almost none
of ``edu:pl``" while Czech hosts are fully covered.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

from .assembler import SyntheticWorld

__all__ = [
    "assemble_good_core",
    "subsample_core",
    "country_only_core",
    "repair_core",
    "core_coverage",
]


def assemble_good_core(
    world: SyntheticWorld,
    *,
    include_directory: bool = True,
    include_gov: bool = True,
    edu_coverage: Optional[Dict[str, float]] = None,
    default_edu_coverage: float = 1.0,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Assemble ``Ṽ⁺`` from the world's directory/gov/edu families.

    ``edu_coverage`` maps country codes to the fraction of that
    country's educational hosts included (selection is random, so
    under-coverage is unbiased); unlisted countries get
    ``default_edu_coverage``.  This is how the Polish-style anomaly is
    created: ``edu_coverage={"pl": 0.03}`` leaves the national web
    essentially unrepresented.

    The returned core contains only ground-truth good nodes by
    construction (these families are generated spam-free, like the
    paper's directory, which is "virtually void of spam").
    """
    if rng is None:
        rng = np.random.default_rng(0)
    edu_coverage = dict(edu_coverage or {})
    parts = []
    if include_directory and "directory" in world.groups:
        parts.append(world.group("directory"))
    if include_gov and "gov" in world.groups:
        parts.append(world.group("gov"))
    for name, ids in world.groups_matching("edu:").items():
        cc = name.split(":", 1)[1]
        coverage = edu_coverage.get(cc, default_edu_coverage)
        if not (0.0 <= coverage <= 1.0):
            raise ValueError(
                f"edu coverage for {cc!r} must be in [0, 1], got {coverage}"
            )
        if coverage >= 1.0:
            parts.append(ids)
        elif coverage > 0.0:
            take = int(round(coverage * len(ids)))
            if take:
                parts.append(
                    rng.choice(ids, size=take, replace=False)
                )
    if not parts:
        raise ValueError("world has no core families to assemble from")
    core = np.unique(np.concatenate(parts))
    if world.spam_mask[core].any():
        raise AssertionError(
            "good core unexpectedly contains ground-truth spam nodes"
        )
    return core


def subsample_core(
    core: np.ndarray, fraction: float, rng: np.random.Generator
) -> np.ndarray:
    """Uniform random subsample of a core (the 10%/1%/0.1% cores of
    Figure 5).  Keeps at least one node."""
    if not (0.0 < fraction <= 1.0):
        raise ValueError("fraction must be in (0, 1]")
    core = np.asarray(core, dtype=np.int64)
    take = max(int(round(fraction * len(core))), 1)
    return np.sort(rng.choice(core, size=take, replace=False))


def country_only_core(world: SyntheticWorld, cc: str) -> np.ndarray:
    """The narrow single-country core (the ``.it`` core of Figure 5):
    only the educational hosts of one country."""
    name = f"edu:{cc}"
    if name not in world.groups:
        raise KeyError(f"world has no educational hosts for country {cc!r}")
    return world.group(name).copy()


def repair_core(core: np.ndarray, extra_nodes: Iterable[int]) -> np.ndarray:
    """Core repair (Section 4.4.2): add identified key hosts — e.g. a
    portal community's hubs — to the core.  Returns the expanded core."""
    extra = np.asarray(list(extra_nodes), dtype=np.int64)
    return np.unique(np.concatenate([np.asarray(core, dtype=np.int64), extra]))


def core_coverage(world: SyntheticWorld, core: np.ndarray) -> float:
    """Fraction of the ground-truth good set the core covers
    (``|Ṽ⁺| / |V⁺|``) — the quantity Section 3.5's γ-scaling reasons
    about."""
    good_total = int((~world.spam_mask).sum())
    if good_total == 0:
        return 0.0
    core = np.asarray(core, dtype=np.int64)
    return float(len(np.unique(core)) / good_total)
