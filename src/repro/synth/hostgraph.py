"""Synthetic base web: a scaled-down stand-in for the Yahoo! host graph.

**Substitution note (DESIGN.md §2).**  The paper's experiments run on a
proprietary 2004 Yahoo! crawl of 73.3 million hosts and 979 million
host-level edges.  This generator produces a host graph that matches
the *structural statistics the method depends on* at laptop scale:

* the degree-class composition of Section 4.1 — 25.8% isolated hosts,
  66.4% without outlinks, 35% without inlinks (defaults; configurable);
* heavy-tailed out-degrees for the crawled/active hosts;
* preferential-attachment in-links, yielding power-law in-degree and
  PageRank distributions (Section 4.3 reports 91.1% of hosts below
  twice the minimum scaled PageRank);
* synthetic but realistic host names over a TLD mix, so the name-based
  good-core assembly of Section 4.2 has something to select on.

Spam farms and special communities are *not* generated here — they are
layered on by :mod:`repro.synth.spamfarm` and
:mod:`repro.synth.communities` so that ground truth stays attributable.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .assembler import GOOD, WorldAssembler

__all__ = ["BaseWebConfig", "BaseWeb", "generate_base_web", "sample_targets"]

_TLDS = (".com", ".org", ".net", ".info", ".biz", ".us", ".co.uk", ".de")
_TLD_WEIGHTS = (0.52, 0.12, 0.10, 0.06, 0.04, 0.06, 0.05, 0.05)


class BaseWebConfig:
    """Parameters of the base-web generator.

    Defaults reproduce the Section 4.1 class fractions.  ``num_hosts``
    is the only size knob; everything else scales with it.

    Attributes
    ----------
    num_hosts:
        Total number of base hosts (the paper: 73.3M; tests: tens of
        thousands).
    frac_isolated:
        Hosts with neither inlinks nor outlinks (paper: 0.258).
    frac_no_outlinks:
        Hosts without outlinks, *including* the isolated ones
        (paper: 0.664).
    frac_no_inlinks:
        Hosts without inlinks, *including* the isolated ones
        (paper: 0.35).
    mean_outdegree:
        Mean out-degree of hosts that have outlinks.  (The Yahoo! graph
        averages ≈ 40; the default is lower to keep laptop runs brisk —
        the mass-estimation behaviour is insensitive to it.)
    outdegree_tail:
        Zipf exponent of the out-degree tail (≥ ~2 keeps the mean
        finite).
    popularity_tail:
        Zipf exponent of the target-popularity weights driving
        preferential attachment (in-degree power law).
    """

    __slots__ = (
        "num_hosts",
        "frac_isolated",
        "frac_no_outlinks",
        "frac_no_inlinks",
        "mean_outdegree",
        "outdegree_tail",
        "popularity_tail",
    )

    def __init__(
        self,
        num_hosts: int = 30_000,
        *,
        frac_isolated: float = 0.258,
        frac_no_outlinks: float = 0.664,
        frac_no_inlinks: float = 0.35,
        mean_outdegree: float = 12.0,
        outdegree_tail: float = 2.2,
        popularity_tail: float = 1.7,
    ) -> None:
        if num_hosts < 100:
            raise ValueError("num_hosts must be at least 100")
        if not (0.0 <= frac_isolated < 1.0):
            raise ValueError("frac_isolated must be in [0, 1)")
        if frac_no_outlinks < frac_isolated or frac_no_inlinks < frac_isolated:
            raise ValueError(
                "no-outlink and no-inlink fractions include isolated hosts "
                "and must be at least frac_isolated"
            )
        if frac_no_outlinks + frac_no_inlinks - frac_isolated >= 1.0:
            raise ValueError(
                "degree-class fractions leave no hosts with both inlinks "
                "and outlinks"
            )
        if mean_outdegree < 1.0:
            raise ValueError("mean_outdegree must be at least 1")
        self.num_hosts = num_hosts
        self.frac_isolated = frac_isolated
        self.frac_no_outlinks = frac_no_outlinks
        self.frac_no_inlinks = frac_no_inlinks
        self.mean_outdegree = mean_outdegree
        self.outdegree_tail = outdegree_tail
        self.popularity_tail = popularity_tail


class BaseWeb:
    """Handle onto the generated base web inside the assembler.

    Later generators use it to attach communities and farms to
    plausible places: ``linkable`` hosts can receive new inlinks
    (they are hosts that already have inlinks, so adding one does not
    break class accounting), ``active`` hosts can emit new outlinks,
    and ``popularity`` weights bias those attachments toward the head
    of the web, the way real stray links concentrate on visible pages.
    """

    __slots__ = (
        "all_ids",
        "active",
        "linkable",
        "isolated",
        "popularity",
        "connected",
        "connected_popularity",
    )

    def __init__(
        self,
        all_ids: np.ndarray,
        active: np.ndarray,
        linkable: np.ndarray,
        isolated: np.ndarray,
        popularity: np.ndarray,
        connected: np.ndarray,
        connected_popularity: np.ndarray,
    ) -> None:
        self.all_ids = all_ids
        self.active = active
        self.linkable = linkable
        self.isolated = isolated
        self.popularity = popularity  # aligned with `linkable`
        self.connected = connected  # class A: both inlinks and outlinks
        self.connected_popularity = connected_popularity  # aligned with it


def _zipf_capped(
    rng: np.random.Generator, a: float, size: int, cap: int
) -> np.ndarray:
    """Zipf draws with an upper cap (vectorized redraw loop)."""
    values = rng.zipf(a, size=size)
    for _ in range(64):
        over = values > cap
        if not over.any():
            break
        values[over] = rng.zipf(a, size=int(over.sum()))
    values[values > cap] = cap
    return values


def _make_names(rng: np.random.Generator, count: int) -> List[str]:
    """Synthetic host names over a mixed-TLD population."""
    tld_idx = rng.choice(len(_TLDS), size=count, p=_TLD_WEIGHTS)
    labels = rng.integers(0, 3, size=count)  # www / bare / sub
    serials = np.arange(count)
    names = []
    for i in range(count):
        base = f"site-{serials[i]}{_TLDS[tld_idx[i]]}"
        if labels[i] == 0:
            names.append(f"www.{base}")
        elif labels[i] == 1:
            names.append(base)
        else:
            names.append(f"sub{int(rng.integers(0, 9))}.{base}")
    return names


def sample_targets(
    rng: np.random.Generator,
    candidates: np.ndarray,
    weights: np.ndarray,
    size: int,
) -> np.ndarray:
    """Sample ``size`` target nodes proportional to ``weights``.

    Uses cumulative-sum + searchsorted, which beats
    ``Generator.choice(p=...)`` by a wide margin for repeated large
    draws on big candidate sets.
    """
    if len(candidates) == 0:
        raise ValueError("no candidates to sample from")
    cumulative = np.cumsum(weights, dtype=np.float64)
    picks = rng.random(size) * cumulative[-1]
    return candidates[np.searchsorted(cumulative, picks)]


def generate_base_web(
    assembler: WorldAssembler,
    rng: np.random.Generator,
    config: Optional[BaseWebConfig] = None,
) -> BaseWeb:
    """Generate the base web into ``assembler``; returns a handle.

    Degree classes (letters as in DESIGN.md):

    * **A** — inlinks and outlinks (the connected crawl core),
    * **B** — inlinks only (dangling hosts: uncrawled or extinct URLs),
    * **C** — outlinks only (never-linked-to sources),
    * **D** — fully isolated.

    Class sizes follow from the three configured fractions.  All base
    hosts are ground-truth good; spam is layered on separately.
    """
    if config is None:
        config = BaseWebConfig()
    n = config.num_hosts
    num_d = int(round(config.frac_isolated * n))
    num_b = int(round((config.frac_no_outlinks - config.frac_isolated) * n))
    num_c = int(round((config.frac_no_inlinks - config.frac_isolated) * n))
    num_a = n - num_b - num_c - num_d
    if num_a <= 1:
        raise ValueError("configuration leaves no connected core")

    names = _make_names(rng, n)
    ids = assembler.add_hosts(names, GOOD)
    # shuffle class assignment so ids do not encode the class
    shuffled = ids.copy()
    rng.shuffle(shuffled)
    class_a = np.sort(shuffled[:num_a])
    class_b = np.sort(shuffled[num_a : num_a + num_b])
    class_c = np.sort(shuffled[num_a + num_b : num_a + num_b + num_c])
    class_d = np.sort(shuffled[num_a + num_b + num_c :])

    active = np.concatenate([class_a, class_c])  # hosts that emit links
    linkable = np.concatenate([class_a, class_b])  # hosts that receive
    # preferential-attachment popularity: heavy-tailed weights
    popularity = _zipf_capped(
        rng, config.popularity_tail, len(linkable), cap=len(linkable)
    ).astype(np.float64)

    # out-degrees: 1 + capped-zipf shifted to the target mean
    raw = _zipf_capped(
        rng, config.outdegree_tail, len(active), cap=max(len(linkable) // 2, 2)
    ).astype(np.float64)
    scale = max((config.mean_outdegree - 1.0), 0.0) / max(raw.mean() - 1.0, 1e-9)
    out_degrees = np.maximum(
        1, np.round(1.0 + (raw - 1.0) * scale).astype(np.int64)
    )

    sources = np.repeat(active, out_degrees)
    dests = sample_targets(rng, linkable, popularity, len(sources))
    assembler.add_edges(sources, dests)

    # fix-up: every A/B host must actually receive at least one inlink
    # (sampling can miss tail hosts); link each miss from a random
    # active host.  Self-links are dropped at build time, so they do
    # not count as inlinks (or outlinks) here.
    valid = sources != dests
    got_inlink = np.zeros(assembler.num_nodes, dtype=bool)
    got_inlink[dests[valid]] = True
    missing = linkable[~got_inlink[linkable]]
    if len(missing):
        fix_sources = rng.choice(active, size=len(missing))
        # avoid accidental self-links in the fix-up
        clash = fix_sources == missing
        while clash.any():
            fix_sources[clash] = rng.choice(active, size=int(clash.sum()))
            clash = fix_sources == missing
        assembler.add_edges(fix_sources, missing)

    # fix-up: every active host must keep at least one non-self outlink
    has_outlink = np.zeros(assembler.num_nodes, dtype=bool)
    has_outlink[sources[valid]] = True
    silent = active[~has_outlink[active]]
    if len(silent):
        fix_dests = sample_targets(rng, linkable, popularity, len(silent))
        clash = fix_dests == silent
        while clash.any():
            fix_dests[clash] = sample_targets(
                rng, linkable, popularity, int(clash.sum())
            )
            clash = fix_dests == silent
        assembler.add_edges(silent, fix_dests)

    assembler.mark("base:all", ids)
    assembler.mark("base:active", active)
    assembler.mark("base:linkable", linkable)
    assembler.mark("base:isolated", class_d)
    assembler.note(
        "base_web",
        {
            "num_hosts": n,
            "class_sizes": {
                "A": int(num_a),
                "B": int(num_b),
                "C": int(num_c),
                "D": int(num_d),
            },
            "mean_outdegree": config.mean_outdegree,
        },
    )
    # class A with its popularity weights (linkable is [A | B] in order)
    connected = class_a
    connected_popularity = popularity[: len(class_a)]
    return BaseWeb(
        ids,
        active,
        linkable,
        class_d,
        popularity,
        connected,
        connected_popularity,
    )
