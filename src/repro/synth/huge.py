"""Streaming million-host world generation for the sharded backend.

The full scenario assembler (:func:`repro.synth.scenario.build_world`)
holds every community's edge list in memory — fine at the 120k-host
``large`` scale, hopeless at the paper's (73.3M hosts, Section 4.1).
This module generates a *scale model* of the same shape — a heavy-tailed
host graph whose low-id hosts act as hubs, with a reputable core that
attracts a fixed fraction of all links — as a deterministic stream of
edge chunks that feed straight into
:func:`repro.graph.sharded.sharded_from_edges`.  The dense edge list
never exists; peak memory is one chunk plus one shard (the external
bucket sort's working set).

Determinism: chunk ``i`` is drawn from ``np.random.default_rng((seed,
i))`` — chunks are independent of each other and of the chunk size
*count* chosen downstream, so the same config always yields the same
graph, and regeneration is trivially parallelizable.

Shape knobs (all read off a :class:`~repro.synth.scenario.WorldConfig`,
typically :meth:`WorldConfig.huge <repro.synth.scenario.WorldConfig.huge>`):

* ``num_base_hosts`` — node count ``n``;
* ``mean_outdegree`` — expected edges per host *before* dedup and
  self-link dropping;
* ``directory_size + gov_size`` — the good core, placed at the lowest
  node ids (:func:`huge_good_core`), receiving ``CORE_LINK_FRACTION``
  of all destinations (the paper's observation that reputable hubs
  attract a disproportionate share of honest links);
* sources are drawn with a quadratic low-id bias, giving a heavy-tailed
  out-degree profile and — because high-id hosts are rarely sources —
  a large dangling fraction, matching the paper's 66.4% statistic in
  spirit.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Iterator, Optional, Union

import numpy as np

from ..graph.sharded import ShardedWebGraph, sharded_from_edges
from .scenario import WorldConfig

__all__ = [
    "HUGE_CHUNK_EDGES",
    "CORE_LINK_FRACTION",
    "huge_good_core",
    "iter_huge_edges",
    "build_huge_store",
]

#: Edges drawn per chunk (before dedup); ~16 MB of int64 pairs.
HUGE_CHUNK_EDGES = 1 << 20

#: Fraction of destinations pointed at the good core.
CORE_LINK_FRACTION = 0.12

#: Fraction of hosts that ever source links.  Ids above
#: ``SOURCE_FRACTION * n`` are pure sinks — the paper reports 66.4% of
#: hosts with no out-links (Section 4.1), and the dangling restriction
#: is exactly what the solver's ``S``-subsystem exploits.
SOURCE_FRACTION = 0.4


def _core_size(config: WorldConfig) -> int:
    return min(
        config.directory_size + config.gov_size, config.num_base_hosts
    )


def huge_good_core(config: WorldConfig) -> np.ndarray:
    """The good-core node ids of a huge world (the lowest ids)."""
    return np.arange(_core_size(config), dtype=np.int64)


def iter_huge_edges(
    config: WorldConfig, *, chunk_edges: int = HUGE_CHUNK_EDGES
) -> Iterator[np.ndarray]:
    """Yield the world's edges as deterministic ``(m, 2)`` chunks.

    Chunk ``i`` depends only on ``(config.seed, i)``; self-links and
    duplicates are left in (the sharded builder collapses them exactly
    like :meth:`WebGraph.from_edges`).
    """
    if chunk_edges < 1:
        raise ValueError("chunk_edges must be >= 1")
    n = config.num_base_hosts
    core = _core_size(config)
    total = int(round(n * config.mean_outdegree))
    num_chunks = max(1, math.ceil(total / chunk_edges))
    for i in range(num_chunks):
        m = min(chunk_edges, total - i * chunk_edges)
        if m <= 0:  # pragma: no cover - guard for tiny totals
            break
        rng = np.random.default_rng((config.seed, i))
        # quadratic low-id bias: host ranked r sources ~1/sqrt(r) of
        # the traffic of rank 0 — heavy-tailed out-degrees; ids above
        # SOURCE_FRACTION·n never source at all (dangling)
        src = (n * SOURCE_FRACTION * rng.random(m) ** 2).astype(np.int64)
        dst = (n * rng.random(m) ** 2).astype(np.int64)
        to_core = rng.random(m) < CORE_LINK_FRACTION
        if core:
            dst[to_core] = rng.integers(0, core, size=int(to_core.sum()))
        yield np.column_stack((src, dst))


def build_huge_store(
    config: WorldConfig,
    directory: Union[str, Path],
    *,
    num_shards: Optional[int] = None,
    chunk_edges: int = HUGE_CHUNK_EDGES,
) -> ShardedWebGraph:
    """Generate the huge world straight into a sharded store.

    Streams :func:`iter_huge_edges` through the external bucket sort;
    ``num_shards`` defaults to one shard per ~500k hosts (minimum 2,
    so the out-of-core path is actually exercised).
    """
    if num_shards is None:
        num_shards = max(2, config.num_base_hosts // 500_000)
    return sharded_from_edges(
        config.num_base_hosts,
        iter_huge_edges(config, chunk_edges=chunk_edges),
        directory,
        num_shards=num_shards,
    )
