"""Deterministic random-stream plumbing for the synthetic world.

Every sub-generator (base web, each community, each spam farm, the
evaluation sampler) draws from its own named child stream spawned from a
single master seed.  This gives two properties the experiments need:

* **reproducibility** — the same seed always produces the same world,
  byte for byte, so EXPERIMENTS.md numbers are re-derivable;
* **independence under change** — adding one more spam farm does not
  shift the random draws of the base web, because streams are keyed by
  name rather than consumed from a shared cursor.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

__all__ = ["RngStreams"]


class RngStreams:
    """Factory of named, independent ``numpy.random.Generator`` streams.

    >>> streams = RngStreams(42)
    >>> a = streams.get("base-web")
    >>> b = streams.get("farm-0")
    >>> a is streams.get("base-web")   # cached per name
    True
    """

    def __init__(self, seed: int) -> None:
        if not isinstance(seed, (int, np.integer)):
            raise TypeError("seed must be an integer")
        self.seed = int(seed)
        self._cache: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the (cached) generator for ``name``."""
        if name not in self._cache:
            digest = hashlib.sha256(
                f"{self.seed}:{name}".encode("utf-8")
            ).digest()
            child_seed = int.from_bytes(digest[:8], "little")
            self._cache[name] = np.random.default_rng(child_seed)
        return self._cache[name]

    def fresh(self, name: str) -> np.random.Generator:
        """Return a *new* generator for ``name`` (ignores the cache) —
        for callers that need to replay a stream from its start."""
        digest = hashlib.sha256(f"{self.seed}:{name}".encode("utf-8")).digest()
        return np.random.default_rng(int.from_bytes(digest[:8], "little"))
