"""Scenario composition: one call builds a labeled Yahoo!-like world.

:func:`build_world` assembles, in order: the base web (Section 4.1
statistics), the good-core families (directory, gov, edu — Section
4.2), the three anomaly communities (portal, blogs, under-covered
country — Section 4.4.1) plus a well-covered control country, benign
isolated cliques (Section 4.4.3 obs. 1), and finally the spam layer —
independent farms of log-uniformly distributed size, farm alliances,
honey-pot farms and expired-domain takeovers (Sections 2.3, 4.4.3
obs. 2).

Three stock sizes are provided: :meth:`WorldConfig.small` for unit
tests (≈8k hosts), :meth:`WorldConfig.medium` for integration tests
and quick benches (≈30k), :meth:`WorldConfig.large` for the paper-scale
benchmark runs (≈120k).  Everything is deterministic in the seed.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..obs import get_telemetry
from .assembler import SyntheticWorld, WorldAssembler
from .communities import (
    add_blog_community,
    add_country_web,
    add_directory,
    add_edu_institutions,
    add_good_clique,
    add_gov_hosts,
    add_portal_community,
)
from .goodcore import assemble_good_core
from .hostgraph import BaseWebConfig, generate_base_web
from .rng import RngStreams
from .spamfarm import (
    add_expired_domain_spam,
    add_farm_alliance,
    add_paid_links,
    add_spam_farm,
)

__all__ = ["WorldConfig", "build_world", "default_good_core", "true_gamma"]


class WorldConfig:
    """All knobs of the synthetic world, with paper-shaped defaults."""

    __slots__ = (
        "seed",
        "spam_seed",
        "num_base_hosts",
        "mean_outdegree",
        "directory_size",
        "gov_size",
        "edu_countries",
        "portal_hosts",
        "blog_hosts",
        "uncovered_country_hosts",
        "uncovered_country_edu",
        "covered_country_hosts",
        "covered_country_edu",
        "num_cliques",
        "clique_size_range",
        "num_farms",
        "farm_boosters_range",
        "frac_farms_hijacked",
        "hijacked_links_range",
        "frac_farms_honeypot",
        "num_alliances",
        "alliance_targets",
        "alliance_boosters",
        "num_expired",
        "expired_links_range",
        "num_paid_customers",
        "paid_links_range",
    )

    def __init__(
        self,
        seed: int = 7,
        *,
        spam_seed: Optional[int] = None,
        num_base_hosts: int = 20_000,
        mean_outdegree: float = 10.0,
        directory_size: int = 300,
        gov_size: int = 900,
        edu_countries: Optional[Dict[str, Tuple[int, int]]] = None,
        portal_hosts: int = 700,
        blog_hosts: int = 800,
        uncovered_country_hosts: int = 1500,
        uncovered_country_edu: int = 80,
        covered_country_hosts: int = 1200,
        covered_country_edu: int = 80,
        num_cliques: int = 8,
        clique_size_range: Tuple[int, int] = (8, 40),
        num_farms: int = 110,
        farm_boosters_range: Tuple[int, int] = (15, 400),
        frac_farms_hijacked: float = 0.5,
        hijacked_links_range: Tuple[int, int] = (2, 18),
        frac_farms_honeypot: float = 0.15,
        num_alliances: int = 2,
        alliance_targets: int = 3,
        alliance_boosters: int = 80,
        num_expired: int = 8,
        expired_links_range: Tuple[int, int] = (12, 50),
        num_paid_customers: int = 30,
        paid_links_range: Tuple[int, int] = (4, 40),
    ) -> None:
        if edu_countries is None:
            edu_countries = {
                "us": (40, 6),
                "uk": (12, 4),
                "de": (12, 4),
                "fr": (8, 4),
                "it": (24, 4),
                "jp": (8, 4),
            }
        self.seed = seed
        self.spam_seed = spam_seed
        self.num_base_hosts = num_base_hosts
        self.mean_outdegree = mean_outdegree
        self.directory_size = directory_size
        self.gov_size = gov_size
        self.edu_countries = dict(edu_countries)
        self.portal_hosts = portal_hosts
        self.blog_hosts = blog_hosts
        self.uncovered_country_hosts = uncovered_country_hosts
        self.uncovered_country_edu = uncovered_country_edu
        self.covered_country_hosts = covered_country_hosts
        self.covered_country_edu = covered_country_edu
        self.num_cliques = num_cliques
        self.clique_size_range = clique_size_range
        self.num_farms = num_farms
        self.farm_boosters_range = farm_boosters_range
        self.frac_farms_hijacked = frac_farms_hijacked
        self.hijacked_links_range = hijacked_links_range
        self.frac_farms_honeypot = frac_farms_honeypot
        self.num_alliances = num_alliances
        self.alliance_targets = alliance_targets
        self.alliance_boosters = alliance_boosters
        self.num_expired = num_expired
        self.expired_links_range = expired_links_range
        self.num_paid_customers = num_paid_customers
        self.paid_links_range = paid_links_range

    @classmethod
    def small(cls, seed: int = 7) -> "WorldConfig":
        """Unit-test scale (~8k hosts, sub-second PageRank)."""
        return cls(
            seed,
            num_base_hosts=4_000,
            mean_outdegree=8.0,
            directory_size=80,
            gov_size=200,
            edu_countries={
                "us": (10, 5),
                "uk": (4, 4),
                "it": (8, 4),
                "de": (4, 4),
            },
            portal_hosts=180,
            blog_hosts=200,
            uncovered_country_hosts=350,
            uncovered_country_edu=30,
            covered_country_hosts=300,
            covered_country_edu=30,
            num_cliques=4,
            clique_size_range=(6, 20),
            num_farms=28,
            farm_boosters_range=(12, 130),
            frac_farms_hijacked=0.5,
            hijacked_links_range=(2, 10),
            num_alliances=1,
            alliance_targets=2,
            alliance_boosters=40,
            num_expired=4,
            expired_links_range=(8, 25),
            num_paid_customers=12,
            paid_links_range=(3, 25),
        )

    @classmethod
    def medium(cls, seed: int = 7) -> "WorldConfig":
        """Integration-test / quick-bench scale (~30k hosts)."""
        return cls(seed)

    @classmethod
    def huge(
        cls, seed: int = 7, num_base_hosts: int = 1_000_000
    ) -> "WorldConfig":
        """Out-of-core scale (1M hosts by default, up to ~10M).

        This preset is **not** meant for :func:`build_world`, which
        materializes every community in memory — consume it through
        :func:`repro.synth.huge.build_huge_store`, which streams
        deterministic edge chunks straight into a sharded store
        (:mod:`repro.graph.sharded`) without ever holding the edge
        list.  The streaming generator reads only the scale knobs
        (``num_base_hosts``, ``mean_outdegree``, ``seed``) and the
        good-core sizes (``directory_size``, ``gov_size``).
        """
        if num_base_hosts < 1_000_000:
            raise ValueError(
                "the huge preset starts at 1M hosts; use large() below "
                "that"
            )
        return cls(
            seed,
            num_base_hosts=num_base_hosts,
            mean_outdegree=6.0,
            directory_size=5_000,
            gov_size=20_000,
        )

    @classmethod
    def large(cls, seed: int = 7) -> "WorldConfig":
        """Paper-shape benchmark scale (~120k hosts)."""
        return cls(
            seed,
            num_base_hosts=90_000,
            mean_outdegree=12.0,
            directory_size=900,
            gov_size=2_500,
            edu_countries={
                "us": (120, 7),
                "uk": (35, 5),
                "de": (35, 5),
                "fr": (25, 5),
                "it": (60, 5),
                "jp": (25, 5),
                "br": (25, 5),
                "au": (15, 5),
            },
            portal_hosts=2_500,
            blog_hosts=3_000,
            uncovered_country_hosts=5_000,
            uncovered_country_edu=220,
            covered_country_hosts=4_000,
            covered_country_edu=220,
            num_cliques=20,
            clique_size_range=(8, 60),
            num_farms=400,
            farm_boosters_range=(15, 900),
            num_alliances=5,
            alliance_targets=3,
            alliance_boosters=150,
            num_expired=25,
            expired_links_range=(15, 80),
            num_paid_customers=90,
            paid_links_range=(4, 60),
        )


def build_world(config: Optional[WorldConfig] = None) -> SyntheticWorld:
    """Build the full synthetic world described by ``config``."""
    if config is None:
        config = WorldConfig()
    tele = get_telemetry()
    if not tele.enabled:
        return _build_world(config)
    with tele.span(
        "graph-gen", seed=config.seed, base_hosts=config.num_base_hosts
    ) as sp:
        world = _build_world(config)
        sp.set("nodes", world.graph.num_nodes)
        sp.set("edges", world.graph.num_edges)
        return world


def _build_world(config: WorldConfig) -> SyntheticWorld:
    """The untraced core of :func:`build_world`."""
    streams = RngStreams(config.seed)
    # the spam layer draws from its own seed space so that "the web a
    # year later" — same good web, new crop of spammers — is one knob
    # away (Section 3.4's stability argument; see synth.evolution)
    spam_streams = RngStreams(
        config.seed if config.spam_seed is None else config.spam_seed
    )
    assembler = WorldAssembler()

    base = generate_base_web(
        assembler,
        streams.get("base-web"),
        BaseWebConfig(
            config.num_base_hosts, mean_outdegree=config.mean_outdegree
        ),
    )

    # --- good-core families -----------------------------------------
    add_directory(
        assembler, streams.get("directory"), base, config.directory_size
    )
    add_gov_hosts(assembler, streams.get("gov"), base, config.gov_size)
    add_edu_institutions(
        assembler, streams.get("edu"), base, config.edu_countries
    )

    # --- anomaly communities (Section 4.4.1) -------------------------
    add_portal_community(
        assembler,
        streams.get("portal"),
        base,
        domain="megaportal.com",
        num_hosts=config.portal_hosts,
    )
    add_blog_community(
        assembler,
        streams.get("blogs"),
        base,
        suffix="blogger.com.br",
        num_hosts=config.blog_hosts,
    )
    add_country_web(
        assembler,
        streams.get("country-pl"),
        base,
        "pl",
        config.uncovered_country_hosts,
        num_edu_hosts=config.uncovered_country_edu,
        anomalous=True,
    )
    add_country_web(
        assembler,
        streams.get("country-cz"),
        base,
        "cz",
        config.covered_country_hosts,
        num_edu_hosts=config.covered_country_edu,
        anomalous=False,
    )

    # --- benign isolated cliques (Section 4.4.3 obs. 1) --------------
    clique_rng = streams.get("cliques")
    lo, hi = config.clique_size_range
    for i in range(config.num_cliques):
        add_good_clique(
            assembler,
            clique_rng,
            base,
            size=int(clique_rng.integers(lo, hi + 1)),
            tag=f"clique:{i}",
            hub_and_clients=bool(i % 2),
            external_inlinks=int(clique_rng.integers(1, 4)),
        )

    # --- the spam layer ----------------------------------------------
    farm_rng = spam_streams.get("farms")
    farms = []
    b_lo, b_hi = config.farm_boosters_range
    for i in range(config.num_farms):
        # truncated-Pareto farm sizes with the Figure 6 exponent:
        # many modest farms, a heavy tail of booster monsters.  Farm
        # targets dominate the positive-mass tail, so this choice is
        # what makes the reproduced mass distribution a power law with
        # an exponent near the paper's -2.31.
        pareto_alpha = 2.31
        u = farm_rng.random()
        lo_pow = b_lo ** (1.0 - pareto_alpha)
        hi_pow = b_hi ** (1.0 - pareto_alpha)
        boosters = int(
            round((lo_pow + u * (hi_pow - lo_pow)) ** (1.0 / (1.0 - pareto_alpha)))
        )
        hijacked = 0
        if farm_rng.random() < config.frac_farms_hijacked:
            h_lo, h_hi = config.hijacked_links_range
            hijacked = int(farm_rng.integers(h_lo, h_hi + 1))
            # stray links are a side dish: a farm whose hijacked links
            # rival its booster count is hijack-dominated and would be
            # (correctly, but uninterestingly) mass-negative like an
            # expired domain — cap them at a fifth of the boosters
            hijacked = min(hijacked, max(boosters // 5, 1))
        relays = (
            int(farm_rng.integers(2, 5))
            if boosters >= 40 and farm_rng.random() < 0.25
            else 0
        )
        if relays:
            # two-tier farms hide behind hijacked good links: the
            # target's immediate in-neighbourhood must be majority-good
            # for the structure to defeat the in-link-majority scheme
            hijacked = 2 * relays + 2
        honeypots = 0
        if farm_rng.random() < config.frac_farms_honeypot:
            honeypots = int(farm_rng.integers(1, 4))
        farms.append(
            add_spam_farm(
                assembler,
                farm_rng,
                base,
                boosters,
                tag=f"farm:{i}",
                hijacked_links=hijacked,
                num_honeypots=min(honeypots, boosters),
                target_links_back=bool(farm_rng.random() < 0.8),
                booster_interlinks=(
                    int(farm_rng.integers(2, 4))
                    if farm_rng.random() < 0.15
                    else 0
                ),
                leak_links=(
                    max(boosters // 4, 1)
                    if farm_rng.random() < 0.4
                    else 0
                ),
                relay_nodes=relays,
            )
        )
    alliance_rng = spam_streams.get("alliances")
    for i in range(config.num_alliances):
        add_farm_alliance(
            assembler,
            alliance_rng,
            base,
            config.alliance_targets,
            config.alliance_boosters,
            tag=f"alliance:{i}",
            share_fraction=0.5,
        )
    # grey-market link selling: farms boost legitimate customer hosts,
    # which therefore acquire moderate spam mass while staying good
    paid_rng = spam_streams.get("paid-links")
    p_lo, p_hi = config.paid_links_range
    for _ in range(config.num_paid_customers):
        farm = farms[int(paid_rng.integers(0, len(farms)))]
        customer = int(paid_rng.choice(base.connected))
        add_paid_links(
            assembler,
            paid_rng,
            farm,
            customer,
            int(paid_rng.integers(p_lo, p_hi + 1)),
        )

    expired_rng = spam_streams.get("expired")
    e_lo, e_hi = config.expired_links_range
    for i in range(config.num_expired):
        add_expired_domain_spam(
            assembler,
            expired_rng,
            base,
            int(expired_rng.integers(e_lo, e_hi + 1)),
            tag=f"expired:{i}",
        )

    assembler.note("config_seed", config.seed)
    return assembler.build()


def default_good_core(
    world: SyntheticWorld,
    *,
    uncovered_country: str = "pl",
    uncovered_coverage: float = 0.03,
    seed: int = 11,
) -> np.ndarray:
    """The standard core for a built world: directory + gov + all edu
    hosts, except the under-covered country keeps only a token fraction
    (the paper's 12-Polish-hosts situation)."""
    return assemble_good_core(
        world,
        edu_coverage={uncovered_country: uncovered_coverage},
        rng=np.random.default_rng(seed),
    )


def true_gamma(world: SyntheticWorld) -> float:
    """Ground-truth good fraction ``|V⁺|/n`` — what the paper's γ
    estimates via a manually labeled uniform sample (they used the
    conservative γ = 0.85)."""
    return float((~world.spam_mask).sum() / world.num_nodes)
