"""Spam-farm generators (the link-spam structures of Section 2.3).

A spam farm is a single *target* node plus *boosting* nodes that exist
only to inflate the target's PageRank; sophisticated farms additionally
harvest "stray" links from reputable nodes through blog-comment
spamming, honey pots, or purchased expired domains.  Multiple farms can
collude into *alliances* [Gyöngyi & Garcia-Molina, VLDB 2005], sharing
boosters across targets.

Every generator labels the nodes it creates as ground-truth spam and
tags descriptive groups, so the evaluation harness can ask questions
like "did the detector find the farm targets?" or "were the
expired-domain targets (which the paper predicts are *undetectable* by
mass estimation, because their PageRank genuinely comes from good
nodes) correctly missed?".
"""

from __future__ import annotations

from typing import List

import numpy as np

from .assembler import SPAM, WorldAssembler
from .hostgraph import BaseWeb

__all__ = [
    "SpamFarm",
    "add_spam_farm",
    "add_farm_alliance",
    "add_expired_domain_spam",
    "add_paid_links",
]


class SpamFarm:
    """Handle onto one generated farm.

    Attributes
    ----------
    target:
        The target node id whose ranking the farm boosts.
    boosters:
        Ids of the boosting nodes.
    honeypots:
        Ids of honey-pot nodes (subset of boosters that attract real
        links from good hosts).
    hijacked_sources:
        The good nodes tricked into linking at the farm (blog comments,
        guestbooks) — *not* farm members.
    tag:
        The group-name prefix used in the assembler.
    """

    __slots__ = ("target", "boosters", "honeypots", "hijacked_sources", "tag")

    def __init__(
        self,
        target: int,
        boosters: np.ndarray,
        honeypots: np.ndarray,
        hijacked_sources: np.ndarray,
        tag: str,
    ) -> None:
        self.target = target
        self.boosters = boosters
        self.honeypots = honeypots
        self.hijacked_sources = hijacked_sources
        self.tag = tag

    @property
    def size(self) -> int:
        """Total number of farm-owned nodes (target + boosters)."""
        return 1 + len(self.boosters)


def _spam_names(tag: str, count: int, salt: int) -> List[str]:
    """Host names for farm nodes — spread over many throwaway domains,
    matching the paper's observation that farms span hundreds or
    thousands of domain names to dodge naive per-domain counters.

    ``salt`` is drawn from the farm's random stream so that a *new*
    spam layer (different ``spam_seed``) registers entirely new domain
    names: spam hosts come and go, which is what makes black-lists go
    stale while the good core stays valid (Section 3.4).
    """
    slug = tag.replace(":", "-")
    return [f"www.{slug}-{salt:06x}-d{i}.biz" for i in range(count)]


def add_spam_farm(
    assembler: WorldAssembler,
    rng: np.random.Generator,
    base: BaseWeb,
    num_boosters: int,
    *,
    tag: str = "farm:0",
    hijacked_links: int = 0,
    num_honeypots: int = 0,
    honeypot_inlinks: int = 3,
    target_links_back: bool = True,
    booster_interlinks: int = 0,
    leak_links: int = 0,
    relay_nodes: int = 0,
) -> SpamFarm:
    """Generate a single-target spam farm.

    Structure (the optimal farm of the link-spam-alliances analysis):
    every booster links to the target; optionally the target links back
    to boosters (``target_links_back``), recycling its PageRank into the
    farm instead of leaking it.  ``booster_interlinks`` adds random
    booster→booster links for farms that camouflage as organic sites.

    ``relay_nodes > 0`` builds a *two-tier* farm: boosters link to the
    relays instead of the target, and only the relays link onward to
    it.  Combined with hijacked links, the target's immediate
    in-neighbourhood is then mostly good hosts — the structure that
    defeats the in-link-majority scheme of Section 3.1 (Figure 1's
    failure generalized), while spam mass still flows through.

    Stray-link machinery:

    * ``hijacked_links`` good base hosts are made to link *directly* at
      the target (comment spam on blogs/boards that slipped the
      editorial radar);
    * ``num_honeypots`` boosters are designated honey pots: each
      attracts ``honeypot_inlinks`` genuine links from good base hosts
      (useful content hiding farm links behind the scenes);
    * ``leak_links`` camouflage links point from boosters at popular
      *good* hosts, mimicking organic sites — a side effect being that
      those good hosts acquire moderate spam mass (the ``g0`` situation
      of Figure 2).
    """
    if num_boosters < 1:
        raise ValueError("a farm needs at least one booster")
    if num_honeypots > num_boosters:
        raise ValueError("cannot have more honeypots than boosters")
    if relay_nodes >= num_boosters:
        raise ValueError("relay_nodes must be smaller than num_boosters")
    names = _spam_names(tag, num_boosters + 1, int(rng.integers(0, 1 << 24)))
    ids = assembler.add_hosts(names, SPAM)
    target = int(ids[0])
    boosters = ids[1:]
    if relay_nodes > 0:
        relays = boosters[:relay_nodes]
        feeders = boosters[relay_nodes:]
        relay_choice = relays[
            rng.integers(0, len(relays), size=len(feeders))
        ]
        assembler.add_edges(feeders, relay_choice)
        assembler.add_edges(
            relays, np.full(len(relays), target, dtype=np.int64)
        )
        assembler.mark(f"{tag}:relays", relays)
    else:
        assembler.add_edges(
            boosters, np.full(len(boosters), target, dtype=np.int64)
        )
    if target_links_back:
        assembler.add_edges(
            np.full(len(boosters), target, dtype=np.int64), boosters
        )
    if booster_interlinks > 0 and len(boosters) > 1:
        # auto-generated farms are *regular*: every booster links the
        # same number of ring-siblings, so they all share the exact
        # same out-degree — the machine-made signature that
        # degree-distribution detectors (Fetterly et al.) key on
        k = min(booster_interlinks, len(boosters) - 1)
        for shift in range(1, k + 1):
            assembler.add_edges(boosters, np.roll(boosters, -shift))

    hijacked = np.empty(0, dtype=np.int64)
    if hijacked_links > 0:
        # hijacked links live on *visible but ordinary* good hosts —
        # blogs and boards with open comment forms, not the heavily
        # edited mega-portals.  Square-root-flattened popularity models
        # that: mid-popularity hosts dominate, the extreme head rarely
        # appears (and each of its links would otherwise out-contribute
        # an entire booster farm)
        from .hostgraph import sample_targets

        hijacked = np.unique(
            sample_targets(
                rng,
                base.connected,
                np.sqrt(base.connected_popularity),
                hijacked_links,
            )
        )
        assembler.add_edges(
            hijacked, np.full(len(hijacked), target, dtype=np.int64)
        )

    if leak_links > 0:
        from .hostgraph import sample_targets

        leak_sources = rng.choice(boosters, size=leak_links)
        leak_dests = sample_targets(
            rng, base.linkable, base.popularity, leak_links
        )
        assembler.add_edges(leak_sources, leak_dests)

    honeypots = boosters[:num_honeypots].copy()
    if num_honeypots > 0 and honeypot_inlinks > 0:
        for pot in honeypots:
            fans = rng.choice(base.active, size=honeypot_inlinks, replace=False)
            assembler.add_edges(
                fans, np.full(len(fans), int(pot), dtype=np.int64)
            )

    assembler.mark(f"{tag}:target", np.asarray([target], dtype=np.int64))
    assembler.mark(f"{tag}:boosters", boosters)
    assembler.mark("spam:targets", np.asarray([target], dtype=np.int64))
    assembler.mark("spam:all", ids)
    if len(hijacked):
        assembler.mark(f"{tag}:hijacked_sources", hijacked)
    if len(honeypots):
        assembler.mark(f"{tag}:honeypots", honeypots)
    return SpamFarm(target, boosters, honeypots, hijacked, tag)


def add_farm_alliance(
    assembler: WorldAssembler,
    rng: np.random.Generator,
    base: BaseWeb,
    num_targets: int,
    boosters_per_target: int,
    *,
    tag: str = "alliance:0",
    share_fraction: float = 1.0,
    hijacked_links_per_target: int = 0,
) -> List[SpamFarm]:
    """Generate an alliance of spam farms (collaborating spammers).

    Each of the ``num_targets`` farms owns ``boosters_per_target``
    boosters; a ``share_fraction`` of every farm's boosters additionally
    link to *all other* targets in the alliance (the cross-boosting deal
    of the link-spam-alliances paper).  Targets interlink in a ring,
    recycling rank within the alliance.

    Returns one :class:`SpamFarm` handle per target.
    """
    if num_targets < 2:
        raise ValueError("an alliance needs at least 2 targets")
    if not (0.0 <= share_fraction <= 1.0):
        raise ValueError("share_fraction must be in [0, 1]")
    farms: List[SpamFarm] = []
    for t in range(num_targets):
        farm = add_spam_farm(
            assembler,
            rng,
            base,
            boosters_per_target,
            tag=f"{tag}:farm{t}",
            hijacked_links=hijacked_links_per_target,
        )
        farms.append(farm)
    targets = np.asarray([farm.target for farm in farms], dtype=np.int64)
    # ring of targets
    assembler.add_edges(targets, np.roll(targets, -1))
    # shared boosters cross-link to the other targets
    for farm in farms:
        num_shared = int(round(share_fraction * len(farm.boosters)))
        if num_shared == 0:
            continue
        shared = farm.boosters[:num_shared]
        for other in farms:
            if other.target == farm.target:
                continue
            assembler.add_edges(
                shared,
                np.full(len(shared), other.target, dtype=np.int64),
            )
    assembler.mark(f"{tag}:targets", targets)
    return farms


def add_paid_links(
    assembler: WorldAssembler,
    rng: np.random.Generator,
    farm: SpamFarm,
    customer: int,
    num_links: int,
) -> np.ndarray:
    """Sell boosting links from an existing farm to a *good* host.

    Link selling is a real grey-market practice: the customer host has
    real content, but under the paper's spam definition — "content or
    links added with the clear intention of manipulating search engine
    ranking algorithms" — buying links makes it spam, so the customer
    is relabeled ground-truth spam.  A chunk of its PageRank now
    arrives from spam nodes while the rest stays organic, which places
    these hosts in the *middle* relative-mass groups of Figure 3
    (unlike farm targets, which saturate near 1).

    Returns the booster ids that link to the customer.
    """
    if num_links < 1:
        raise ValueError("num_links must be positive")
    take = min(num_links, len(farm.boosters))
    sellers = rng.choice(farm.boosters, size=take, replace=False)
    assembler.add_edges(
        sellers, np.full(len(sellers), customer, dtype=np.int64)
    )
    customer_arr = np.asarray([customer], dtype=np.int64)
    assembler.relabel(customer_arr, SPAM)
    assembler.mark("paid:customers", customer_arr)
    assembler.mark("spam:all", customer_arr)
    return sellers


def add_expired_domain_spam(
    assembler: WorldAssembler,
    rng: np.random.Generator,
    base: BaseWeb,
    lingering_links: int,
    *,
    tag: str = "expired:0",
) -> int:
    """A spammer-bought expired domain (Section 2.3 / Section 4.4.3,
    observation 2).

    The domain was once reputable, so ``lingering_links`` good base
    hosts still point at it; the spammer repopulates it with spam but
    adds **no** boosting structure.  Because its PageRank genuinely
    flows from good nodes, the paper predicts large *negative* mass and
    explicitly notes the mass-based detector "is not expected to detect
    them" — the benches assert exactly that miss.

    Returns the target's node id.
    """
    if lingering_links < 1:
        raise ValueError("an expired domain keeps at least one old link")
    salt = int(rng.integers(0, 1 << 24))
    ids = assembler.add_hosts(
        [f"www.{tag.replace(':', '-')}-{salt:06x}-once-reputable.com"], SPAM
    )
    target = int(ids[0])
    # lingering links come from *reputable, visible* hosts — the domain
    # was popular once, so the head of the web linked to it; sample
    # popularity-weighted connected hosts, not the crawl tail
    from .hostgraph import sample_targets

    sources = np.unique(
        sample_targets(
            rng,
            base.connected,
            base.connected_popularity,
            lingering_links,
        )
    )
    assembler.add_edges(
        sources, np.full(len(sources), target, dtype=np.int64)
    )
    assembler.mark(f"{tag}:target", ids)
    assembler.mark("expired:targets", ids)
    assembler.mark("spam:all", ids)
    return target
