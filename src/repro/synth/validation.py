"""Validation of synthetic worlds against their design invariants.

Custom world generators (or custom :class:`WorldConfig` knobs) can
silently break the assumptions the evaluation harness relies on — a
spam-labeled host missing from ``spam:all``, a core family containing
ground-truth spam, an anomalous group that isn't good.  This module
checks those invariants explicitly, so a misconfigured generator fails
loudly before it quietly distorts a reproduction.

``validate_world(world)`` returns a list of human-readable issues
(empty = healthy); ``assert_valid_world`` raises on the first problem.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .assembler import SyntheticWorld

__all__ = ["validate_world", "assert_valid_world"]


def validate_world(world: SyntheticWorld) -> List[str]:
    """Check a world's structural and labeling invariants.

    Checks performed:

    * every group's node ids are in range and sorted/unique;
    * ``spam:all`` covers exactly the ground-truth spam mask (when the
      group exists);
    * farm/alliance/expired groups contain only spam; core-family and
      anomaly groups contain only good hosts;
    * every ``farm:<tag>:boosters`` group has a matching single-node
      ``farm:<tag>:target`` group;
    * host names are unique when present;
    * the graph carries no self-links (guaranteed by construction, but
      revalidated because custom generators may bypass the builder).
    """
    issues: List[str] = []
    n = world.num_nodes

    in_range = {}
    for name, ids in world.groups.items():
        if len(ids) == 0:
            issues.append(f"group {name!r} is empty")
            in_range[name] = False
            continue
        ok = bool(ids.min() >= 0 and ids.max() < n)
        in_range[name] = ok
        if not ok:
            issues.append(f"group {name!r} references out-of-range nodes")
        if len(np.unique(ids)) != len(ids):
            issues.append(f"group {name!r} contains duplicate ids")

    if "spam:all" in world.groups and in_range["spam:all"]:
        tagged = np.zeros(n, dtype=bool)
        tagged[world.group("spam:all")] = True
        untagged_spam = int((world.spam_mask & ~tagged).sum())
        mislabeled = int((tagged & ~world.spam_mask).sum())
        if untagged_spam:
            issues.append(
                f"{untagged_spam} spam-labeled hosts missing from "
                "'spam:all'"
            )
        if mislabeled:
            issues.append(
                f"{mislabeled} 'spam:all' members are not spam-labeled"
            )

    spam_only_prefixes = ("spam:", "expired:")
    good_only_groups = ("directory", "gov", "edu", "blogs", "cliques",
                        "anomalous")
    paid = np.zeros(n, dtype=bool)
    if "paid:customers" in world.groups and in_range["paid:customers"]:
        paid[world.group("paid:customers")] = True
    for name, ids in world.groups.items():
        if not in_range[name]:
            continue
        if name.startswith(spam_only_prefixes) or (
            name.startswith("farm:")
            and (name.endswith(":target") or name.endswith(":boosters")
                 or name.endswith(":relays"))
        ):
            bad = int((~world.spam_mask[ids]).sum())
            if bad:
                issues.append(
                    f"group {name!r} holds {bad} non-spam hosts"
                )
        if name in good_only_groups or name.startswith(
            ("edu:", "country:", "portal:", "clique:")
        ):
            bad = int(world.spam_mask[ids].sum())
            if bad:
                issues.append(f"group {name!r} holds {bad} spam hosts")
        if name.endswith(":hijacked_sources"):
            # hijack victims were good at farm-creation time; the one
            # legitimate way they end up spam-labeled is by *later*
            # buying links themselves (paid:customers relabeling)
            bad = int((world.spam_mask[ids] & ~paid[ids]).sum())
            if bad:
                issues.append(
                    f"hijacked sources in {name!r} include {bad} spam "
                    "hosts (they must be victims, not members)"
                )

    for name in world.groups:
        if name.startswith("farm:") and name.endswith(":boosters"):
            tag = name.rsplit(":", 1)[0]
            target_group = f"{tag}:target"
            if target_group not in world.groups:
                issues.append(f"{name!r} has no matching {target_group!r}")
            elif len(world.group(target_group)) != 1:
                issues.append(f"{target_group!r} must hold exactly one node")

    if world.graph.names is not None:
        if len(set(world.graph.names)) != n:
            issues.append("host names are not unique")

    indptr = world.graph.indptr
    indices = world.graph.indices
    for x in range(n):
        row = indices[indptr[x] : indptr[x + 1]]
        if np.any(row == x):
            issues.append(f"self-link on node {x}")
            break

    return issues


def assert_valid_world(world: SyntheticWorld) -> None:
    """Raise ``AssertionError`` listing every violated invariant."""
    issues = validate_world(world)
    if issues:
        raise AssertionError(
            "invalid synthetic world:\n  " + "\n  ".join(issues)
        )
