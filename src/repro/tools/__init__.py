"""Maintenance tools (fixture regeneration, repo chores).

Run as modules: ``python -m repro.tools.regen_golden``.
"""
