"""Regenerate the golden regression fixtures under ``tests/golden/``.

Two fixtures pin the numerical behavior of the whole pipeline:

``table1.json``
    The Table 1 worked example (Figure 2 graph, unscaled core jump):
    scaled PageRank, scaled core PageRank, scaled estimated absolute
    mass, and estimated relative mass per named node, at full float
    precision.  These values are analytically known (see
    ``repro.datasets.table1_expected``), so a drift here means the
    solvers — not the fixture — are wrong.

``world_small.npz``
    The ``p``/``p′`` vectors and the good core of the stock
    ``WorldConfig.small(seed=7)`` world with the default γ = 0.85.
    This pins the synthesizer + core assembly + estimator end to end.

Usage::

    PYTHONPATH=src python -m repro.tools.regen_golden [--out DIR]

Regenerate ONLY when an intentional numerical change lands (e.g. a new
default tolerance); commit the diff together with the change that
caused it, and say why in the commit message.  A surprise diff from
this script is a regression, not a fixture update.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

import numpy as np

DEFAULT_OUT = Path(__file__).resolve().parents[3] / "tests" / "golden"

#: Parameters the fixtures are generated with; the regression test
#: recomputes with exactly these.
WORLD_SEED = 7
GAMMA = 0.85
TOL = 1e-12


def build_table1_fixture() -> dict:
    from ..core.mass import estimate_spam_mass
    from ..datasets import figure2_graph

    example = figure2_graph()
    est = estimate_spam_mass(
        example.graph, example.good_core, gamma=None, tol=TOL
    )
    scaled_p = est.scaled_pagerank()
    scaled_core = est.scaled_core_pagerank()
    scaled_abs = est.scaled_absolute()
    nodes = {}
    for name in example.names_in_order():
        i = example.id_of(name)
        nodes[name] = {
            "p": scaled_p[i],
            "p_core": scaled_core[i],
            "M_est": scaled_abs[i],
            "m_est": est.relative[i],
        }
    return {
        "description": "Table 1 worked example (Figure 2 graph, "
        "unscaled core jump), scaled by n/(1-c)",
        "damping": est.damping,
        "gamma": None,
        "tol": TOL,
        "nodes": nodes,
    }


def build_world_small_fixture() -> dict:
    from ..core.mass import estimate_spam_mass
    from ..synth.scenario import (
        WorldConfig,
        build_world,
        default_good_core,
    )

    world = build_world(WorldConfig.small(seed=WORLD_SEED))
    core = default_good_core(world)
    est = estimate_spam_mass(world.graph, core, gamma=GAMMA, tol=TOL)
    return {
        "pagerank": est.pagerank,
        "core_pagerank": est.core_pagerank,
        "core": np.asarray(core, dtype=np.int64),
        "seed": np.int64(WORLD_SEED),
        "gamma": np.float64(GAMMA),
        "tol": np.float64(TOL),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="regenerate the golden fixtures in tests/golden/"
    )
    parser.add_argument(
        "--out",
        default=str(DEFAULT_OUT),
        help=f"output directory (default: {DEFAULT_OUT})",
    )
    args = parser.parse_args(argv)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)

    table1 = build_table1_fixture()
    table1_path = out / "table1.json"
    table1_path.write_text(
        json.dumps(table1, indent=2) + "\n", encoding="utf-8"
    )
    print(f"wrote {table1_path}")

    world = build_world_small_fixture()
    world_path = out / "world_small.npz"
    np.savez_compressed(world_path, **world)
    print(
        f"wrote {world_path} "
        f"({len(world['pagerank']):,} nodes, core {len(world['core']):,})"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
