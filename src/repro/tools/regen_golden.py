"""Regenerate the golden regression fixtures under ``tests/golden/``.

Three fixtures pin the behavior of the whole pipeline:

``table1.json``
    The Table 1 worked example (Figure 2 graph, unscaled core jump):
    scaled PageRank, scaled core PageRank, scaled estimated absolute
    mass, and estimated relative mass per named node, at full float
    precision.  These values are analytically known (see
    ``repro.datasets.table1_expected``), so a drift here means the
    solvers — not the fixture — are wrong.

``world_small.npz``
    The ``p``/``p′`` vectors and the good core of the stock
    ``WorldConfig.small(seed=7)`` world with the default γ = 0.85.
    This pins the synthesizer + core assembly + estimator end to end.

``telemetry_world_small.json``
    The *normalized* telemetry event stream (kinds, names, ordering and
    the stable ``label``/``status`` attributes — no timings, no
    iteration counts) of one full pipeline pass over the same small
    world, run against a fresh engine.  This pins the observability
    contract: which stages are spanned, how they nest and in what
    order, independent of host speed or library version.

Usage::

    PYTHONPATH=src python -m repro.tools.regen_golden [--out DIR]

Regenerate ONLY when an intentional numerical change lands (e.g. a new
default tolerance); commit the diff together with the change that
caused it, and say why in the commit message.  A surprise diff from
this script is a regression, not a fixture update.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

import numpy as np

DEFAULT_OUT = Path(__file__).resolve().parents[3] / "tests" / "golden"

#: Parameters the fixtures are generated with; the regression test
#: recomputes with exactly these.
WORLD_SEED = 7
GAMMA = 0.85
TOL = 1e-12
#: Algorithm 2 thresholds used by the telemetry fixture's detect stage.
TAU = 0.98
RHO = 10.0


def build_table1_fixture() -> dict:
    from ..core.mass import estimate_spam_mass
    from ..datasets import figure2_graph

    example = figure2_graph()
    est = estimate_spam_mass(
        example.graph, example.good_core, gamma=None, tol=TOL
    )
    scaled_p = est.scaled_pagerank()
    scaled_core = est.scaled_core_pagerank()
    scaled_abs = est.scaled_absolute()
    nodes = {}
    for name in example.names_in_order():
        i = example.id_of(name)
        nodes[name] = {
            "p": scaled_p[i],
            "p_core": scaled_core[i],
            "M_est": scaled_abs[i],
            "m_est": est.relative[i],
        }
    return {
        "description": "Table 1 worked example (Figure 2 graph, "
        "unscaled core jump), scaled by n/(1-c)",
        "damping": est.damping,
        "gamma": None,
        "tol": TOL,
        "nodes": nodes,
    }


def build_world_small_fixture() -> dict:
    from ..core.mass import estimate_spam_mass
    from ..synth.scenario import (
        WorldConfig,
        build_world,
        default_good_core,
    )

    world = build_world(WorldConfig.small(seed=WORLD_SEED))
    core = default_good_core(world)
    est = estimate_spam_mass(world.graph, core, gamma=GAMMA, tol=TOL)
    return {
        "pagerank": est.pagerank,
        "core_pagerank": est.core_pagerank,
        "core": np.asarray(core, dtype=np.int64),
        "seed": np.int64(WORLD_SEED),
        "gamma": np.float64(GAMMA),
        "tol": np.float64(TOL),
    }


def build_telemetry_fixture() -> dict:
    """The normalized event stream of one traced small-world pipeline.

    A *fresh* :class:`~repro.perf.PagerankEngine` is mandatory: the
    shared engine may already hold the world's operator, which would
    (correctly) drop the ``operator-build`` span from the stream and
    make the fixture depend on whatever ran earlier in the process.
    """
    from ..core.detector import MassDetector
    from ..core.mass import estimate_spam_mass
    from ..obs import capture
    from ..perf import PagerankEngine
    from ..synth.scenario import (
        WorldConfig,
        build_world,
        default_good_core,
    )

    with capture() as tele:
        world = build_world(WorldConfig.small(seed=WORLD_SEED))
        core = default_good_core(world)
        engine = PagerankEngine()
        est = estimate_spam_mass(
            world.graph, core, gamma=GAMMA, tol=TOL, engine=engine
        )
        MassDetector(TAU, RHO).detect(est)
    return {
        "description": "normalized (timings stripped) telemetry event "
        "stream of a full small-world pipeline pass against a fresh "
        "engine; pins span kinds, names and ordering",
        "seed": WORLD_SEED,
        "gamma": GAMMA,
        "tol": TOL,
        "tau": TAU,
        "rho": RHO,
        "events": tele.sink.normalized(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="regenerate the golden fixtures in tests/golden/"
    )
    parser.add_argument(
        "--out",
        default=str(DEFAULT_OUT),
        help=f"output directory (default: {DEFAULT_OUT})",
    )
    args = parser.parse_args(argv)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)

    table1 = build_table1_fixture()
    table1_path = out / "table1.json"
    table1_path.write_text(
        json.dumps(table1, indent=2) + "\n", encoding="utf-8"
    )
    print(f"wrote {table1_path}")

    world = build_world_small_fixture()
    world_path = out / "world_small.npz"
    np.savez_compressed(world_path, **world)
    print(
        f"wrote {world_path} "
        f"({len(world['pagerank']):,} nodes, core {len(world['core']):,})"
    )

    telemetry = build_telemetry_fixture()
    telemetry_path = out / "telemetry_world_small.json"
    telemetry_path.write_text(
        json.dumps(telemetry, indent=2) + "\n", encoding="utf-8"
    )
    print(
        f"wrote {telemetry_path} ({len(telemetry['events'])} events)"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
