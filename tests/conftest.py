"""Shared fixtures.

The synthetic world and the reproduction context are expensive relative
to a unit test, so they are built once per session and shared; tests
must treat them as read-only.
"""

import numpy as np
import pytest

from repro.datasets import figure1_graph, figure2_graph
from repro.eval import ReproductionContext
from repro.obs import MemorySink, Telemetry, set_telemetry
from repro.synth import WorldConfig, build_world, default_good_core


@pytest.fixture(scope="session")
def fig1():
    """The Figure 1 example with the paper's k=3 boosters."""
    return figure1_graph(3)


@pytest.fixture(scope="session")
def fig2():
    """The Figure 2 / Table 1 example."""
    return figure2_graph()


@pytest.fixture(scope="session")
def tiny_config():
    """A deliberately tiny world config for fast structural tests."""
    return WorldConfig(
        seed=3,
        num_base_hosts=1_500,
        mean_outdegree=6.0,
        directory_size=40,
        gov_size=60,
        edu_countries={"us": (5, 4), "it": (4, 3), "de": (3, 3)},
        portal_hosts=60,
        blog_hosts=70,
        uncovered_country_hosts=120,
        uncovered_country_edu=15,
        covered_country_hosts=100,
        covered_country_edu=15,
        num_cliques=2,
        clique_size_range=(5, 12),
        num_farms=10,
        farm_boosters_range=(8, 60),
        num_alliances=1,
        alliance_targets=2,
        alliance_boosters=15,
        num_expired=2,
        expired_links_range=(6, 15),
        num_paid_customers=4,
        paid_links_range=(3, 12),
    )


@pytest.fixture(scope="session")
def tiny_world(tiny_config):
    """A tiny but structurally complete synthetic world."""
    return build_world(tiny_config)


@pytest.fixture(scope="session")
def tiny_core(tiny_world):
    """The default good core of the tiny world."""
    return default_good_core(tiny_world)


@pytest.fixture(scope="session")
def small_ctx():
    """A full reproduction context at the small stock scale."""
    return ReproductionContext.build(WorldConfig.small())


@pytest.fixture()
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture()
def telemetry():
    """In-process telemetry capture for behavioural assertions.

    Installs a fresh enabled :class:`~repro.obs.Telemetry` backed by a
    :class:`~repro.obs.MemorySink` as the process default, yields it,
    and restores the previous telemetry afterwards — so instrumented
    code under test emits into the fixture and nothing leaks across
    tests.  Assert on ``telemetry.sink`` (events, ``span_count``,
    ``named``) and ``telemetry.metrics`` (``value``, ``snapshot``).
    """
    tele = Telemetry(sink=MemorySink())
    previous = set_telemetry(tele)
    try:
        yield tele
    finally:
        set_telemetry(previous)
