"""Unit tests for the event record and the sinks."""

import json

import pytest

from repro.obs import Event, JsonlSink, MemorySink, NullSink, TeeSink


def test_event_carries_kind_name_attrs_and_timestamp():
    event = Event("event", "solver.escalation", {"from": "a", "to": "b"})
    assert event.kind == "event"
    assert event.name == "solver.escalation"
    assert event.attrs == {"from": "a", "to": "b"}
    assert event.ts > 0
    as_dict = event.to_dict()
    assert set(as_dict) == {"ts", "kind", "name", "attrs"}


def test_event_accepts_explicit_timestamp():
    event = Event("event", "x", ts=123.5)
    assert event.ts == 123.5


def test_null_sink_swallows():
    sink = NullSink()
    sink.emit(Event("event", "x"))
    sink.close()  # idempotent, no error


class TestMemorySink:
    def test_stores_in_order(self):
        sink = MemorySink()
        sink.emit(Event("span_start", "a"))
        sink.emit(Event("span_end", "a"))
        assert len(sink) == 2
        assert [e.kind for e in sink.events] == ["span_start", "span_end"]

    def test_queries(self):
        sink = MemorySink()
        sink.emit(Event("span_start", "solve"))
        sink.emit(Event("event", "solver.attempt"))
        sink.emit(Event("event", "solver.attempt"))
        sink.emit(Event("span_end", "solve"))
        assert sink.span_names() == ["solve"]
        assert sink.span_count("solve") == 1
        assert sink.span_count("missing") == 0
        assert len(sink.of_kind("event")) == 2
        assert len(sink.named("solver.attempt")) == 2
        assert len(sink.named("solver.attempt", kind="span_end")) == 0

    def test_normalized_strips_volatile_attrs(self):
        sink = MemorySink()
        sink.emit(
            Event(
                "span_end",
                "solve",
                {"duration": 0.123, "status": "ok", "depth": 1},
            )
        )
        sink.emit(
            Event("event", "solver.column", {"label": "core", "iterations": 42})
        )
        normalized = sink.normalized()
        assert normalized == [
            {"kind": "span_end", "name": "solve", "status": "ok"},
            {"kind": "event", "name": "solver.column", "label": "core"},
        ]

    def test_clear(self):
        sink = MemorySink()
        sink.emit(Event("event", "x"))
        sink.clear()
        assert len(sink) == 0


class TestJsonlSink:
    def test_writes_one_valid_json_object_per_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        sink.emit(Event("span_start", "solve", {"depth": 0}))
        sink.emit(Event("span_end", "solve", {"status": "ok"}))
        sink.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        records = [json.loads(line) for line in lines]
        assert records[0]["kind"] == "span_start"
        assert records[1]["attrs"]["status"] == "ok"

    def test_counts_emitted_events_by_kind(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        sink.emit(Event("span_start", "a"))
        sink.emit(Event("span_end", "a"))
        sink.emit(Event("event", "b"))
        sink.close()
        assert sink.emitted == 3
        assert sink.emitted_by_kind == {
            "span_start": 1,
            "span_end": 1,
            "event": 1,
        }

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "t.jsonl"
        sink = JsonlSink(path)
        sink.emit(Event("event", "x"))
        sink.close()
        assert path.exists()

    def test_close_is_idempotent(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        sink.close()
        sink.close()


def test_tee_sink_fans_out(tmp_path):
    mem_a, mem_b = MemorySink(), MemorySink()
    tee = TeeSink(mem_a, mem_b, None)  # None entries are dropped
    tee.emit(Event("event", "x"))
    assert len(mem_a) == 1
    assert len(mem_b) == 1
    tee.close()
