"""Unit tests for the metrics registry."""

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6


class TestGauge:
    def test_holds_last_set_value(self):
        g = Gauge("x")
        g.set(3)
        g.set(7.5)
        assert g.value == 7.5


class TestHistogram:
    def test_streaming_summary(self):
        h = Histogram("x")
        h.observe(2.0)
        h.observe(8.0)
        h.observe(5.0)
        assert h.count == 3
        assert h.total == 15.0
        assert h.min == 2.0
        assert h.max == 8.0
        assert h.last == 5.0
        assert h.mean == 5.0

    def test_observe_many(self):
        h = Histogram("x")
        h.observe_many([1.0, 2.0, 3.0])
        assert h.count == 3
        assert h.max == 3.0

    def test_empty_histogram_mean_is_zero(self):
        assert Histogram("x").mean == 0.0


class TestMetricsRegistry:
    def test_create_on_first_touch_then_reuse(self):
        reg = MetricsRegistry()
        a = reg.counter("hits")
        b = reg.counter("hits")
        assert a is b
        assert len(reg) == 1

    def test_wrong_type_reuse_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x")

    def test_value_lookup_with_default(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc(3)
        assert reg.value("hits") == 3
        assert reg.value("absent") == 0
        assert reg.value("absent", default=None) is None
        assert "hits" in reg
        assert "absent" not in reg

    def test_snapshot_is_sorted_and_typed(self):
        reg = MetricsRegistry()
        reg.counter("b.counter").inc(2)
        reg.gauge("a.gauge").set(1.5)
        reg.histogram("c.hist").observe_many([1.0, 3.0])
        snap = reg.snapshot()
        assert list(snap) == ["a.gauge", "b.counter", "c.hist"]
        assert snap["a.gauge"] == {"type": "gauge", "value": 1.5}
        assert snap["b.counter"] == {"type": "counter", "value": 2}
        hist = snap["c.hist"]
        assert hist["type"] == "histogram"
        assert hist["count"] == 2
        assert hist["min"] == 1.0
        assert hist["max"] == 3.0
