"""The disabled path must be free: zero events, zero retained memory.

The tentpole contract is that leaving the instrumentation hooks in
production code costs nothing while telemetry is off.  Two independent
proofs here:

* a sink that raises on any emission is installed behind a *disabled*
  telemetry and a real pipeline pass runs clean — no event object was
  ever constructed, no sink method ever called;
* a tracemalloc diff across many disabled facade calls shows no
  retained allocations (the no-op span is a shared singleton, counters
  and histograms are never created).
"""

import tracemalloc

import numpy as np

from repro.core.detector import MassDetector
from repro.core.mass import estimate_spam_mass
from repro.obs import NOOP_SPAN, EventSink, Telemetry, get_telemetry, set_telemetry
from repro.perf import PagerankEngine
from repro.synth import build_world, default_good_core


class RaisingSink(EventSink):
    """Fails the test if the disabled path ever touches the sink."""

    def emit(self, event):
        raise AssertionError(
            f"disabled telemetry emitted an event: {event!r}"
        )


def test_disabled_pipeline_emits_no_events_and_no_metrics(tiny_config):
    tele = Telemetry(sink=RaisingSink(), enabled=False)
    previous = set_telemetry(tele)
    try:
        world = build_world(tiny_config)
        core = default_good_core(world)
        engine = PagerankEngine()
        estimates = estimate_spam_mass(world.graph, core, engine=engine)
        MassDetector(0.98, 10.0).detect(estimates)
    finally:
        set_telemetry(previous)
    assert len(tele.metrics) == 0  # not a single metric was registered


def test_disabled_span_is_the_shared_singleton():
    tele = Telemetry(sink=RaisingSink(), enabled=False)
    assert tele.span("a") is NOOP_SPAN
    assert tele.span("b", attr=1) is NOOP_SPAN  # same object every call


def test_process_default_telemetry_is_shared_and_disabled():
    # the module-level default is what pool workers inherit: it must be
    # off, so child processes never double-emit
    default = get_telemetry()
    assert default.enabled is False
    assert get_telemetry() is default


def test_disabled_facade_retains_no_allocations():
    """A tracemalloc diff over many disabled calls stays flat.

    Transient kwargs dicts are freed immediately; nothing may be
    *retained* — no Event objects, no metrics, no span instances.
    """
    tele = Telemetry(enabled=False)
    values = np.linspace(0.0, 1.0, 8)

    def burst(n: int) -> None:
        for i in range(n):
            with tele.span("stage", index=i) as sp:
                sp.set("key", i)
            tele.event("occurrence", index=i)
            tele.inc("counter")
            tele.set_gauge("gauge", i)
            tele.observe("hist", float(i))
            tele.observe_many("hist", values)

    burst(50)  # warm up caches (method wrappers, small-int pools)
    tracemalloc.start()
    try:
        before = tracemalloc.take_snapshot()
        burst(2000)
        after = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    growth = sum(
        stat.size_diff
        for stat in after.compare_to(before, "lineno")
        if stat.size_diff > 0
    )
    # 2000 iterations x ~6 calls; any per-call retention would show up
    # as hundreds of kilobytes.  The allowance covers tracemalloc's own
    # bookkeeping noise.
    assert growth < 16_384, f"disabled telemetry retained {growth} bytes"
    assert len(tele.metrics) == 0
