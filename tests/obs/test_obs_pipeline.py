"""Behavioural telemetry invariants of the instrumented pipeline.

These tests run real pipeline stages under the ``telemetry`` fixture
(in-process :class:`~repro.obs.MemorySink` capture) and assert the
*shape* of what was emitted: every stage spanned exactly once, correct
span nesting, counters agreeing with the components' own reports, and
recovery events appearing under injected faults.
"""

import os

import numpy as np
import pytest

from repro.core.detector import MassDetector
from repro.core.mass import estimate_spam_mass
from repro.graph import WebGraph, transition_matrix
from repro.perf import PagerankEngine, pagerank_montecarlo_parallel
from repro.runtime import CheckpointManager, chaos
from repro.runtime.resilient import FallbackSolver
from repro.synth import build_world, default_good_core

TOL = 1e-10

STAGES = (
    "graph-gen",
    "operator-build",
    "solve:batch",
    "mass-estimate",
    "detect",
)


@pytest.fixture()
def system():
    graph = WebGraph.from_edges(
        8,
        [
            (0, 1), (1, 2), (2, 0), (0, 3), (3, 4),
            (4, 5), (5, 0), (5, 6), (6, 7), (7, 0),
        ],
    )
    tt = transition_matrix(graph).T.tocsr()
    v = np.full(8, 1.0 / 8.0)
    return tt, v


def test_every_stage_spanned_exactly_once(telemetry, tiny_config):
    """One full pipeline pass emits each stage span exactly once.

    A *fresh* engine is required: the shared engine may already hold the
    graph's operator, which would (correctly) suppress the
    ``operator-build`` span behind a cache hit.
    """
    world = build_world(tiny_config)
    core = default_good_core(world)
    engine = PagerankEngine()
    estimates = estimate_spam_mass(world.graph, core, engine=engine)
    MassDetector(0.98, 10.0).detect(estimates)

    sink = telemetry.sink
    for stage in STAGES:
        assert sink.span_count(stage) == 1, f"{stage} spanned != once"
    # every span completed ok
    for end in sink.of_kind("span_end"):
        assert end.attrs["status"] == "ok"


def test_span_nesting_reflects_the_pipeline_structure(telemetry, tiny_config):
    world = build_world(tiny_config)
    core = default_good_core(world)
    estimates = estimate_spam_mass(world.graph, core, engine=PagerankEngine())
    MassDetector(0.98, 10.0).detect(estimates)

    sink = telemetry.sink
    for child, parent in (
        ("operator-build", "mass-estimate"),
        ("solve:batch", "mass-estimate"),
    ):
        start = sink.named(child, "span_start")[0]
        assert start.attrs["parent"] == parent
    assert sink.named("graph-gen", "span_start")[0].attrs["parent"] is None


def test_batch_solve_emits_per_column_events(telemetry, tiny_world):
    engine = PagerankEngine()
    engine.solve_many(tiny_world.graph, [None, None], labels=("p", "p_prime"))
    columns = telemetry.sink.named("solver.column")
    assert [e.attrs["label"] for e in columns] == ["p", "p_prime"]
    assert all(e.attrs["converged"] for e in columns)
    assert telemetry.metrics.value("engine.batched_solves") == 1
    assert telemetry.metrics.value("engine.columns") == 2


def test_cache_counters_match_engine_reports(telemetry, tiny_world):
    """The telemetry counters and OperatorCache.cache_info agree."""
    engine = PagerankEngine()
    graph = tiny_world.graph
    engine.solve(graph)  # miss: builds the bundle
    engine.solve(graph)  # hit
    engine.solve(graph)  # hit
    info = engine.cache.cache_info()
    assert info == {
        "hits": 2,
        "misses": 1,
        "evictions": 0,
        "derives": 0,
        "size": 1,
        "maxsize": 8,
    }
    assert telemetry.metrics.value("opcache.hits") == info["hits"]
    assert telemetry.metrics.value("opcache.misses") == info["misses"]
    assert telemetry.sink.span_count("operator-build") == 1


def test_legacy_path_spans_p_and_p_prime_separately(telemetry, tiny_world):
    """An explicit transition matrix opts into the sequential path,
    which spans the two solves apart."""
    graph = tiny_world.graph
    core = default_good_core(tiny_world)
    tt = transition_matrix(graph).T.tocsr()
    estimate_spam_mass(graph, core, transition_t=tt)
    sink = telemetry.sink
    assert sink.span_count("solve:p") == 1
    assert sink.span_count("solve:p_prime") == 1
    assert sink.span_count("solve:batch") == 0
    assert sink.named("solve:p", "span_start")[0].attrs["parent"] == (
        "mass-estimate"
    )


def test_fallback_escalation_emits_events_in_chain_order(telemetry, system):
    tt, v = system
    poison = chaos.nan_poison_at(5, fraction=0.5, methods=("gauss_seidel",))
    solver = FallbackSolver(
        ("gauss_seidel", "jacobi", "power", "direct"),
        tol=TOL,
        monitor_options={"check_every": 1},
    )
    result = solver.solve(tt, v, inject=poison)
    assert result.converged

    sink = telemetry.sink
    escalations = sink.named("solver.escalation")
    assert escalations, "no escalation events under an injected fault"
    assert escalations[0].attrs["from"] == "gauss_seidel"
    assert escalations[0].attrs["to"] == "jacobi"
    # one solver.attempt event per recorded attempt, same outcomes
    attempts = sink.named("solver.attempt")
    assert [e.attrs["outcome"] for e in attempts] == [
        a.outcome for a in result.report.attempts
    ]
    assert telemetry.metrics.value("solver.escalations") == len(escalations)
    # the fallback-solve span carries the final outcome
    end = sink.named("fallback-solve", "span_end")[0]
    assert end.attrs["outcome"] == "converged"
    assert end.attrs["method"] != "gauss_seidel"


def test_attempt_events_feed_iteration_and_residual_histograms(
    telemetry, system
):
    tt, v = system
    FallbackSolver(("jacobi",), tol=TOL).solve(tt, v)
    iters = telemetry.metrics.histogram("solver.iterations")
    assert iters.count == 1
    assert iters.last > 0
    curve = telemetry.metrics.histogram("solver.residual_curve")
    assert curve.count > 0
    assert curve.min < curve.max  # residuals actually decreased


def test_checkpoint_writes_and_resume_are_reported(
    telemetry, system, tmp_path
):
    tt, v = system
    kill_at = 40
    with pytest.raises(chaos.InjectedFault):
        FallbackSolver(
            ("jacobi",), tol=TOL, checkpoint=tmp_path, checkpoint_every=10
        ).solve(tt, v, inject=chaos.fault_at(kill_at))
    writes = telemetry.sink.named("checkpoint.write")
    assert writes
    assert telemetry.metrics.value("checkpoint.writes") == len(writes)
    assert all(e.attrs["iteration"] < kill_at for e in writes)

    result = FallbackSolver(
        ("jacobi",), tol=TOL, checkpoint=tmp_path, checkpoint_every=10
    ).solve(tt, v, resume=True)
    assert result.converged
    resumed = telemetry.sink.named("solver.resumed")
    assert len(resumed) == 1
    assert resumed[0].attrs["iteration"] == result.report.resumed_from
    assert telemetry.metrics.value("solver.resumes") == 1


def test_transient_write_failure_emits_retry_events(
    telemetry, system, tmp_path, monkeypatch
):
    import repro.runtime.checkpoint as ckpt_mod

    tt, v = system
    flaky = chaos.FlakyCalls(os.replace, plan={1: OSError})
    monkeypatch.setattr(ckpt_mod.os, "replace", flaky)
    manager = CheckpointManager(
        tmp_path, every=20, backoff=0.0, sleep=lambda _: None
    )
    FallbackSolver(("jacobi",), tol=TOL, checkpoint=manager).solve(tt, v)
    monkeypatch.undo()
    retries = telemetry.sink.named("retry.attempt")
    assert len(retries) == 1
    assert retries[0].attrs["error"] == "OSError"
    assert retries[0].attrs["attempt"] == 1
    assert telemetry.metrics.value("retry.attempts") == 1


def test_montecarlo_reports_walk_counts(telemetry, tiny_world):
    result = pagerank_montecarlo_parallel(
        tiny_world.graph, num_walks=500, workers=None, seed=3
    )
    assert telemetry.metrics.value("mc.walks") == result.num_walks == 500
    runs = telemetry.sink.named("mc.run")
    assert len(runs) == 1
    assert runs[0].attrs["walks"] == 500
    assert runs[0].attrs["steps"] == result.total_steps
