"""Unit tests for the telemetry facade, capture scoping and manifests."""

import json

import pytest

from repro.obs import (
    JsonlSink,
    MemorySink,
    NOOP_SPAN,
    Telemetry,
    build_manifest,
    capture,
    get_telemetry,
    manifest_path_for,
    set_telemetry,
    write_manifest,
)


def test_default_telemetry_is_disabled():
    assert get_telemetry().enabled is False


def test_enabled_facade_routes_to_sink_and_metrics():
    tele = Telemetry(sink=MemorySink())
    with tele.span("solve"):
        tele.event("solver.attempt", method="jacobi")
        tele.inc("solver.attempts")
        tele.observe("solver.iterations", 42)
        tele.set_gauge("detect.candidates", 7)
        tele.observe_many("solver.residual_curve", [0.5, 0.25])
    assert tele.sink.span_count("solve") == 1
    assert len(tele.sink.named("solver.attempt")) == 1
    assert tele.metrics.value("solver.attempts") == 1
    assert tele.metrics.value("detect.candidates") == 7
    assert tele.metrics.histogram("solver.iterations").last == 42.0
    assert tele.metrics.histogram("solver.residual_curve").count == 2
    # completed spans feed the duration histogram
    assert tele.metrics.histogram("span.duration.solve").count == 1


def test_disabled_facade_hands_out_the_noop_singleton():
    tele = Telemetry(sink=MemorySink(), enabled=False)
    assert tele.span("anything", key=1) is NOOP_SPAN
    tele.event("x")
    tele.inc("c")
    tele.observe("h", 1.0)
    tele.observe_many("h", [1.0])
    tele.set_gauge("g", 1)
    assert len(tele.sink) == 0
    assert len(tele.metrics) == 0


def test_set_telemetry_returns_previous_and_none_restores_disabled():
    mine = Telemetry(sink=MemorySink())
    previous = set_telemetry(mine)
    try:
        assert get_telemetry() is mine
    finally:
        restored = set_telemetry(previous)
        assert restored is mine
    assert get_telemetry() is previous
    # None resets to the shared disabled default
    old = set_telemetry(None)
    try:
        assert get_telemetry().enabled is False
    finally:
        set_telemetry(old)


def test_capture_installs_and_restores():
    before = get_telemetry()
    with capture() as tele:
        assert get_telemetry() is tele
        assert tele.enabled
        tele.event("x")
        assert len(tele.sink) == 1
    assert get_telemetry() is before


def test_capture_restores_on_exception():
    before = get_telemetry()
    with pytest.raises(RuntimeError):
        with capture():
            raise RuntimeError("boom")
    assert get_telemetry() is before


class TestManifest:
    def test_manifest_path_pairs_with_trace(self, tmp_path):
        assert manifest_path_for(tmp_path / "run.trace.jsonl").name == (
            "run.trace.manifest.json"
        )

    def test_build_manifest_from_memory_sink(self):
        tele = Telemetry(sink=MemorySink())
        with tele.span("solve"):
            tele.event("solver.attempt")
        manifest = build_manifest(
            tele, argv=["estimate"], exit_code=0, trace_path="t.jsonl"
        )
        assert manifest["schema"] == 1
        assert manifest["exit_code"] == 0
        assert manifest["argv"] == ["estimate"]
        assert manifest["events_total"] == 3
        assert manifest["events_by_kind"] == {
            "span_start": 1,
            "span_end": 1,
            "event": 1,
        }
        assert "span.duration.solve" in manifest["metrics"]

    def test_build_manifest_from_jsonl_sink(self, tmp_path):
        tele = Telemetry(sink=JsonlSink(tmp_path / "t.jsonl"))
        with tele.span("solve"):
            pass
        tele.close()
        manifest = build_manifest(tele)
        assert manifest["events_total"] == 2
        assert manifest["events_by_kind"] == {"span_start": 1, "span_end": 1}

    def test_write_manifest_round_trips(self, tmp_path):
        tele = Telemetry(sink=MemorySink())
        tele.event("x")
        path = write_manifest(
            tele, tmp_path / "out" / "run.manifest.json", exit_code=4
        )
        loaded = json.loads(path.read_text())
        assert loaded["exit_code"] == 4
        assert loaded["events_total"] == 1
