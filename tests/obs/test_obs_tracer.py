"""Unit tests for the span tracer: nesting, status, thread isolation."""

import threading

import pytest

from repro.obs import NOOP_SPAN, Event, MemorySink, NoopSpan, Tracer


@pytest.fixture()
def traced():
    sink = MemorySink()
    return Tracer(sink.emit), sink


def test_span_emits_start_and_end(traced):
    tracer, sink = traced
    with tracer.span("solve", {"method": "jacobi"}):
        pass
    assert [e.kind for e in sink.events] == ["span_start", "span_end"]
    start, end = sink.events
    assert start.name == end.name == "solve"
    assert start.attrs["method"] == "jacobi"
    assert end.attrs["status"] == "ok"
    assert end.attrs["duration"] >= 0.0


def test_nesting_records_parent_and_depth(traced):
    tracer, sink = traced
    with tracer.span("outer"):
        assert tracer.current().name == "outer"
        with tracer.span("inner"):
            assert tracer.current().name == "inner"
    assert tracer.current() is None
    inner_start = sink.named("inner", "span_start")[0]
    assert inner_start.attrs["parent"] == "outer"
    assert inner_start.attrs["depth"] == 1
    outer_start = sink.named("outer", "span_start")[0]
    assert outer_start.attrs["parent"] is None
    assert outer_start.attrs["depth"] == 0
    # inner completes before outer
    assert sink.span_names() == ["inner", "outer"]


def test_exception_marks_error_status_and_propagates(traced):
    tracer, sink = traced
    with pytest.raises(ValueError):
        with tracer.span("solve"):
            raise ValueError("boom")
    end = sink.named("solve", "span_end")[0]
    assert end.attrs["status"] == "error"
    assert end.attrs["error"] == "ValueError"
    assert tracer.current() is None  # stack unwound


def test_set_attribute_lands_on_span_end(traced):
    tracer, sink = traced
    with tracer.span("solve") as sp:
        sp.set("converged", True)
    start = sink.named("solve", "span_start")[0]
    end = sink.named("solve", "span_end")[0]
    assert "converged" not in start.attrs
    assert end.attrs["converged"] is True


def test_on_close_hook_receives_finished_span():
    closed = []
    sink = MemorySink()
    tracer = Tracer(sink.emit, on_close=closed.append)
    with tracer.span("solve"):
        pass
    assert len(closed) == 1
    assert closed[0].name == "solve"
    assert closed[0].duration >= 0.0


def test_span_stacks_are_per_thread():
    sink = MemorySink()
    lock = threading.Lock()

    def emit(event: Event) -> None:
        with lock:
            sink.emit(event)

    tracer = Tracer(emit)
    barrier = threading.Barrier(2)
    parents = {}

    def worker(name: str) -> None:
        with tracer.span(name):
            barrier.wait()  # both threads hold their span concurrently
            parents[name] = tracer.current().name
            barrier.wait()

    threads = [
        threading.Thread(target=worker, args=(f"t{i}",)) for i in range(2)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    # each thread saw its own span, not the other thread's
    assert parents == {"t0": "t0", "t1": "t1"}
    for name in ("t0", "t1"):
        start = sink.named(name, "span_start")[0]
        assert start.attrs["parent"] is None
        assert start.attrs["depth"] == 0


def test_noop_span_is_a_shared_inert_singleton():
    assert isinstance(NOOP_SPAN, NoopSpan)
    with NOOP_SPAN as sp:
        sp.set("anything", 1)
    assert not hasattr(NOOP_SPAN, "__dict__")  # __slots__: allocates nothing
