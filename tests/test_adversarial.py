"""Tests for the adversarial-robustness experiments (Section 6 claims)."""

import numpy as np
import pytest

from repro.core import MassDetector, estimate_spam_mass, true_relative_mass
from repro.eval import (
    attack_core_infiltration,
    attack_good_link_harvest,
    run_robustness_experiment,
)


def test_harvest_adds_only_good_links(small_ctx, rng):
    world = small_ctx.world
    targets = world.group("spam:targets")[:5]
    attacked = attack_good_link_harvest(world, targets, 10, rng)
    assert attacked.num_edges > world.graph.num_edges
    # every new edge points at a target and comes from a good host
    original = set(world.graph.edges())
    for u, v in attacked.edges():
        if (u, v) not in original:
            assert v in set(targets.tolist())
            assert not world.spam_mask[u]
    # the original world is untouched
    assert world.graph.num_edges == len(original)


def test_harvest_dilutes_estimated_and_true_mass(small_ctx, rng):
    """Evasion through good links lowers true spam mass too — the
    spammer pays for honest support (the paper's cost argument)."""
    world = small_ctx.world
    targets = world.group("spam:targets")
    attacked = attack_good_link_harvest(world, targets, 30, rng)
    est_before = small_ctx.estimates.relative[targets].mean()
    true_before = true_relative_mass(
        world.graph, world.spam_nodes()
    )[targets].mean()
    est_after = estimate_spam_mass(
        attacked, small_ctx.core, gamma=small_ctx.gamma
    ).relative[targets].mean()
    true_after = true_relative_mass(
        attacked, world.spam_nodes()
    )[targets].mean()
    assert est_after < est_before
    assert true_after < true_before


def test_infiltration_requires_core_knowledge(small_ctx, rng):
    """The same attack graph, evaluated with and without the moles in
    the core: only the known-core version divorces the estimate from
    the truth."""
    world = small_ctx.world
    targets = world.group("spam:targets")
    attacked, polluted = attack_core_infiltration(
        world, small_ctx.core, num_moles=15, rng=rng
    )
    with_knowledge = estimate_spam_mass(
        attacked, polluted, gamma=small_ctx.gamma
    ).relative[targets].mean()
    without = estimate_spam_mass(
        attacked, small_ctx.core, gamma=small_ctx.gamma
    ).relative[targets].mean()
    truth = true_relative_mass(attacked, world.spam_nodes())[targets].mean()
    # knowing the core lets the attacker launder mass ...
    assert with_knowledge < without - 0.1
    # ... while the true mass stays high either way
    assert truth > 0.8


def test_infiltration_pollutes_core_with_spam(small_ctx, rng):
    _, polluted = attack_core_infiltration(
        small_ctx.world, small_ctx.core, num_moles=5, rng=rng
    )
    assert small_ctx.world.spam_mask[polluted].sum() == 5
    assert len(polluted) == len(small_ctx.core) + 5


def test_attack_validation(small_ctx, rng):
    with pytest.raises(ValueError):
        attack_good_link_harvest(small_ctx.world, [], 5, rng)
    with pytest.raises(ValueError):
        attack_good_link_harvest(
            small_ctx.world, small_ctx.world.group("spam:targets"), 0, rng
        )
    with pytest.raises(ValueError):
        attack_core_infiltration(
            small_ctx.world, small_ctx.core, num_moles=0, rng=rng
        )


def test_robustness_experiment_shape(small_ctx):
    result = run_robustness_experiment(
        small_ctx, harvest_fractions=(0.0, 0.5), mole_levels=(1, 10)
    )
    rows = {row[0]: row for row in result.rows}
    baseline = rows["baseline (no attack)"]
    harvest = rows["harvest 0.5x boosters in good links"]
    # the harvest drops both the estimate AND the truth
    assert harvest[1] < baseline[1]
    assert harvest[2] < baseline[2]
    # infiltration drops the estimate while the truth holds
    infiltration = rows["core infiltration, 10 moles"]
    assert infiltration[1] < baseline[1]
    assert infiltration[2] == pytest.approx(baseline[2], abs=0.05)
    # blind moles barely move the estimate compared to informed ones
    blind = rows["blind moles (10, core unknown)"]
    assert blind[1] > infiltration[1]
