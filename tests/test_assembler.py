"""Unit tests for the world assembler and SyntheticWorld container."""

import numpy as np
import pytest

from repro.synth import GOOD, SPAM, SyntheticWorld, WorldAssembler


def test_add_hosts_and_labels():
    asm = WorldAssembler()
    good = asm.add_hosts(["a.com", "b.com"], GOOD)
    spam = asm.add_hosts(["s.biz"], SPAM)
    assert good.tolist() == [0, 1]
    assert spam.tolist() == [2]
    world = asm.build()
    assert world.spam_mask.tolist() == [False, False, True]
    assert world.label_of(0) == "good"
    assert world.label_of(2) == "spam"


def test_invalid_label_rejected():
    asm = WorldAssembler()
    with pytest.raises(ValueError):
        asm.add_hosts(["a.com"], 7)
    ids = asm.add_hosts(["b.com"], GOOD)
    with pytest.raises(ValueError):
        asm.relabel(ids, 5)


def test_relabel():
    asm = WorldAssembler()
    ids = asm.add_hosts(["a.com", "b.com"], GOOD)
    asm.relabel(ids[:1], SPAM)
    world = asm.build()
    assert world.spam_mask.tolist() == [True, False]


def test_edges_validated_and_deduped():
    asm = WorldAssembler()
    asm.add_hosts(["a", "b"], GOOD)
    asm.add_edges(np.array([0, 0, 1]), np.array([1, 1, 1]))  # dup + self
    world = asm.build()
    assert world.graph.num_edges == 1
    with pytest.raises(ValueError):
        asm.add_edges(np.array([0]), np.array([5]))
    with pytest.raises(ValueError):
        asm.add_edges(np.array([0, 1]), np.array([1]))


def test_add_single_edge():
    asm = WorldAssembler()
    asm.add_hosts(["a", "b"], GOOD)
    asm.add_edge(0, 1)
    assert asm.build().graph.has_edge(0, 1)


def test_groups_merge_and_dedup():
    asm = WorldAssembler()
    ids = asm.add_hosts(["a", "b", "c"], GOOD)
    asm.mark("g", ids[:2])
    asm.mark("g", ids[1:])
    world = asm.build()
    assert world.group("g").tolist() == [0, 1, 2]
    assert "g" in world.groups_matching("g")
    with pytest.raises(KeyError):
        world.group("missing")


def test_metadata_and_groups_matching():
    asm = WorldAssembler()
    ids = asm.add_hosts(["a"], GOOD)
    asm.mark("farm:0:target", ids)
    asm.mark("farm:1:target", ids)
    asm.note("key", {"nested": 1})
    world = asm.build()
    assert world.metadata["key"] == {"nested": 1}
    assert set(world.groups_matching("farm:")) == {
        "farm:0:target",
        "farm:1:target",
    }


def test_good_and_spam_nodes():
    asm = WorldAssembler()
    asm.add_hosts(["a", "b"], GOOD)
    asm.add_hosts(["s"], SPAM)
    world = asm.build()
    assert world.good_nodes().tolist() == [0, 1]
    assert world.spam_nodes().tolist() == [2]
    assert world.num_nodes == 3


def test_anomalous_nodes_default_empty():
    asm = WorldAssembler()
    asm.add_hosts(["a"], GOOD)
    world = asm.build()
    assert world.anomalous_nodes().size == 0


def test_world_shape_validation():
    from repro.graph import WebGraph

    with pytest.raises(ValueError):
        SyntheticWorld(WebGraph.empty(3), np.zeros(2, dtype=bool), {})
