"""Good-core auditing: planted contamination must be caught exactly."""

import numpy as np
import pytest

from repro.core.mass import estimate_spam_mass
from repro.eval.audit import CoreAuditReport, audit_core
from repro.runtime.chaos import contaminate_core


@pytest.fixture(scope="module")
def clean_estimates(tiny_world, tiny_core):
    return estimate_spam_mass(tiny_world.graph, tiny_core)


def test_clean_core_audits_clean(tiny_world, tiny_core, clean_estimates):
    report = audit_core(tiny_world, clean_estimates, tiny_core)
    assert report.clean
    assert report.findings == []
    assert report.core_size == len(tiny_core)
    np.testing.assert_array_equal(report.repaired_core, tiny_core)
    assert "clean" in report.summary()


def test_contaminated_core_is_caught_exactly(tiny_world, tiny_core):
    dirty = contaminate_core(
        tiny_core, tiny_world.spam_nodes(), num=4, seed=5
    )
    planted = sorted(set(map(int, dirty)) - set(map(int, tiny_core)))
    estimates = estimate_spam_mass(tiny_world.graph, dirty)
    report = audit_core(tiny_world, estimates, dirty)
    # exactly the planted spam is flagged — nothing more, nothing less
    assert sorted(report.flagged_nodes) == planted
    assert all("spam-labeled" in f.reasons for f in report.findings)
    assert not report.clean
    np.testing.assert_array_equal(report.repaired_core, tiny_core)


def test_audit_emits_telemetry(
    telemetry, tiny_world, tiny_core, clean_estimates
):
    audit_core(tiny_world, clean_estimates, tiny_core)
    events = telemetry.sink.named("audit.core")
    assert len(events) == 1
    assert events[0].attrs["core_size"] == len(tiny_core)
    assert events[0].attrs["flagged"] == 0


def test_label_mapping_source(tiny_world, tiny_core, clean_estimates):
    """The CLI passes bundle labels as a {node: str} mapping."""
    labels = {
        int(i): ("spam" if tiny_world.spam_mask[i] else "good")
        for i in range(tiny_world.num_nodes)
    }
    dirty = contaminate_core(
        tiny_core, tiny_world.spam_nodes(), num=2, seed=1
    )
    estimates = estimate_spam_mass(tiny_world.graph, dirty)
    report = audit_core(labels, estimates, dirty)
    assert len(report.findings) == 2
    assert all(f.label == "spam" for f in report.findings)


def test_relative_mass_threshold_flags_without_labels(
    tiny_world, tiny_core
):
    """Label-free auditing: a core member the estimates refuse to
    support is flagged purely on its relative mass."""
    dirty = contaminate_core(
        tiny_core, tiny_world.spam_nodes(), num=3, seed=5
    )
    estimates = estimate_spam_mass(tiny_world.graph, dirty)
    rel = estimates.relative[dirty]
    # pick a threshold between the genuine members (deeply negative)
    # and the planted members, then audit with no label source at all
    threshold = float(rel.max())
    report = audit_core(
        None, estimates, dirty, relative_mass_threshold=threshold
    )
    assert not report.clean
    assert all(
        f.reasons == ("high-relative-mass",) for f in report.findings
    )
    assert all(f.label is None for f in report.findings)
    flagged = set(report.flagged_nodes)
    assert flagged <= set(map(int, dirty))


def test_audit_validates_inputs(tiny_world, tiny_core, clean_estimates):
    with pytest.raises(ValueError, match="outside the graph"):
        audit_core(
            tiny_world,
            clean_estimates,
            np.array([tiny_world.num_nodes + 7]),
        )
    with pytest.raises(ValueError, match="finite"):
        audit_core(
            tiny_world,
            clean_estimates,
            tiny_core,
            relative_mass_threshold=float("nan"),
        )
    with pytest.raises(TypeError, match="boolean"):
        audit_core(
            np.zeros(tiny_world.num_nodes, dtype=np.int64),
            clean_estimates,
            tiny_core,
        )
    with pytest.raises(TypeError, match="world must be"):
        audit_core(object(), clean_estimates, tiny_core)


def test_empty_core_report(clean_estimates, tiny_world):
    report = audit_core(tiny_world, clean_estimates, np.empty(0, np.int64))
    assert isinstance(report, CoreAuditReport)
    assert report.clean
    assert report.core_size == 0
