"""Unit tests for the incremental graph builder."""

import pytest

from repro.graph import GraphBuilder


def test_add_nodes_and_edges():
    b = GraphBuilder()
    nodes = b.add_nodes(3)
    assert list(nodes) == [0, 1, 2]
    assert b.add_edge(0, 1)
    assert b.add_edge(1, 2)
    g = b.build()
    assert g.num_nodes == 3
    assert g.num_edges == 2


def test_self_link_ignored():
    b = GraphBuilder(2)
    assert not b.add_edge(1, 1)
    assert b.build().num_edges == 0


def test_duplicate_edge_ignored():
    b = GraphBuilder(2)
    assert b.add_edge(0, 1)
    assert not b.add_edge(0, 1)
    assert b.num_edges == 1


def test_add_edges_returns_new_count():
    b = GraphBuilder(3)
    added = b.add_edges([(0, 1), (0, 1), (1, 1), (1, 2)])
    assert added == 2


def test_add_bidirectional():
    b = GraphBuilder(2)
    assert b.add_bidirectional(0, 1) == 2
    assert b.add_bidirectional(0, 1) == 0
    g = b.build()
    assert g.has_edge(0, 1) and g.has_edge(1, 0)


def test_named_nodes():
    b = GraphBuilder()
    a = b.add_node("a.example.com")
    b.add_node("b.example.com")
    assert b.node_id("a.example.com") == a
    assert b.ensure_node("a.example.com") == a
    c = b.ensure_node("c.example.com")
    g = b.build()
    assert g.names[c] == "c.example.com"


def test_duplicate_name_rejected():
    b = GraphBuilder()
    b.add_node("x.com")
    with pytest.raises(ValueError):
        b.add_node("x.com")


def test_unknown_name_raises():
    b = GraphBuilder()
    with pytest.raises(KeyError):
        b.node_id("missing.com")


def test_edge_to_unregistered_node_rejected():
    b = GraphBuilder(1)
    with pytest.raises(IndexError):
        b.add_edge(0, 1)


def test_mixed_named_and_anonymous_nodes():
    b = GraphBuilder()
    named = b.add_node("named.com")
    anon = b.add_nodes(2)
    g = b.build()
    assert g.names[named] == "named.com"
    assert g.names[anon[0]] == f"node{anon[0]}"


def test_has_edge_with_and_without_tracking():
    b = GraphBuilder(3)
    b.add_edge(0, 1)
    assert b.has_edge(0, 1)
    b.disable_dedup_tracking()
    assert b.has_edge(0, 1)
    assert not b.has_edge(1, 2)
    # duplicates no longer filtered incrementally, but build() collapses
    b.add_edge(0, 1)
    assert b.build().num_edges == 1


def test_negative_counts_rejected():
    with pytest.raises(ValueError):
        GraphBuilder(-1)
    b = GraphBuilder()
    with pytest.raises(ValueError):
        b.add_nodes(-2)


def test_empty_build_rejected():
    from repro.errors import EmptyGraphError

    with pytest.raises(EmptyGraphError):
        GraphBuilder().build()
