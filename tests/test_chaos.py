"""Fault-injection (chaos) tests for the resilient runtime.

Every fault here is planted deterministically via ``repro.runtime.chaos``;
the suite asserts the *recovery paths* of the pipeline — checkpoint
resume, fallback escalation, lenient I/O, write retries — actually
recover, not just that the happy path works.
"""

import gzip
import os

import numpy as np
import pytest

from repro.errors import (
    GraphIOWarning,
    InjectedFault,
    TruncatedFileError,
)
from repro.graph import (
    WebGraph,
    read_edge_list,
    transition_matrix,
    write_edge_list,
)
from repro.core.solvers import solve
from repro.runtime import CheckpointManager
from repro.runtime import chaos
from repro.runtime.resilient import FallbackSolver, resilient_solve

TOL = 1e-10


@pytest.fixture()
def system():
    graph = WebGraph.from_edges(
        8,
        [
            (0, 1), (1, 2), (2, 0), (0, 3), (3, 4),
            (4, 5), (5, 0), (5, 6), (6, 7), (7, 0),
        ],
    )
    tt = transition_matrix(graph).T.tocsr()
    v = np.full(8, 1.0 / 8.0)
    return tt, v


@pytest.fixture()
def edge_graph():
    return WebGraph.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])


# ----------------------------------------------------------------------
# acceptance criterion 1: kill-and-resume
# ----------------------------------------------------------------------


def test_kill_and_resume_solve(tmp_path, system):
    """A checkpointed solve killed at iteration k resumes from the last
    snapshot (not iteration 0) and matches the uninterrupted answer."""
    tt, v = system
    ckpt_dir = tmp_path / "ckpt"
    uninterrupted = solve("jacobi", tt, v, tol=TOL)

    kill_at = 30
    with pytest.raises(InjectedFault):
        solve(
            "jacobi",
            tt,
            v,
            tol=TOL,
            checkpoint=ckpt_dir,
            checkpoint_every=10,
            callback=chaos.fault_at(kill_at),
        )
    # the crash left snapshots behind, none at-or-after the fault
    manager = CheckpointManager(ckpt_dir)
    restored = manager.load_latest()
    assert restored is not None
    assert 0 < restored.iteration < kill_at

    resumed = solve(
        "jacobi",
        tt,
        v,
        tol=TOL,
        checkpoint=ckpt_dir,
        checkpoint_every=10,
        resume=True,
    )
    assert resumed.converged
    # resumed run did NOT restart from iteration 0: it converges at the
    # same total iteration count as the uninterrupted run (the iterate
    # is memoryless, so the trajectory is identical)
    assert resumed.iterations == uninterrupted.iterations
    assert np.abs(resumed.scores - uninterrupted.scores).sum() <= TOL


def test_kill_and_resume_fallback_solver(tmp_path, system):
    """Same criterion through the FallbackSolver front-door, with the
    resume recorded in the RunReport."""
    tt, v = system
    ckpt_dir = tmp_path / "ckpt"
    baseline = resilient_solve(tt, v, tol=TOL)

    kill_at = 40
    with pytest.raises(InjectedFault):
        FallbackSolver(
            ("jacobi",), tol=TOL, checkpoint=ckpt_dir, checkpoint_every=10
        ).solve(tt, v, inject=chaos.fault_at(kill_at))

    solver = FallbackSolver(
        ("jacobi",), tol=TOL, checkpoint=ckpt_dir, checkpoint_every=10
    )
    resumed = solver.solve(tt, v, resume=True)
    assert resumed.converged
    assert resumed.report.resumed_from is not None
    assert 0 < resumed.report.resumed_from < kill_at
    assert np.abs(resumed.scores - baseline.scores).sum() <= TOL


def test_resume_refuses_checkpoint_from_other_problem(tmp_path, system):
    tt, v = system
    other_graph = WebGraph.from_edges(8, [(0, 1), (1, 0)])
    other_tt = transition_matrix(other_graph).T.tocsr()
    with pytest.raises(InjectedFault):
        solve(
            "jacobi",
            other_tt,
            v,
            tol=TOL,
            checkpoint=tmp_path,
            checkpoint_every=1,
            callback=chaos.fault_at(2),
        )
    from repro.errors import CheckpointError

    with pytest.raises(CheckpointError):
        solve("jacobi", tt, v, tol=TOL, checkpoint=tmp_path, resume=True)


# ----------------------------------------------------------------------
# acceptance criterion 2: NaN-poisoned run escalates the chain
# ----------------------------------------------------------------------


def test_nan_poison_escalates_chain(system):
    """A NaN-poisoned gauss_seidel attempt aborts and escalates down the
    chain; the final SolverResult is usable and the escalation is in
    the RunReport."""
    tt, v = system
    poison = chaos.nan_poison_at(5, fraction=0.5, methods=("gauss_seidel",))
    solver = FallbackSolver(
        ("gauss_seidel", "jacobi", "power", "direct"),
        tol=TOL,
        monitor_options={"check_every": 1},
    )
    result = solver.solve(tt, v, inject=poison)

    # usable result from a later method in the chain
    assert result.converged
    assert result.method != "gauss_seidel"
    assert np.all(np.isfinite(result.scores))
    clean = resilient_solve(tt, v, tol=TOL)
    assert np.abs(result.scores - clean.scores).sum() <= 10 * TOL

    # the escalation is recorded
    report = result.report
    assert report.outcome == "converged"
    assert report.escalations()[0] == "gauss_seidel"
    assert len(report.escalations()) >= 2
    first = report.attempts[0]
    assert first.method == "gauss_seidel"
    assert first.outcome == "aborted:nan"


def test_nan_poison_every_iterative_method_falls_through_to_direct(system):
    tt, v = system
    poison = chaos.nan_poison_at(3, fraction=1.0)  # poisons every method
    solver = FallbackSolver(
        ("gauss_seidel", "jacobi", "direct"),
        tol=TOL,
        monitor_options={"check_every": 1},
    )
    result = solver.solve(tt, v, inject=poison)
    assert result.converged
    assert result.method == "direct"
    outcomes = [a.outcome for a in result.report.attempts]
    assert outcomes == ["aborted:nan", "aborted:nan", "converged"]


def test_poisoned_iterate_is_never_checkpointed(tmp_path, system):
    """The monitor aborts before the checkpoint callback runs, so a
    poisoned iterate can never be snapshotted and later resumed."""
    tt, v = system
    poison = chaos.nan_poison_at(10, fraction=1.0, methods=("jacobi",))
    solver = FallbackSolver(
        ("jacobi", "direct"),
        tol=TOL,
        checkpoint=tmp_path,
        checkpoint_every=5,  # a snapshot is due exactly at iteration 10
        monitor_options={"check_every": 1},
    )
    result = solver.solve(tt, v, inject=poison)
    assert result.converged
    restored = CheckpointManager(tmp_path).load_latest()
    if restored is not None:  # snapshots before the poison are fine
        assert np.all(np.isfinite(restored.p))
        assert restored.iteration < 10


def test_injected_memoryerror_escalates(system):
    """fault_at fires at iteration 2 of *every* iterative attempt, so
    both iterative methods OOM and the chain lands on ``direct``
    (which has no iterations for the injector to hit)."""
    tt, v = system
    result = FallbackSolver(("gauss_seidel", "jacobi", "direct"), tol=TOL).solve(
        tt,
        v,
        inject=chaos.fault_at(2, exc_factory=lambda: MemoryError("boom")),
    )
    assert result.converged
    assert result.method == "direct"
    outcomes = [a.outcome for a in result.report.attempts]
    assert outcomes == ["error:MemoryError", "error:MemoryError", "converged"]


# ----------------------------------------------------------------------
# file-level chaos: corrupted edge files
# ----------------------------------------------------------------------


def test_truncated_gzip_raises_typed_error(tmp_path, edge_graph):
    path = tmp_path / "g.edges.gz"
    write_edge_list(edge_graph, path)
    chaos.corrupt_edge_file(path, "truncate-bytes", seed=1)
    with pytest.raises(TruncatedFileError):
        read_edge_list(path)
    # lenient mode must NOT mask truncation: the data is incomplete
    with pytest.raises(TruncatedFileError):
        read_edge_list(path, strict=False)


@pytest.mark.parametrize("kind", ["garbage-line", "bad-token", "out-of-range", "negative-id"])
def test_corruption_strict_raises_lenient_recovers(tmp_path, edge_graph, kind):
    path = tmp_path / "g.edges"
    write_edge_list(edge_graph, path)
    chaos.corrupt_edge_file(path, kind, seed=2)
    with pytest.raises(ValueError):
        read_edge_list(path)  # strict default
    with pytest.warns(GraphIOWarning):
        recovered = read_edge_list(path, strict=False)
    assert recovered.num_nodes == edge_graph.num_nodes
    # lenient recovery only ever drops lines, never invents edges
    assert set(recovered.edges()) <= set(edge_graph.edges())
    assert recovered.num_edges >= edge_graph.num_edges - 1


def test_duplicate_edge_lenient_dedupes(tmp_path, edge_graph):
    path = tmp_path / "g.edges"
    write_edge_list(edge_graph, path)
    chaos.corrupt_edge_file(path, "duplicate-edge", seed=3)
    with pytest.warns(GraphIOWarning) as record:
        recovered = read_edge_list(path, strict=False)
    assert recovered == edge_graph
    counts = record[0].message.counts
    assert counts.get("duplicate", 0) == 1


def test_drop_header_always_raises(tmp_path, edge_graph):
    path = tmp_path / "g.edges"
    write_edge_list(edge_graph, path)
    chaos.corrupt_edge_file(path, "drop-header", seed=4)
    with pytest.raises(ValueError):
        read_edge_list(path)
    with pytest.raises(ValueError):
        read_edge_list(path, strict=False)  # header damage is not recoverable


def test_corruption_is_deterministic(tmp_path, edge_graph):
    a, b = tmp_path / "a.edges", tmp_path / "b.edges"
    write_edge_list(edge_graph, a)
    write_edge_list(edge_graph, b)
    chaos.corrupt_edge_file(a, "bad-token", seed=7)
    chaos.corrupt_edge_file(b, "bad-token", seed=7)
    assert a.read_bytes() == b.read_bytes()


# ----------------------------------------------------------------------
# write-path chaos: transient filesystem failures are retried
# ----------------------------------------------------------------------


def test_edge_write_retries_transient_oserror(tmp_path, edge_graph, monkeypatch):
    import repro.graph.io as io_mod

    flaky = chaos.FlakyCalls(os.replace, fail_first=1, exc=OSError)
    monkeypatch.setattr(io_mod.os, "replace", flaky)
    path = tmp_path / "g.edges"
    write_edge_list(edge_graph, path)
    monkeypatch.undo()
    assert flaky.calls >= 2
    assert read_edge_list(path) == edge_graph


def test_checkpoint_write_retries_flaky_replace(tmp_path, system, monkeypatch):
    import repro.runtime.checkpoint as ckpt_mod

    tt, v = system
    flaky = chaos.FlakyCalls(os.replace, plan={1: OSError, 3: OSError})
    monkeypatch.setattr(ckpt_mod.os, "replace", flaky)
    solver = FallbackSolver(
        ("jacobi",),
        tol=TOL,
        checkpoint=CheckpointManager(
            tmp_path, every=20, backoff=0.0, sleep=lambda _: None
        ),
    )
    result = solver.solve(tt, v)
    monkeypatch.undo()
    assert result.converged
    assert result.report.checkpoints_written > 0
    restored = CheckpointManager(tmp_path).load_latest()
    assert restored is not None


# ----------------------------------------------------------------------
# budget chaos: runs that would never finish degrade, never hang/raise
# ----------------------------------------------------------------------


def test_time_budget_degrades_to_best_effort(system):
    tt, v = system
    ticks = iter(float(i) * 0.5 for i in range(100_000))
    result = FallbackSolver(
        ("jacobi", "gauss_seidel"),
        tol=1e-16,  # unreachable
        time_budget=3.0,
        clock=lambda: next(ticks),
    ).solve(tt, v)
    assert not result.converged
    assert result.report.outcome == "best-effort"
    assert np.all(np.isfinite(result.scores))
    assert result.report.attempts[0].outcome == "aborted:time-budget"


def test_flaky_open_scripts_failures(tmp_path):
    target = tmp_path / "x.txt"
    target.write_text("payload")
    opener = chaos.flaky_open(fail_first=2, exc=OSError)
    with pytest.raises(OSError):
        opener(target)
    with pytest.raises(OSError):
        opener(target)
    with opener(target) as fh:
        assert fh.read() == "payload"


# ----------------------------------------------------------------------
# telemetry under chaos: recovery paths leave an assertable event trail
# ----------------------------------------------------------------------


def test_tracer_records_escalations_in_chain_order(telemetry, system):
    """Under a deterministic NaN fault the tracer records the full
    escalation walk down the chain, in order, matching the RunReport."""
    tt, v = system
    poison = chaos.nan_poison_at(3, fraction=1.0)  # poisons every method
    solver = FallbackSolver(
        ("gauss_seidel", "jacobi", "direct"),
        tol=TOL,
        monitor_options={"check_every": 1},
    )
    result = solver.solve(tt, v, inject=poison)
    assert result.method == "direct"

    sink = telemetry.sink
    escalations = sink.named("solver.escalation")
    assert [(e.attrs["from"], e.attrs["to"]) for e in escalations] == [
        ("gauss_seidel", "jacobi"),
        ("jacobi", "direct"),
    ]
    # attempt events mirror the report, in the same order
    attempts = sink.named("solver.attempt")
    assert [e.attrs["method"] for e in attempts] == [
        a.method for a in result.report.attempts
    ]
    assert [e.attrs["outcome"] for e in attempts] == [
        "aborted:nan",
        "aborted:nan",
        "converged",
    ]
    # interleaving: each escalation event sits between the failed
    # attempt and the next method's attempt
    stream = [
        (e.name, e.attrs.get("method") or e.attrs.get("to"))
        for e in sink.events
        if e.name in ("solver.attempt", "solver.escalation")
    ]
    assert stream == [
        ("solver.attempt", "gauss_seidel"),
        ("solver.escalation", "jacobi"),
        ("solver.attempt", "jacobi"),
        ("solver.escalation", "direct"),
        ("solver.attempt", "direct"),
    ]


def test_tracer_records_retries_under_flaky_checkpoint_writes(
    telemetry, tmp_path, system, monkeypatch
):
    """The scripted flaky os.replace plan {1: OSError, 3: OSError}
    surfaces as exactly two retry events, in write order."""
    import repro.runtime.checkpoint as ckpt_mod

    tt, v = system
    flaky = chaos.FlakyCalls(os.replace, plan={1: OSError, 3: OSError})
    monkeypatch.setattr(ckpt_mod.os, "replace", flaky)
    solver = FallbackSolver(
        ("jacobi",),
        tol=TOL,
        checkpoint=CheckpointManager(
            tmp_path, every=20, backoff=0.0, sleep=lambda _: None
        ),
    )
    result = solver.solve(tt, v)
    monkeypatch.undo()
    assert result.converged

    sink = telemetry.sink
    retries = sink.named("retry.attempt")
    assert len(retries) == 2
    assert all(e.attrs["error"] == "OSError" for e in retries)
    # both failures were first attempts of their respective writes
    assert [e.attrs["attempt"] for e in retries] == [1, 1]
    writes = sink.named("checkpoint.write")
    assert len(writes) == result.report.checkpoints_written
    assert telemetry.metrics.value("retry.attempts") == 2
    # ordering: a retry always precedes the successful write it rescued
    kinds = [
        e.name for e in sink.events if e.name in ("retry.attempt", "checkpoint.write")
    ]
    assert kinds[0] == "retry.attempt"
    assert kinds.count("checkpoint.write") == len(writes)


def test_budget_exhaustion_is_visible_on_the_span(telemetry, system):
    tt, v = system
    ticks = iter(float(i) * 0.5 for i in range(100_000))
    FallbackSolver(
        ("jacobi", "gauss_seidel"),
        tol=1e-16,  # unreachable
        time_budget=3.0,
        clock=lambda: next(ticks),
    ).solve(tt, v)
    end = telemetry.sink.named("fallback-solve", "span_end")[0]
    assert end.attrs["outcome"] == "best-effort"
    attempts = telemetry.sink.named("solver.attempt")
    assert attempts[0].attrs["outcome"] == "aborted:time-budget"
