"""End-to-end tests of the ``repro-spam`` command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.graph import read_graph_bundle, read_host_list, read_scores


@pytest.fixture(scope="module")
def world_dir(tmp_path_factory):
    """A generated world bundle shared by the CLI tests."""
    out = tmp_path_factory.mktemp("world")
    code = main(
        ["generate", "--scale", "small", "--seed", "3", "--out", str(out)]
    )
    assert code == 0
    return out


def test_generate_writes_bundle(world_dir):
    graph, labels, metadata = read_graph_bundle(world_dir)
    assert graph.num_nodes > 1_000
    assert labels is not None and "spam" in labels.values()
    assert metadata["scale"] == "small"
    core = read_host_list(world_dir / "core.hosts")
    assert len(core) > 50
    # core host names resolve back to graph nodes
    assert set(core) <= set(graph.names)


def test_generate_deterministic(tmp_path):
    a = tmp_path / "a"
    b = tmp_path / "b"
    main(["generate", "--scale", "small", "--seed", "5", "--out", str(a)])
    main(["generate", "--scale", "small", "--seed", "5", "--out", str(b)])
    assert (a / "graph.edges").read_text() == (b / "graph.edges").read_text()
    assert (a / "core.hosts").read_text() == (b / "core.hosts").read_text()


def test_stats(world_dir, capsys):
    assert main(["stats", "--world", str(world_dir)]) == 0
    out = capsys.readouterr().out
    assert "hosts:" in out
    assert "labeled spam:" in out


def test_estimate_and_detect(world_dir, tmp_path, capsys):
    prefix = tmp_path / "scores" / "run1"
    code = main(
        [
            "estimate",
            "--world",
            str(world_dir),
            "--out-prefix",
            str(prefix),
        ]
    )
    assert code == 0
    relative = read_scores(f"{prefix}.relative.scores")
    pagerank_scores = read_scores(f"{prefix}.pagerank.scores")
    graph, labels, _ = read_graph_bundle(world_dir)
    assert len(relative) == graph.num_nodes
    assert relative.max() <= 1.0 + 1e-9
    assert pagerank_scores.sum() <= 1.0

    capsys.readouterr()
    code = main(
        [
            "detect",
            "--world",
            str(world_dir),
            "--scores-prefix",
            str(prefix),
            "--tau",
            "0.98",
            "--limit",
            "5",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "spam candidates at tau=0.98" in out
    assert "precision against stored labels" in out
    precision = float(out.strip().rsplit(" ", 1)[-1])
    assert precision > 0.4


def test_detect_respects_thresholds(world_dir, tmp_path, capsys):
    prefix = tmp_path / "s" / "r"
    main(
        ["estimate", "--world", str(world_dir), "--out-prefix", str(prefix)]
    )
    capsys.readouterr()
    main(
        [
            "detect",
            "--world",
            str(world_dir),
            "--scores-prefix",
            str(prefix),
            "--tau",
            "0.5",
            "--limit",
            "0",
        ]
    )
    loose = int(capsys.readouterr().out.split(" spam candidates")[0].split()[-1])
    main(
        [
            "detect",
            "--world",
            str(world_dir),
            "--scores-prefix",
            str(prefix),
            "--tau",
            "0.99",
            "--limit",
            "0",
        ]
    )
    strict = int(
        capsys.readouterr().out.split(" spam candidates")[0].split()[-1]
    )
    assert strict <= loose


def test_reproduce_single(capsys):
    assert main(["reproduce", "--experiment", "T1"]) == 0
    out = capsys.readouterr().out
    assert "[T1]" in out
    assert "9.33" in out


def test_reproduce_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["reproduce", "--experiment", "Z9"])


def test_unknown_scale():
    with pytest.raises(SystemExit):
        main(["generate", "--scale", "galactic", "--out", "/tmp/x"])


def test_parser_subcommands():
    parser = build_parser()
    args = parser.parse_args(
        ["estimate", "--world", "w", "--out-prefix", "p", "--gamma", "-1"]
    )
    assert args.gamma == -1  # unscaled-core escape hatch
    with pytest.raises(SystemExit):
        parser.parse_args(["frobnicate"])


def test_reproduce_report_output(tmp_path, capsys):
    out = tmp_path / "report.md"
    assert main(["reproduce", "--experiment", "F1", "--out", str(out)]) == 0
    text = out.read_text()
    assert text.startswith("# Reproduced experiments")
    assert "### F1" in text
    assert "| k |" in text


def test_detect_with_explanations(world_dir, tmp_path, capsys):
    prefix = tmp_path / "e" / "r"
    main(
        ["estimate", "--world", str(world_dir), "--out-prefix", str(prefix)]
    )
    capsys.readouterr()
    code = main(
        [
            "detect",
            "--world",
            str(world_dir),
            "--scores-prefix",
            str(prefix),
            "--tau",
            "0.9",
            "--limit",
            "3",
            "--explain",
            "2",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "review sheets" in out
    assert "core (known good):" in out


# ----------------------------------------------------------------------
# error dispatch: one-line stderr + distinct exit codes
# ----------------------------------------------------------------------


def test_missing_world_exits_with_data_code(tmp_path, capsys):
    from repro.cli import EXIT_DATA

    code = main(["stats", "--world", str(tmp_path / "nope")])
    assert code == EXIT_DATA
    err = capsys.readouterr().err
    assert err.startswith("repro-spam:")
    assert err.count("\n") == 1  # exactly one line, no traceback


def test_corrupt_world_exits_with_data_code(tmp_path, capsys):
    from repro.cli import EXIT_DATA

    out = tmp_path / "world"
    assert main(["generate", "--scale", "small", "--seed", "5", "--out", str(out)]) == 0
    capsys.readouterr()
    edges = out / "graph.edges"
    edges.write_text(edges.read_text() + "garbage line!\n")
    code = main(["stats", "--world", str(out)])
    assert code == EXIT_DATA
    assert "repro-spam:" in capsys.readouterr().err
    # --lenient recovers from the same damage
    with pytest.warns(Warning):
        assert main(["stats", "--world", str(out), "--lenient"]) == 0


def test_traceback_flag_reraises(tmp_path):
    with pytest.raises(FileNotFoundError):
        main(["--traceback", "stats", "--world", str(tmp_path / "nope")])


def test_resume_without_checkpoint_dir_is_usage_error(world_dir, tmp_path):
    with pytest.raises(SystemExit):
        main(
            [
                "estimate",
                "--world",
                str(world_dir),
                "--out-prefix",
                str(tmp_path / "x"),
                "--resume",
            ]
        )


def test_estimate_checkpoint_and_resume(world_dir, tmp_path, capsys):
    ckpt = tmp_path / "ckpt"
    prefix = tmp_path / "scores" / "run"
    args = [
        "estimate",
        "--world",
        str(world_dir),
        "--out-prefix",
        str(prefix),
        "--checkpoint-dir",
        str(ckpt),
        "--checkpoint-every",
        "20",
    ]
    assert main(args) == 0
    capsys.readouterr()
    # labeled per-solve subdirectories with atomic snapshots
    snaps = list(ckpt.glob("*/ckpt-*.npz"))
    assert snaps
    assert {p.parent.name for p in snaps} <= {"pagerank", "core"}

    assert main(args + ["--resume"]) == 0
    out = capsys.readouterr().out
    assert "resumed from checkpoint at iteration" in out
    # resumed output matches the from-scratch scores
    baseline = read_scores(f"{prefix}.relative.scores")
    assert baseline.size > 0


def test_estimate_time_budget_degrades_with_exit_code(world_dir, tmp_path, capsys):
    from repro.cli import EXIT_CONVERGENCE

    prefix = tmp_path / "s" / "budget"
    code = main(
        [
            "estimate",
            "--world",
            str(world_dir),
            "--out-prefix",
            str(prefix),
            "--time-budget",
            "1e-6",
        ]
    )
    assert code == EXIT_CONVERGENCE
    captured = capsys.readouterr()
    assert "did not converge" in captured.err
    # best-effort score files are still written
    assert read_scores(f"{prefix}.relative.scores").size > 0


def test_estimate_convergence_failure_exit_code(world_dir, tmp_path, capsys):
    """Without a runtime policy, check=True maps exhaustion to exit 4."""
    from repro.cli import EXIT_CONVERGENCE
    from repro.core.solvers import SolverResult
    import repro.core.mass as mass_mod
    from repro.errors import ConvergenceError

    def fail(*a, **k):
        raise ConvergenceError("injected non-convergence", result=None)

    original = mass_mod.estimate_spam_mass
    import repro.cli as cli_mod

    cli_mod_orig = cli_mod.estimate_spam_mass
    cli_mod.estimate_spam_mass = fail
    try:
        code = main(
            [
                "estimate",
                "--world",
                str(world_dir),
                "--out-prefix",
                str(tmp_path / "x"),
            ]
        )
    finally:
        cli_mod.estimate_spam_mass = cli_mod_orig
        mass_mod.estimate_spam_mass = original
    assert code == EXIT_CONVERGENCE
    assert "did not converge" in capsys.readouterr().err


def test_exit_code_constants_are_distinct():
    from repro.cli import (
        EXIT_CONVERGENCE,
        EXIT_DATA,
        EXIT_ERROR,
        EXIT_INTERRUPTED,
        EXIT_OK,
        EXIT_USAGE,
    )

    codes = [
        EXIT_OK,
        EXIT_ERROR,
        EXIT_USAGE,
        EXIT_DATA,
        EXIT_CONVERGENCE,
        EXIT_INTERRUPTED,
    ]
    assert len(set(codes)) == len(codes)
    assert EXIT_OK == 0 and all(c != 0 for c in codes[1:])


# ----------------------------------------------------------------------
# perf engine flags
# ----------------------------------------------------------------------


def test_estimate_engine_flags_agree(world_dir, tmp_path, capsys):
    """--engine batched and --engine legacy write the same scores."""
    batched = tmp_path / "b" / "r"
    legacy = tmp_path / "l" / "r"
    assert (
        main(
            [
                "estimate",
                "--world",
                str(world_dir),
                "--out-prefix",
                str(batched),
                "--engine",
                "batched",
                "--cache-size",
                "2",
            ]
        )
        == 0
    )
    assert (
        main(
            [
                "estimate",
                "--world",
                str(world_dir),
                "--out-prefix",
                str(legacy),
                "--engine",
                "legacy",
            ]
        )
        == 0
    )
    capsys.readouterr()
    for suffix in ("pagerank", "core", "relative"):
        a = read_scores(f"{batched}.{suffix}.scores")
        b = read_scores(f"{legacy}.{suffix}.scores")
        assert abs(a - b).sum() < 1e-8


def test_estimate_montecarlo_cross_check(world_dir, tmp_path, capsys):
    code = main(
        [
            "estimate",
            "--world",
            str(world_dir),
            "--out-prefix",
            str(tmp_path / "mc" / "r"),
            "--mc-walks",
            "5000",
            "--workers",
            "1",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Monte-Carlo cross-check" in out
    assert "L1 deviation" in out


def test_estimate_invalid_cache_size_is_usage_error(
    world_dir, tmp_path, capsys
):
    # validated at argparse level since the incremental-engine PR:
    # non-positive numeric flags are usage errors (exit 2), caught
    # before any file or solver work starts
    with pytest.raises(SystemExit) as excinfo:
        main(
            [
                "estimate",
                "--world",
                str(world_dir),
                "--out-prefix",
                str(tmp_path / "x"),
                "--cache-size",
                "0",
            ]
        )
    assert excinfo.value.code == 2
    assert "must be a positive integer" in capsys.readouterr().err


def test_parser_engine_defaults():
    parser = build_parser()
    args = parser.parse_args(["estimate", "--world", "w", "--out-prefix", "p"])
    assert args.engine == "batched"
    assert args.cache_size == 8
    assert args.workers is None
    assert args.mc_walks == 0
    rep = parser.parse_args(["reproduce", "--experiment", "T1"])
    assert rep.cache_size == 8
    assert rep.workers is None


def test_precision_autoselect_respects_threshold(
    world_dir, tmp_path, capsys, monkeypatch
):
    """Above the node threshold the auto default flips to 'adaptive';
    the numbers stay within solver tolerance of plain float64."""
    import repro.cli as cli

    code = main(
        ["estimate", "--world", str(world_dir),
         "--out-prefix", str(tmp_path / "f64")]
    )
    assert code == 0
    assert "precision: float64 (auto:" in capsys.readouterr().out

    monkeypatch.setattr(cli, "AUTO_PRECISION_NODES", 10)
    code = main(
        ["estimate", "--world", str(world_dir),
         "--out-prefix", str(tmp_path / "adp")]
    )
    assert code == 0
    assert "precision: adaptive (auto:" in capsys.readouterr().out

    # an explicit flag beats the (monkeypatched) auto rule
    code = main(
        ["estimate", "--world", str(world_dir),
         "--out-prefix", str(tmp_path / "exp"),
         "--precision", "float64"]
    )
    assert code == 0
    assert "precision: float64 (explicit --precision)" in (
        capsys.readouterr().out
    )

    f64 = read_scores(f"{tmp_path / 'f64'}.pagerank.scores")
    adp = read_scores(f"{tmp_path / 'adp'}.pagerank.scores")
    exp = read_scores(f"{tmp_path / 'exp'}.pagerank.scores")
    assert np.array_equal(f64, exp)
    assert np.abs(f64 - adp).max() <= 1e-9
