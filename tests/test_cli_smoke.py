"""Subprocess smoke matrix for the CLI.

Unlike ``test_cli.py`` (which drives ``main()`` in-process), these tests
spawn real interpreter subprocesses — exercising the console entry
point, argument plumbing, exit codes and on-disk outputs exactly as an
operator would.  The matrix crosses the small preset with both engines
and with tracing on/off; each cell asserts exit 0, valid JSON outputs
and a parseable trace.
"""

import json
import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

REPO_SRC = Path(__file__).resolve().parent.parent / "src"


def run_cli(*argv, cwd):
    """Run ``repro-spam`` in a subprocess; returns CompletedProcess."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )


@pytest.fixture(scope="module")
def small_world_dir(tmp_path_factory):
    """A persisted small world, generated once by a real subprocess."""
    out = tmp_path_factory.mktemp("smoke") / "world"
    proc = run_cli(
        "generate",
        "--scale", "small",
        "--out", str(out),
        cwd=out.parent,
    )
    assert proc.returncode == 0, proc.stderr
    assert (out / "core.hosts").exists()
    return out


@pytest.mark.parametrize("engine", ["batched", "legacy"])
@pytest.mark.parametrize("traced", [False, True], ids=["untraced", "traced"])
def test_estimate_matrix(small_world_dir, tmp_path, engine, traced):
    """{small} x {--engine batched,legacy} x {--trace-out on,off}."""
    prefix = tmp_path / "est" / "run"
    trace = tmp_path / "run.trace.jsonl"
    metrics = tmp_path / "run.metrics.json"
    argv = []
    if traced:
        argv += ["--trace-out", str(trace), "--metrics-out", str(metrics)]
    argv += [
        "estimate",
        "--world", str(small_world_dir),
        "--out-prefix", str(prefix),
        "--engine", engine,
    ]
    proc = run_cli(*argv, cwd=tmp_path)
    assert proc.returncode == 0, proc.stderr
    assert "estimated mass" in proc.stdout

    # score outputs exist for every cell
    for kind in ("pagerank", "core", "relative"):
        assert Path(f"{prefix}.{kind}.scores").exists()

    if not traced:
        assert not trace.exists()
        assert not metrics.exists()
        return

    # every trace line is valid JSON with the event schema
    lines = trace.read_text().splitlines()
    assert lines
    records = [json.loads(line) for line in lines]
    for record in records:
        assert set(record) == {"ts", "kind", "name", "attrs"}
        assert record["kind"] in ("span_start", "span_end", "event")
    names = {r["name"] for r in records}
    assert "cli:estimate" in names
    assert "mass-estimate" in names
    if engine == "batched":
        assert "solve:batch" in names
    else:
        assert {"solve:p", "solve:p_prime"} <= names
        assert "solve:batch" not in names

    # the manifest pairs with the trace and is internally consistent
    manifest = json.loads(
        trace.with_suffix(".manifest.json").read_text()
    )
    assert manifest["exit_code"] == 0
    assert manifest["events_total"] == len(records)
    assert sum(manifest["events_by_kind"].values()) == len(records)
    assert manifest["trace_file"] == str(trace)

    # the metrics snapshot is valid JSON with typed entries
    snapshot = json.loads(metrics.read_text())
    assert "span.duration.cli:estimate" in snapshot
    for entry in snapshot.values():
        assert entry["type"] in ("counter", "gauge", "histogram")


def test_no_telemetry_flag_suppresses_outputs(small_world_dir, tmp_path):
    trace = tmp_path / "run.trace.jsonl"
    proc = run_cli(
        "--trace-out", str(trace),
        "--no-telemetry",
        "estimate",
        "--world", str(small_world_dir),
        "--out-prefix", str(tmp_path / "run"),
        cwd=tmp_path,
    )
    assert proc.returncode == 0, proc.stderr
    assert not trace.exists()


@pytest.mark.parametrize(
    "flag,value",
    [
        ("--cache-size", "0"),
        ("--workers", "0"),
        ("--mc-walks", "0"),
        ("--mc-walks", "-1"),
        ("--checkpoint-every", "0"),
    ],
)
def test_estimate_rejects_non_positive_numeric_flags(
    small_world_dir, tmp_path, flag, value
):
    """argparse-level validation: exit 2 before any work happens."""
    proc = run_cli(
        "estimate",
        "--world", str(small_world_dir),
        "--out-prefix", str(tmp_path / "run"),
        flag, value,
        cwd=tmp_path,
    )
    assert proc.returncode == 2
    assert "must be a positive integer" in proc.stderr
    # rejected at parse time: no score files were produced
    assert not list(tmp_path.glob("run.*"))


def test_update_round_trip_matches_cold_estimate(small_world_dir, tmp_path):
    """cold estimate w/ checkpoint → delta → update → detect.

    The updated scores and the detector output must be identical to a
    cold estimate + detect on the mutated world — the ISSUE's
    acceptance round trip, through real subprocesses.
    """
    ckpt = tmp_path / "ckpt"
    cold_prefix = tmp_path / "cold"
    est = run_cli(
        "estimate",
        "--world", str(small_world_dir),
        "--out-prefix", str(cold_prefix),
        "--checkpoint-dir", str(ckpt),
        cwd=tmp_path,
    )
    assert est.returncode == 0, est.stderr
    assert (ckpt / "solution.npz").exists()

    # a small insertion-only churn among valid fresh edges
    import numpy as np

    from repro.graph import GraphDelta, write_delta
    from repro.graph.io import read_graph_bundle, read_scores

    graph, _, _ = read_graph_bundle(small_world_dir)
    out_degree = np.diff(graph.indptr)
    silent = np.flatnonzero(out_degree == 0)
    rng = np.random.default_rng(3)
    sources = rng.choice(silent, size=5, replace=False)
    insertions = []
    for src in sources:
        pool = silent[silent != src]
        insertions.extend(
            (int(src), int(t))
            for t in rng.choice(pool, size=4, replace=False)
        )
    delta_file = tmp_path / "crawl.delta"
    write_delta(GraphDelta(insertions=insertions), delta_file)

    upd_prefix = tmp_path / "upd"
    mutated_dir = tmp_path / "world-mutated"
    upd = run_cli(
        "update",
        "--world", str(small_world_dir),
        "--delta", str(delta_file),
        "--checkpoint-dir", str(ckpt),
        "--out-prefix", str(upd_prefix),
        "--write-world", str(mutated_dir),
        cwd=tmp_path,
    )
    assert upd.returncode == 0, upd.stderr

    coldmut_prefix = tmp_path / "coldmut"
    est2 = run_cli(
        "estimate",
        "--world", str(mutated_dir),
        "--out-prefix", str(coldmut_prefix),
        cwd=tmp_path,
    )
    assert est2.returncode == 0, est2.stderr

    for kind in ("pagerank", "core"):
        updated = read_scores(f"{upd_prefix}.{kind}.scores")
        cold = read_scores(f"{coldmut_prefix}.{kind}.scores")
        assert np.abs(updated - cold).max() <= 1e-11, kind

    det_upd = run_cli(
        "detect",
        "--world", str(mutated_dir),
        "--scores-prefix", str(upd_prefix),
        cwd=tmp_path,
    )
    det_cold = run_cli(
        "detect",
        "--world", str(mutated_dir),
        "--scores-prefix", str(coldmut_prefix),
        cwd=tmp_path,
    )
    assert det_upd.returncode == det_cold.returncode == 0
    # identical candidates, order, masses and summary; the displayed
    # scaled-PageRank value is rounded to one decimal and a score
    # sitting within 10*tol of a .x5 boundary may print differently,
    # so that single cosmetic token is normalized away
    normalize = lambda s: re.sub(r"p=\d+\.\d+", "p=#", s)  # noqa: E731
    assert normalize(det_upd.stdout) == normalize(det_cold.stdout)

    # the checkpoint advanced to the mutated graph: updating the *old*
    # world against it now fails the fingerprint guard with exit 3
    stale = run_cli(
        "update",
        "--world", str(small_world_dir),
        "--delta", str(delta_file),
        "--checkpoint-dir", str(ckpt),
        "--out-prefix", str(tmp_path / "stale"),
        cwd=tmp_path,
    )
    assert stale.returncode == 3
    assert "fingerprint" in stale.stderr


def test_update_chained_deltas_and_precision(small_world_dir, tmp_path):
    """Repeated ``--delta`` + ``--batch-deltas`` + ``--precision``.

    Two chained delta files applied in one invocation (coalesced into
    one batch by default, split with ``--batch-deltas 1``) must land on
    the same scores as a cold adaptive-precision estimate of the final
    mutated world, within ``10 * tol``.
    """
    import numpy as np

    from repro.graph import GraphDelta, write_delta
    from repro.graph.io import read_graph_bundle, read_scores

    ckpt = tmp_path / "ckpt"
    est = run_cli(
        "estimate",
        "--world", str(small_world_dir),
        "--out-prefix", str(tmp_path / "cold"),
        "--checkpoint-dir", str(ckpt),
        cwd=tmp_path,
    )
    assert est.returncode == 0, est.stderr

    # two chained insertion deltas over disjoint silent sources
    graph, _, _ = read_graph_bundle(small_world_dir)
    silent = np.flatnonzero(np.diff(graph.indptr) == 0)
    rng = np.random.default_rng(8)
    picks = rng.choice(silent, size=6, replace=False)
    delta_files = []
    for idx, chunk in enumerate((picks[:3], picks[3:])):
        insertions = []
        for src in chunk:
            pool = silent[silent != src]
            insertions.extend(
                (int(src), int(t))
                for t in rng.choice(pool, size=4, replace=False)
            )
        path = tmp_path / f"crawl-{idx}.delta"
        write_delta(GraphDelta(insertions=insertions), path)
        delta_files.append(path)

    mutated_dir = tmp_path / "world-mutated"
    upd = run_cli(
        "update",
        "--world", str(small_world_dir),
        "--delta", str(delta_files[0]),
        "--delta", str(delta_files[1]),
        "--batch-deltas", "1",
        "--precision", "adaptive",
        "--checkpoint-dir", str(ckpt),
        "--out-prefix", str(tmp_path / "upd"),
        "--write-world", str(mutated_dir),
        cwd=tmp_path,
    )
    assert upd.returncode == 0, upd.stderr
    assert "2 file(s) in 2 batch(es)" in upd.stdout

    est2 = run_cli(
        "estimate",
        "--world", str(mutated_dir),
        "--precision", "adaptive",
        "--out-prefix", str(tmp_path / "coldmut"),
        cwd=tmp_path,
    )
    assert est2.returncode == 0, est2.stderr
    for kind in ("pagerank", "core"):
        updated = read_scores(f"{tmp_path}/upd.{kind}.scores")
        cold = read_scores(f"{tmp_path}/coldmut.{kind}.scores")
        assert np.abs(updated - cold).max() <= 1e-11, kind


@pytest.mark.parametrize(
    "flag,value,message",
    [
        ("--batch-deltas", "0", "must be a positive integer"),
        ("--precision", "float32", "invalid choice"),
    ],
)
def test_update_rejects_bad_coalescing_flags(
    tmp_path, flag, value, message
):
    proc = run_cli(
        "update",
        "--world", str(tmp_path / "none"),
        "--delta", str(tmp_path / "none.delta"),
        "--checkpoint-dir", str(tmp_path / "none-ckpt"),
        "--out-prefix", str(tmp_path / "out"),
        flag, value,
        cwd=tmp_path,
    )
    assert proc.returncode == 2
    assert message in proc.stderr


def test_detect_smoke_over_traced_estimate(small_world_dir, tmp_path):
    """estimate → detect round trip through real subprocesses."""
    prefix = tmp_path / "run"
    est = run_cli(
        "estimate",
        "--world", str(small_world_dir),
        "--out-prefix", str(prefix),
        cwd=tmp_path,
    )
    assert est.returncode == 0, est.stderr
    det = run_cli(
        "--trace-out", str(tmp_path / "detect.trace.jsonl"),
        "detect",
        "--world", str(small_world_dir),
        "--scores-prefix", str(prefix),
        cwd=tmp_path,
    )
    assert det.returncode == 0, det.stderr
    assert "spam candidates" in det.stdout
    records = [
        json.loads(line)
        for line in (tmp_path / "detect.trace.jsonl").read_text().splitlines()
    ]
    assert {r["name"] for r in records} >= {"cli:detect"}


@pytest.mark.parametrize(
    "flag,value,message",
    [
        ("--max-task-retries", "-1", "must be a non-negative integer"),
        ("--max-task-retries", "x", "is not an integer"),
        ("--task-timeout", "0", "must be a positive number"),
        ("--task-timeout", "-3.5", "must be a positive number"),
        ("--task-timeout", "nan", "must be a positive number"),
    ],
)
def test_estimate_rejects_bad_supervision_flags(
    small_world_dir, tmp_path, flag, value, message
):
    """Supervision knobs share the PR-4 validation conventions: exit 2
    at parse time, nothing written."""
    proc = run_cli(
        "estimate",
        "--world", str(small_world_dir),
        "--out-prefix", str(tmp_path / "run"),
        flag, value,
        cwd=tmp_path,
    )
    assert proc.returncode == 2
    assert message in proc.stderr
    assert not list(tmp_path.glob("run.*"))


def test_estimate_supervised_mc_matches_unsupervised(
    small_world_dir, tmp_path
):
    """The supervision flags change resilience, never numbers: the MC
    cross-check line (and the score files) are identical with and
    without them."""
    plain = run_cli(
        "estimate",
        "--world", str(small_world_dir),
        "--out-prefix", str(tmp_path / "plain"),
        "--mc-walks", "300",
        cwd=tmp_path,
    )
    assert plain.returncode == 0, plain.stderr
    supervised = run_cli(
        "estimate",
        "--world", str(small_world_dir),
        "--out-prefix", str(tmp_path / "sup"),
        "--mc-walks", "300",
        "--workers", "2",
        "--max-task-retries", "3",
        "--task-timeout", "120",
        cwd=tmp_path,
    )
    assert supervised.returncode == 0, supervised.stderr
    dev = re.compile(r"L1 deviation from the linear PageRank (\S+)")
    assert dev.search(plain.stdout).group(1) == dev.search(
        supervised.stdout
    ).group(1)


def test_audit_core_round_trip(small_world_dir, tmp_path):
    """Clean core exits 0; a chaos-contaminated core exits 5, names the
    planted spam, and the repaired core audits clean again."""
    import numpy as np

    from repro.graph import read_graph_bundle, read_host_list, write_host_list
    from repro.runtime.chaos import contaminate_core

    clean = run_cli(
        "audit-core", "--world", str(small_world_dir), cwd=tmp_path
    )
    assert clean.returncode == 0, clean.stderr
    assert "clean" in clean.stdout

    graph, labels, _ = read_graph_bundle(small_world_dir)
    lookup = {graph.name_of(i): i for i in range(graph.num_nodes)}
    core = np.asarray(
        [lookup[n] for n in read_host_list(small_world_dir / "core.hosts")],
        dtype=np.int64,
    )
    spam = np.asarray(
        sorted(n for n, lab in labels.items() if lab == "spam"),
        dtype=np.int64,
    )
    dirty = contaminate_core(core, spam, num=3, seed=0)
    dirty_path = tmp_path / "dirty.hosts"
    write_host_list([graph.name_of(int(n)) for n in dirty], dirty_path)

    repaired_path = tmp_path / "repaired.hosts"
    audit = run_cli(
        "audit-core",
        "--world", str(small_world_dir),
        "--core", str(dirty_path),
        "--repaired-core-out", str(repaired_path),
        cwd=tmp_path,
    )
    assert audit.returncode == 5, audit.stderr
    assert "3 of" in audit.stdout
    assert "spam-labeled" in audit.stdout

    reaudit = run_cli(
        "audit-core",
        "--world", str(small_world_dir),
        "--core", str(repaired_path),
        cwd=tmp_path,
    )
    assert reaudit.returncode == 0, reaudit.stderr
    assert "clean" in reaudit.stdout


@pytest.mark.parametrize(
    "flag,value,message",
    [
        ("--max-queue", "0", "must be a positive integer"),
        ("--serve-workers", "0", "must be a positive integer"),
        ("--max-staleness", "0", "must be a positive integer"),
        ("--max-requests", "0", "must be a positive integer"),
        ("--request-timeout", "0", "must be a positive number"),
        ("--task-timeout", "-3.5", "must be a positive number"),
        ("--task-timeout", "nan", "must be a positive number"),
        ("--max-task-retries", "-1", "must be a non-negative integer"),
        ("--replicas", "-1", "must be a non-negative integer"),
        ("--replicas", "two", "is not an integer"),
        ("--max-lag", "0", "must be a positive integer"),
        ("--replica-poll", "0", "must be a positive number"),
        ("--replica-poll", "-0.5", "must be a positive number"),
        ("--batch-deltas", "0", "must be a positive integer"),
        ("--batch-deltas", "-2", "must be a positive integer"),
        ("--precision", "float16", "invalid choice"),
    ],
)
def test_serve_rejects_bad_flags(tmp_path, flag, value, message):
    """`serve` shares the validation conventions: exit 2 at parse time,
    before the world or checkpoint paths are even touched."""
    proc = run_cli(
        "serve",
        "--world", str(tmp_path / "does-not-exist"),
        "--checkpoint-dir", str(tmp_path / "nor-this"),
        "--socket", str(tmp_path / "serve.sock"),
        flag, value,
        cwd=tmp_path,
    )
    assert proc.returncode == 2
    assert message in proc.stderr
    assert not (tmp_path / "serve.sock").exists()


def test_serve_explain_replica_requires_replicas(tmp_path):
    """Cross-flag validation: a pinned explain replica is meaningless
    without a read fleet — exit 2 before any path is touched."""
    proc = run_cli(
        "serve",
        "--world", str(tmp_path / "does-not-exist"),
        "--checkpoint-dir", str(tmp_path / "nor-this"),
        "--socket", str(tmp_path / "serve.sock"),
        "--explain-replica",
        cwd=tmp_path,
    )
    assert proc.returncode == 2
    assert "--explain-replica requires --replicas >= 1" in proc.stderr
    assert not (tmp_path / "serve.sock").exists()


def _checkpointed_estimate(small_world_dir, tmp_path):
    """estimate --checkpoint-dir + a valid fresh-edge delta file."""
    import numpy as np

    from repro.graph import GraphDelta, write_delta
    from repro.graph.io import read_graph_bundle

    ckpt = tmp_path / "ckpt"
    est = run_cli(
        "estimate",
        "--world", str(small_world_dir),
        "--out-prefix", str(tmp_path / "cold"),
        "--checkpoint-dir", str(ckpt),
        cwd=tmp_path,
    )
    assert est.returncode == 0, est.stderr

    graph, _, _ = read_graph_bundle(small_world_dir)
    out_degree = np.diff(graph.indptr)
    silent = np.flatnonzero(out_degree == 0)
    rng = np.random.default_rng(11)
    sources = rng.choice(silent, size=4, replace=False)
    insertions = []
    for src in sources:
        pool = silent[silent != src]
        insertions.extend(
            (int(src), int(t))
            for t in rng.choice(pool, size=3, replace=False)
        )
    delta_file = tmp_path / "crawl.delta"
    write_delta(GraphDelta(insertions=insertions), delta_file)
    return ckpt, delta_file


@pytest.mark.parametrize(
    "extra",
    [
        ["--task-timeout", "120"],
        ["--max-task-retries", "2", "--task-timeout", "120"],
        ["--no-degrade"],
    ],
    ids=["timeout", "retries+timeout", "no-degrade"],
)
def test_update_supervision_flags_change_nothing_numeric(
    small_world_dir, tmp_path, extra
):
    """The guarded update path produces byte-identical scores to the
    unflagged one — supervision changes resilience, never numbers."""
    import shutil

    import numpy as np

    from repro.graph.io import read_scores

    ckpt, delta_file = _checkpointed_estimate(small_world_dir, tmp_path)

    def _run_update(name, argv):
        # updates advance the checkpoint fingerprint, so each variant
        # gets its own copy
        own_ckpt = tmp_path / f"ckpt-{name}"
        shutil.copytree(ckpt, own_ckpt)
        proc = run_cli(
            "update",
            "--world", str(small_world_dir),
            "--delta", str(delta_file),
            "--checkpoint-dir", str(own_ckpt),
            "--out-prefix", str(tmp_path / name),
            *argv,
            cwd=tmp_path,
        )
        assert proc.returncode == 0, proc.stderr
        return proc

    _run_update("plain", [])
    _run_update("guarded", extra)
    for kind in ("pagerank", "core", "relative"):
        plain = read_scores(f"{tmp_path / 'plain'}.{kind}.scores")
        guarded = read_scores(f"{tmp_path / 'guarded'}.{kind}.scores")
        assert np.array_equal(plain, guarded), kind


def test_serve_subprocess_round_trip(small_world_dir, tmp_path):
    """`repro-spam serve` end to end: load, answer over the socket,
    self-drain at --max-requests, exit 0 with the drain summary."""
    import subprocess as sp
    import time

    from repro.graph import read_host_list
    from repro.serve import ServeClient

    ckpt, _ = _checkpointed_estimate(small_world_dir, tmp_path)
    sock = tmp_path / "serve.sock"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC) + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    proc = sp.Popen(
        [
            sys.executable, "-m", "repro.cli",
            "serve",
            "--world", str(small_world_dir),
            "--checkpoint-dir", str(ckpt),
            "--socket", str(sock),
            "--max-requests", "3",
        ],
        cwd=tmp_path,
        env=env,
        stdout=sp.PIPE,
        stderr=sp.PIPE,
        text=True,
    )
    try:
        deadline = time.monotonic() + 120
        while not sock.exists() and time.monotonic() < deadline:
            assert proc.poll() is None, proc.communicate()[1]
            time.sleep(0.05)
        assert sock.exists(), "server never bound its socket"
        host = read_host_list(small_world_dir / "core.hosts")[0]
        with ServeClient(sock) as client:
            health = client.health()
            assert health["ok"] is True and health["staleness"] == 0
            score = client.score(host)
            assert score["ok"] is True and score["mode"] == "full"
            top = client.top(3, tau=0.0, rho=0.0)
            assert top["ok"] is True and len(top["candidates"]) == 3
        stdout, stderr = proc.communicate(timeout=120)
    except BaseException:
        proc.kill()
        raise
    assert proc.returncode == 0, stderr
    assert "serving" in stdout
    assert "drained after 3 requests" in stdout
    assert not sock.exists()


def test_serve_replicated_subprocess_round_trip(small_world_dir, tmp_path):
    """`serve --replicas 2 --explain-replica` end to end: reads carry
    replica attribution, explain pins to its dedicated replica, stats
    expose the replication block, and the ship directory materializes
    under the checkpoint."""
    import subprocess as sp
    import time

    from repro.graph import read_host_list
    from repro.serve import ServeClient

    ckpt, _ = _checkpointed_estimate(small_world_dir, tmp_path)
    sock = tmp_path / "serve.sock"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC) + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    proc = sp.Popen(
        [
            sys.executable, "-m", "repro.cli",
            "serve",
            "--world", str(small_world_dir),
            "--checkpoint-dir", str(ckpt),
            "--socket", str(sock),
            "--replicas", "2",
            "--explain-replica",
            "--max-requests", "4",
        ],
        cwd=tmp_path,
        env=env,
        stdout=sp.PIPE,
        stderr=sp.PIPE,
        text=True,
    )
    try:
        deadline = time.monotonic() + 120
        while not sock.exists() and time.monotonic() < deadline:
            assert proc.poll() is None, proc.communicate()[1]
            time.sleep(0.05)
        assert sock.exists(), "server never bound its socket"
        host = read_host_list(small_world_dir / "core.hosts")[0]
        with ServeClient(sock) as client:
            score = client.score(host)
            assert score["ok"] is True
            assert score["served_by"].startswith("replica-")
            assert score["served_by"] != "replica-explain"
            top = client.top(3, tau=0.0, rho=0.0)
            assert top["ok"] is True
            assert top["served_by"].startswith("replica-")
            exp = client.explain(host)
            assert exp["ok"] is True
            assert exp["served_by"] == "replica-explain"
            stats = client.stats()
            rep = stats["replication"]
            assert rep["writer"]["ships"] >= 1
            assert rep["writer"]["pending"] == 0
            assert rep["lag"] == 0
            assert len(rep["replicas"]) == 2
            assert rep["explain_replica"]["replica"] == "replica-explain"
        stdout, stderr = proc.communicate(timeout=120)
    except BaseException:
        proc.kill()
        raise
    assert proc.returncode == 0, stderr
    assert "2 replicas + explain shipping to" in stdout
    assert "drained after 4 requests" in stdout
    # the writer published its chain where the flag default says
    assert (ckpt / "ship" / "CURRENT").exists()
    assert not sock.exists()


def test_stream_synth_ingest_dlq_round_trip(small_world_dir, tmp_path):
    """`stream synth` → poison one line → `stream ingest --probe` →
    `stream dlq`: the full streaming surface through real
    subprocesses, with the malformed record quarantined and listed."""
    ckpt, _ = _checkpointed_estimate(small_world_dir, tmp_path)
    stream_file = tmp_path / "events.jsonl"
    syn = run_cli(
        "stream", "synth",
        "--world", str(small_world_dir),
        "--out", str(stream_file),
        "--seed", "3",
        "--events", "300",
        "--boosters", "10",
        "--stride", "3",
        cwd=tmp_path,
    )
    assert syn.returncode == 0, syn.stderr
    assert "scripted attacks" in syn.stdout
    sidecar = stream_file.with_name(stream_file.name + ".attacks.json")
    assert sidecar.exists()

    # a torn record on the wire: ingest must quarantine, not die
    with open(stream_file, "a", encoding="utf-8") as fh:
        fh.write('{"id": 90000, "ts":\n')

    ing = run_cli(
        "stream", "ingest",
        "--world", str(small_world_dir),
        "--checkpoint-dir", str(ckpt),
        "--events", str(stream_file),
        "--rho", "1.5",
        "--tau", "0.9",
        "--probe",
        cwd=tmp_path,
    )
    assert ing.returncode == 0, ing.stderr
    assert "windows committed" in ing.stdout
    assert "1 malformed" in ing.stdout
    assert "detection latency" in ing.stdout
    assert "caught after" in ing.stdout

    dlq = run_cli(
        "stream", "dlq",
        "--dlq-dir", str(ckpt / "stream"),
        cwd=tmp_path,
    )
    assert dlq.returncode == 0, dlq.stderr
    assert "bad-json" in dlq.stdout

    # re-running the same ingest resumes at EOF: a machine-readable
    # no-op (same consumed count, no new windows)
    again = run_cli(
        "stream", "ingest",
        "--world", str(small_world_dir),
        "--checkpoint-dir", str(ckpt),
        "--events", str(stream_file),
        "--json",
        cwd=tmp_path,
    )
    assert again.returncode == 0, again.stderr
    payload = json.loads(again.stdout)
    assert payload["stats"]["events_consumed"] == 300
    assert payload["stats"]["buffered"] == 0


@pytest.mark.parametrize(
    "flag,value,message",
    [
        ("--window", "0", "must be a positive integer"),
        ("--window", "x", "is not an integer"),
        ("--max-lateness", "-1", "must be a non-negative integer"),
        ("--min-window", "0", "must be a positive integer"),
        ("--max-pending-windows", "0", "must be a positive integer"),
        ("--flood-threshold", "0", "must be a positive integer"),
        ("--apply-every", "0", "must be a positive integer"),
        ("--max-staleness", "0", "must be a positive integer"),
        ("--batch-deltas", "-1", "must be a positive integer"),
        ("--precision", "float16", "invalid choice"),
    ],
)
def test_stream_ingest_rejects_bad_flags(tmp_path, flag, value, message):
    """The stream family shares the validation conventions: exit 2 at
    parse time, before any path is touched."""
    proc = run_cli(
        "stream", "ingest",
        "--world", str(tmp_path / "does-not-exist"),
        "--checkpoint-dir", str(tmp_path / "nor-this"),
        "--events", str(tmp_path / "no-events.jsonl"),
        flag, value,
        cwd=tmp_path,
    )
    assert proc.returncode == 2
    assert message in proc.stderr
    assert not (tmp_path / "nor-this").exists()


@pytest.mark.parametrize(
    "argv,message",
    [
        (
            ["--window", "4", "--min-window", "8"],
            "--min-window must not exceed --window",
        ),
        (
            ["--apply-every", "8", "--max-pending-windows", "4"],
            "--apply-every must not exceed --max-pending-windows",
        ),
    ],
    ids=["min-window", "apply-every"],
)
def test_stream_ingest_cross_flag_validation(tmp_path, argv, message):
    """Individually-valid flags that contradict each other: exit 2
    with a named pair, before the world is even opened."""
    proc = run_cli(
        "stream", "ingest",
        "--world", str(tmp_path / "does-not-exist"),
        "--checkpoint-dir", str(tmp_path / "nor-this"),
        "--events", str(tmp_path / "no-events.jsonl"),
        *argv,
        cwd=tmp_path,
    )
    assert proc.returncode == 2
    assert message in proc.stderr


def test_stream_synth_rejects_unknown_attack(tmp_path):
    proc = run_cli(
        "stream", "synth",
        "--world", str(tmp_path / "does-not-exist"),
        "--out", str(tmp_path / "events.jsonl"),
        "--attacks", "dns-hijack",
        cwd=tmp_path,
    )
    assert proc.returncode == 2
    assert "unknown attack kind" in proc.stderr
    assert not (tmp_path / "events.jsonl").exists()


def test_stream_ingest_probe_requires_sidecar(tmp_path):
    """--probe without the ground-truth sidecar is a usage error,
    caught before the daemon loads anything."""
    events = tmp_path / "events.jsonl"
    events.write_text(
        '{"id": 0, "ts": 0, "op": "+", "src": 0, "dst": 1}\n'
    )
    proc = run_cli(
        "stream", "ingest",
        "--world", str(tmp_path / "does-not-exist"),
        "--checkpoint-dir", str(tmp_path / "nor-this"),
        "--events", str(events),
        "--probe",
        cwd=tmp_path,
    )
    assert proc.returncode == 2
    assert "attack sidecar" in proc.stderr


def test_estimate_precision_autoselect_logs_choice(
    small_world_dir, tmp_path
):
    """Satellite contract: the auto default prints the decision, an
    explicit flag prints the override."""
    auto = run_cli(
        "estimate",
        "--world", str(small_world_dir),
        "--out-prefix", str(tmp_path / "auto"),
        cwd=tmp_path,
    )
    assert auto.returncode == 0, auto.stderr
    assert re.search(
        r"precision: float64 \(auto: [\d,]+ nodes < [\d,]+\)", auto.stdout
    )
    explicit = run_cli(
        "estimate",
        "--world", str(small_world_dir),
        "--out-prefix", str(tmp_path / "explicit"),
        "--precision", "adaptive",
        cwd=tmp_path,
    )
    assert explicit.returncode == 0, explicit.stderr
    assert "precision: adaptive (explicit --precision)" in explicit.stdout
