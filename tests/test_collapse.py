"""Tests for page→host collapsing and the networkx bridge."""

import pytest

from repro.graph import (
    WebGraph,
    collapse_by_key,
    collapse_page_graph,
    from_networkx,
    to_networkx,
)


PAGES = [
    "http://www.shop.com/index.html",       # 0
    "http://www.shop.com/products",         # 1
    "https://blog.shop.com/post-1",         # 2
    "http://news.example.org/a",            # 3
    "http://news.example.org/b",            # 4
    "not a url at all",                     # 5
]
PAGE_EDGES = [
    (0, 1),  # intra-host: dropped
    (0, 3),  # www.shop.com -> news.example.org
    (1, 3),  # duplicate host pair: collapsed
    (2, 0),  # blog.shop.com -> www.shop.com (different hosts!)
    (3, 2),  # news -> blog
    (4, 5),  # edge into a broken URL: dropped
    (5, 0),  # edge from a broken URL: dropped
]


def test_host_collapse_matches_paper_semantics():
    result = collapse_page_graph(PAGES, PAGE_EDGES, granularity="host")
    g = result.graph
    assert g.names == (
        "www.shop.com",
        "blog.shop.com",
        "news.example.org",
    )
    assert sorted(g.edges()) == sorted(
        [(0, 2), (1, 0), (2, 1)]
    )  # shop->news, blog->shop, news->blog
    assert result.num_dropped_pages == 1
    assert result.num_intra_edges == 1
    # page 1 maps to the same host node as page 0
    assert result.page_to_node[0] == result.page_to_node[1] == 0
    assert result.page_to_node[5] == -1


def test_domain_collapse_merges_subdomains():
    result = collapse_page_graph(PAGES, PAGE_EDGES, granularity="domain")
    g = result.graph
    assert g.names == ("shop.com", "example.org")
    # blog->www becomes intra-domain and vanishes
    assert sorted(g.edges()) == [(0, 1), (1, 0)]
    assert result.num_intra_edges >= 2


def test_unknown_granularity():
    with pytest.raises(ValueError):
        collapse_page_graph(PAGES, PAGE_EDGES, granularity="continent")


def test_edge_range_validation():
    with pytest.raises(ValueError):
        collapse_page_graph(PAGES, [(0, 99)])


def test_collapse_by_custom_key():
    result = collapse_by_key(
        ["a1", "a2", "b1", "drop-me"],
        [(0, 2), (1, 2), (0, 1)],
        key=lambda p: None if p.startswith("drop") else p[0],
    )
    assert result.graph.names == ("a", "b")
    assert sorted(result.graph.edges()) == [(0, 1)]
    assert result.num_dropped_pages == 1
    assert result.num_intra_edges == 1


def test_networkx_roundtrip():
    import networkx as nx

    g = WebGraph.from_edges(4, [(0, 1), (1, 2), (3, 0)])
    back = from_networkx(to_networkx(g))
    assert back == g


def test_from_networkx_string_labels():
    import networkx as nx

    nx_graph = nx.DiGraph()
    nx_graph.add_edge("a.com", "b.com")
    nx_graph.add_edge("b.com", "b.com")  # self-loop dropped
    g = from_networkx(nx_graph)
    assert g.num_nodes == 2
    assert g.num_edges == 1
    assert set(g.names) == {"a.com", "b.com"}


def test_from_networkx_empty_rejected():
    import networkx as nx

    from repro.errors import EmptyGraphError

    with pytest.raises(EmptyGraphError):
        from_networkx(nx.DiGraph())


def test_expand_collapse_roundtrip(rng):
    """Expanding a host graph into pages and collapsing back recovers
    the original host graph — the paper's data pipeline, closed loop."""
    from repro.synth import BaseWebConfig, WorldAssembler, generate_base_web

    asm = WorldAssembler()
    generate_base_web(asm, rng, BaseWebConfig(600, mean_outdegree=5.0))
    host_graph = asm.build().graph

    pages = []
    page_of_host = {}
    for host in range(host_graph.num_nodes):
        count = int(rng.integers(1, 4))
        page_of_host[host] = []
        for p in range(count):
            page_of_host[host].append(len(pages))
            pages.append(f"http://{host_graph.name_of(host)}/page{p}")
    page_edges = []
    for u, v in host_graph.edges():
        # each host-level edge appears as 1-3 page-level hyperlinks
        for _ in range(int(rng.integers(1, 4))):
            src = int(rng.choice(page_of_host[u]))
            dst = int(rng.choice(page_of_host[v]))
            page_edges.append((src, dst))
        # plus intra-host navigation links that must vanish
        if len(page_of_host[u]) > 1:
            page_edges.append((page_of_host[u][0], page_of_host[u][1]))

    result = collapse_page_graph(pages, page_edges, granularity="host")
    # hosts without pages linking out are still nodes (every host has
    # at least one page); edge sets must match exactly
    lookup = {name: i for i, name in enumerate(result.graph.names)}
    recovered = {
        (host_graph.names.index(result.graph.names[u]),
         host_graph.names.index(result.graph.names[v]))
        for u, v in result.graph.edges()
    }
    assert recovered == set(host_graph.edges())
