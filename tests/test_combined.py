"""Unit tests for the combined white-list + black-list estimators."""

import numpy as np
import pytest

from repro.core import (
    blacklist_mass,
    combine_average,
    combine_weighted,
    estimate_combined_mass,
    estimate_spam_mass,
)
from repro.datasets import figure2_graph


@pytest.fixture(scope="module")
def pieces():
    example = figure2_graph()
    whitelist = estimate_spam_mass(
        example.graph, example.good_core, gamma=None
    )
    black = blacklist_mass(example.graph, example.spam, tol=1e-14)
    return example, whitelist, black


def test_average_is_paper_formula(pieces):
    _, whitelist, black = pieces
    combined = combine_average(whitelist, black)
    assert np.allclose(
        combined.absolute, 0.5 * (whitelist.absolute + black)
    )
    assert combined.weight_white == 0.5


def test_average_shape_mismatch(pieces):
    _, whitelist, black = pieces
    with pytest.raises(ValueError):
        combine_average(whitelist, black[:-1])


def test_weighted_reduces_to_average_for_equal_coverage(pieces):
    _, whitelist, black = pieces
    combined = combine_weighted(
        whitelist,
        black,
        good_core_size=50,
        spam_core_size=10,
        est_good_size=100,
        est_spam_size=20,
    )
    # coverages are 0.5 each -> plain average
    assert combined.weight_white == pytest.approx(0.5)
    assert np.allclose(
        combined.absolute, combine_average(whitelist, black).absolute
    )


def test_weighted_leans_toward_better_covered_core(pieces):
    _, whitelist, black = pieces
    combined = combine_weighted(
        whitelist,
        black,
        good_core_size=90,
        spam_core_size=1,
        est_good_size=100,
        est_spam_size=100,
    )
    assert combined.weight_white == pytest.approx(0.9 / 0.91)
    assert combined.weight_white > 0.95


def test_weighted_input_validation(pieces):
    _, whitelist, black = pieces
    with pytest.raises(ValueError):
        combine_weighted(
            whitelist, black, good_core_size=-1, spam_core_size=1,
            est_good_size=10, est_spam_size=10,
        )
    with pytest.raises(ValueError):
        combine_weighted(
            whitelist, black, good_core_size=1, spam_core_size=1,
            est_good_size=0, est_spam_size=10,
        )


def test_relative_capped_at_one(pieces):
    _, whitelist, black = pieces
    combined = combine_average(whitelist, black)
    assert combined.relative.max() <= 1.0


def test_end_to_end_combined(pieces):
    example, _, _ = pieces
    combined = estimate_combined_mass(
        example.graph, example.good_core, example.spam, gamma=None
    )
    # x should still carry the highest combined relative mass among
    # eligible nodes
    x = example.id_of("x")
    assert combined.relative[x] > 0.7
    weighted = estimate_combined_mass(
        example.graph,
        example.good_core,
        example.spam,
        gamma=None,
        weighted=True,
    )
    assert 0.0 < weighted.weight_white < 1.0


def test_combined_improves_recall_of_mid_mass_spam(small_ctx):
    """With a substantial black list, combined estimates push known-farm
    spam above detection thresholds that the white-list-only estimate
    misses (the Section 3.4 motivation for combining)."""
    world = small_ctx.world
    rng = np.random.default_rng(5)
    spam_nodes = world.spam_nodes()
    blacklist = rng.choice(
        spam_nodes, size=len(spam_nodes) // 2, replace=False
    )
    black = blacklist_mass(world.graph, blacklist, gamma=small_ctx.gamma)
    combined = combine_average(small_ctx.estimates, black)
    eligible = small_ctx.eligible_mask
    spam_eligible = world.spam_mask & eligible
    good_eligible = ~world.spam_mask & eligible
    sep_combined = (
        combined.relative[spam_eligible].mean()
        - combined.relative[good_eligible].mean()
    )
    assert sep_combined > 0.3
