"""Unit tests for the community generators (core families + anomalies)."""

import numpy as np
import pytest

from repro.synth import (
    BaseWebConfig,
    WorldAssembler,
    add_blog_community,
    add_country_web,
    add_directory,
    add_edu_institutions,
    add_good_clique,
    add_gov_hosts,
    add_portal_community,
    generate_base_web,
)


@pytest.fixture()
def base_pair(rng):
    asm = WorldAssembler()
    base = generate_base_web(asm, rng, BaseWebConfig(3_000, mean_outdegree=8.0))
    return asm, base


def test_directory(base_pair, rng):
    asm, base = base_pair
    ids = add_directory(asm, rng, base, size=50)
    world = asm.build()
    assert world.group("directory").tolist() == ids.tolist()
    assert all(
        name.endswith("web-directory.org")
        for name in (world.graph.names[i] for i in ids)
    )
    # directory hosts link out into the base web (trust spreading)
    out_into_base = sum(
        1
        for i in ids
        for j in world.graph.out_neighbors(int(i))
        if j < base.all_ids[-1] + 1
    )
    assert out_into_base > len(ids) * 5
    with pytest.raises(ValueError):
        add_directory(asm, rng, base, size=1)


def test_gov_hosts(base_pair, rng):
    asm, base = base_pair
    ids = add_gov_hosts(asm, rng, base, size=80)
    world = asm.build()
    assert world.group("gov").tolist() == sorted(ids.tolist())
    assert all(
        world.graph.names[i].endswith(".gov") for i in ids
    )


def test_edu_institutions(base_pair, rng):
    asm, base = base_pair
    per_country = add_edu_institutions(
        asm, rng, base, {"us": (4, 3), "cz": (3, 3)}
    )
    world = asm.build()
    assert set(per_country) == {"us", "cz"}
    assert set(world.group("edu:us").tolist()) == set(
        per_country["us"].tolist()
    )
    # global group is the union
    assert set(world.group("edu").tolist()) == set(
        per_country["us"].tolist()
    ) | set(per_country["cz"].tolist())
    # naming convention carries the country suffix
    assert all(
        world.graph.names[i].endswith(".edu")
        for i in per_country["us"]
    )
    assert all(
        world.graph.names[i].endswith(".edu.cz")
        for i in per_country["cz"]
    )
    with pytest.raises(ValueError):
        add_edu_institutions(asm, rng, base, {"xx": (0, 3)})


def test_portal_community(base_pair, rng):
    asm, base = base_pair
    ids, hubs = add_portal_community(
        asm, rng, base, domain="bigportal.com", num_hosts=120, num_hubs=6
    )
    world = asm.build()
    assert len(hubs) == 6
    assert set(world.group("portal:bigportal.com:hubs").tolist()) == set(
        hubs.tolist()
    )
    # the whole community is tagged anomalous
    assert set(ids.tolist()) <= set(world.anomalous_nodes().tolist())
    # one registrable domain
    assert all(
        world.graph.names[i].endswith(".bigportal.com") for i in ids
    )
    # weak external citation: few inlinks from outside the community
    members = set(ids.tolist())
    external_in = sum(
        1
        for i in ids
        for j in world.graph.in_neighbors(int(i))
        if int(j) not in members
    )
    assert external_in < len(ids) // 5
    with pytest.raises(ValueError):
        add_portal_community(asm, rng, base, num_hosts=3, num_hubs=5)


def test_blog_community(base_pair, rng):
    asm, base = base_pair
    ids = add_blog_community(asm, rng, base, suffix="blogs.com.br", num_hosts=100)
    world = asm.build()
    assert set(world.group("blogs").tolist()) == set(ids.tolist())
    assert set(ids.tolist()) <= set(world.anomalous_nodes().tolist())
    with pytest.raises(ValueError):
        add_blog_community(asm, rng, base, num_hosts=1)


def test_country_web(base_pair, rng):
    asm, base = base_pair
    ids, edu_ids = add_country_web(
        asm, rng, base, "pl", 200, num_edu_hosts=20, anomalous=True
    )
    world = asm.build()
    assert len(ids) == 200
    assert set(world.group("country:pl").tolist()) == set(ids.tolist())
    assert set(world.group("edu:pl").tolist()) == set(edu_ids.tolist())
    assert set(ids.tolist()) <= set(world.anomalous_nodes().tolist())
    assert all(world.graph.names[i].endswith(".pl") for i in ids)
    with pytest.raises(ValueError):
        add_country_web(asm, rng, base, "xx", 10, num_edu_hosts=20)


def test_country_web_not_anomalous_when_covered(base_pair, rng):
    asm, base = base_pair
    ids, _ = add_country_web(
        asm, rng, base, "cz", 150, num_edu_hosts=15, anomalous=False
    )
    world = asm.build()
    anomalous = set(world.anomalous_nodes().tolist())
    assert not (set(ids.tolist()) & anomalous)


def test_good_clique_shapes(base_pair, rng):
    asm, base = base_pair
    hub_ids = add_good_clique(
        asm, rng, base, size=10, tag="clique:0", hub_and_clients=True
    )
    mutual_ids = add_good_clique(
        asm, rng, base, size=10, tag="clique:1", hub_and_clients=False
    )
    world = asm.build()
    g = world.graph
    # hub-and-clients: every client links the hub and back
    hub = int(hub_ids[0])
    for client in hub_ids[1:]:
        assert g.has_edge(int(client), hub)
        assert g.has_edge(hub, int(client))
    # mutual clique: every member has internal outlinks
    members = set(mutual_ids.tolist())
    for i in mutual_ids:
        internal = [j for j in g.out_neighbors(int(i)) if int(j) in members]
        assert internal
    assert set(world.group("cliques").tolist()) >= members
    with pytest.raises(ValueError):
        add_good_clique(asm, rng, base, size=1)


def test_all_community_hosts_are_good(base_pair, rng):
    asm, base = base_pair
    add_directory(asm, rng, base, size=20)
    add_gov_hosts(asm, rng, base, size=20)
    add_portal_community(asm, rng, base, num_hosts=50, num_hubs=4)
    world = asm.build()
    assert not world.spam_mask.any()
