"""Unit tests for connected-component analysis."""

import numpy as np
import pytest

from repro.graph import (
    WebGraph,
    component_sizes,
    largest_component,
    strongly_connected_components,
    weakly_connected_components,
)


def test_wcc_two_islands():
    g = WebGraph.from_edges(5, [(0, 1), (1, 2), (3, 4)])
    labels = weakly_connected_components(g)
    assert labels[0] == labels[1] == labels[2]
    assert labels[3] == labels[4]
    assert labels[0] != labels[3]


def test_wcc_direction_ignored():
    g = WebGraph.from_edges(3, [(1, 0), (1, 2)])
    labels = weakly_connected_components(g)
    assert len(set(labels.tolist())) == 1


def test_wcc_isolated_nodes():
    g = WebGraph.empty(3)
    labels = weakly_connected_components(g)
    assert sorted(labels.tolist()) == [0, 1, 2]


def test_scc_cycle_vs_chain():
    # 0 -> 1 -> 2 -> 0 is one SCC; 3 hangs off it
    g = WebGraph.from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)])
    labels = strongly_connected_components(g)
    assert labels[0] == labels[1] == labels[2]
    assert labels[3] != labels[0]


def test_scc_chain_all_singletons():
    g = WebGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
    labels = strongly_connected_components(g)
    assert len(set(labels.tolist())) == 4


def test_scc_two_cycles_bridged():
    g = WebGraph.from_edges(
        6, [(0, 1), (1, 0), (1, 2), (2, 3), (3, 4), (4, 2), (2, 5)]
    )
    labels = strongly_connected_components(g)
    assert labels[0] == labels[1]
    assert labels[2] == labels[3] == labels[4]
    assert labels[0] != labels[2]
    assert labels[5] not in (labels[0], labels[2])


def test_scc_matches_networkx_on_random_graph(rng):
    import networkx as nx

    n = 60
    edges = [
        (int(u), int(v))
        for u, v in zip(
            rng.integers(0, n, size=300), rng.integers(0, n, size=300)
        )
        if u != v
    ]
    g = WebGraph.from_edges(n, edges)
    ours = strongly_connected_components(g)
    nx_graph = nx.DiGraph(edges)
    nx_graph.add_nodes_from(range(n))
    for comp in nx.strongly_connected_components(nx_graph):
        comp = list(comp)
        assert len({ours[x] for x in comp}) == 1
    # same number of components
    assert len(set(ours.tolist())) == nx.number_strongly_connected_components(
        nx_graph
    )


def test_component_sizes_and_largest():
    labels = np.array([0, 0, 1, 1, 1, 2])
    assert component_sizes(labels).tolist() == [2, 3, 1]
    assert largest_component(labels).tolist() == [2, 3, 4]
    assert component_sizes(np.empty(0, dtype=np.int64)).size == 0
    assert largest_component(np.empty(0, dtype=np.int64)).size == 0


def test_scc_deep_chain_no_recursion_error():
    n = 5_000
    edges = [(i, i + 1) for i in range(n - 1)]
    g = WebGraph.from_edges(n, edges)
    labels = strongly_connected_components(g)
    assert len(set(labels.tolist())) == n
