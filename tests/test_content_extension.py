"""Tests for the content-analysis extension (the paper's future work)."""

import numpy as np
import pytest

from repro.core import MassDetector
from repro.extensions import (
    ContentModel,
    content_filter,
    run_content_filter_experiment,
)


def test_scores_shape_and_range(tiny_world, rng):
    scores = ContentModel().score(tiny_world, rng)
    assert scores.shape == (tiny_world.num_nodes,)
    assert (scores >= 0).all() and (scores <= 1).all()


def test_ordinary_spam_reads_spammy(tiny_world, rng):
    scores = ContentModel(noise=0.0).score(tiny_world, rng)
    # star-farm boosters are machine-generated: high content scores
    boosters = tiny_world.group("farm:0:boosters")
    assert scores[boosters].mean() > 0.6
    # ordinary good hosts read clean
    good = tiny_world.good_nodes()[:500]
    assert scores[good].mean() < 0.35


def test_blind_spots(tiny_world, rng):
    scores = ContentModel(noise=0.0).score(tiny_world, rng)
    # paid customers are spam with clean content
    customers = tiny_world.group("paid:customers")
    assert scores[customers].mean() < 0.35
    # honeypots (if any farm has them) read clean
    for name, ids in tiny_world.groups_matching("farm:").items():
        if name.endswith(":honeypots") and len(ids):
            assert scores[ids].mean() < 0.35
    # anomalous good communities read clean — they are the false
    # positives the filter is supposed to clear
    anomalous = tiny_world.anomalous_nodes()
    assert scores[anomalous].mean() < 0.35


def test_sophisticated_farms_mimic_content(tiny_world, rng):
    scores = ContentModel(noise=0.0).score(tiny_world, rng)
    sophisticated = []
    for name in tiny_world.groups_matching("farm:"):
        if name.endswith(":hijacked_sources") or name.endswith(":relays"):
            farm_tag = name.rsplit(":", 1)[0]
            sophisticated.extend(
                tiny_world.group(f"{farm_tag}:target").tolist()
            )
    assert sophisticated
    # collectively they read clean (individual Beta draws can stray)
    assert scores[sophisticated].mean() < 0.35
    assert (scores[sophisticated] < 0.5).mean() > 0.8


def test_content_filter_mask():
    candidates = np.array([True, True, False, True])
    content = np.array([0.9, 0.1, 0.9, 0.6])
    refined = content_filter(candidates, content, threshold=0.5)
    assert refined.tolist() == [True, False, False, True]
    with pytest.raises(ValueError):
        content_filter(candidates, content[:2])
    with pytest.raises(ValueError):
        content_filter(candidates, content, threshold=2.0)


def test_model_validation():
    with pytest.raises(ValueError):
        ContentModel(noise=1.0)


def test_experiment_shape(small_ctx):
    result = run_content_filter_experiment(small_ctx)
    rows = {row[0]: row for row in result.rows}
    mass_row = rows["mass only (tau=0.75)"]
    and_row = rows["mass AND content"]
    or_row = rows["mass OR content"]
    # the filter removes most anomalous false positives...
    assert and_row[3] < mass_row[3]
    # ...and strictly improves precision
    assert and_row[4] > mass_row[4]
    # the union recovers recall beyond either signal alone
    assert or_row[5] >= mass_row[5]
    assert or_row[5] >= rows["content only (eligible)"][5]


def test_determinism(small_ctx):
    a = run_content_filter_experiment(small_ctx, seed=7)
    b = run_content_filter_experiment(small_ctx, seed=7)
    assert a.rows == b.rows
