"""Unit tests for PageRank contributions (Section 3.2, Theorems 1-2)."""

import numpy as np
import pytest

from repro.core import (
    contribution_by_enumeration,
    contribution_matrix,
    contribution_vector,
    enumerate_walks,
    link_contribution_exact,
    link_contribution_first_order,
    pagerank,
    scale_scores,
    uniform_jump_vector,
    walk_contribution,
    walk_weight,
)
from repro.datasets import figure2_graph
from repro.graph import WebGraph


@pytest.fixture()
def chain():
    # 0 -> 1 -> 2
    return WebGraph.from_edges(3, [(0, 1), (1, 2)])


@pytest.fixture()
def cyclic():
    # 0 <-> 1, 1 -> 2
    return WebGraph.from_edges(3, [(0, 1), (1, 0), (1, 2)])


def test_walk_weight(chain, cyclic):
    assert walk_weight(chain, [0, 1, 2]) == pytest.approx(1.0)
    # node 1 in the cyclic graph has out-degree 2
    assert walk_weight(cyclic, [0, 1, 2]) == pytest.approx(0.5)
    assert walk_weight(cyclic, [0, 1, 0, 1, 2]) == pytest.approx(0.25)


def test_walk_weight_rejects_non_walks(chain):
    with pytest.raises(ValueError):
        walk_weight(chain, [0, 2])
    with pytest.raises(ValueError):
        walk_weight(chain, [])


def test_walk_contribution_formula(chain):
    # q = c^k * pi(W) * (1-c) * v_x  with v uniform (1/3)
    c = 0.85
    contribution = walk_contribution(chain, [0, 1, 2], damping=c)
    assert contribution == pytest.approx(c**2 * 1.0 * (1 - c) / 3)


def test_enumerate_walks_acyclic(chain):
    walks = list(enumerate_walks(chain, 0, 2, max_length=10))
    assert walks == [(0, 1, 2)]
    assert list(enumerate_walks(chain, 2, 0, max_length=10)) == []
    assert list(enumerate_walks(chain, 0, 2, max_length=0)) == []


def test_enumerate_walks_cyclic_truncated(cyclic):
    walks = list(enumerate_walks(cyclic, 0, 2, max_length=6))
    # 0-1-2, 0-1-0-1-2, 0-1-0-1-0-1-2 (length 6)
    assert (0, 1, 2) in walks
    assert (0, 1, 0, 1, 2) in walks
    assert len(walks) == 3


def test_theorem2_enumeration_matches_linear_system(cyclic):
    """q^x computed by walk enumeration equals PR(v^x)."""
    for source in range(3):
        by_system = contribution_vector(cyclic, [source], tol=1e-14)
        for target in range(3):
            by_walks = contribution_by_enumeration(
                cyclic, source, target, max_length=200
            )
            assert by_system[target] == pytest.approx(by_walks, abs=1e-10)


def test_theorem1_contributions_sum_to_pagerank(cyclic):
    """p_y = sum_x q_y^x (Theorem 1)."""
    scores = pagerank(cyclic, tol=1e-14).scores
    q = contribution_matrix(cyclic)
    assert np.abs(q.sum(axis=0) - scores).max() < 1e-12


def test_theorem1_on_figure2_graph():
    example = figure2_graph()
    scores = pagerank(example.graph, tol=1e-14).scores
    q = contribution_matrix(example.graph)
    assert np.abs(q.sum(axis=0) - scores).max() < 1e-12


def test_self_contribution_without_circuit_is_jump_only(chain):
    """A node on no circuit contributes (1-c) v_x to itself."""
    q = contribution_matrix(chain)
    v = uniform_jump_vector(3)
    for x in range(3):
        assert q[x, x] == pytest.approx(0.15 * v[x])


def test_self_contribution_with_circuit_exceeds_jump(cyclic):
    q = contribution_matrix(cyclic)
    assert q[0, 0] > 0.15 / 3
    assert q[1, 1] > 0.15 / 3
    assert q[2, 2] == pytest.approx(0.15 / 3)  # node 2 has no circuit


def test_unconnected_contribution_is_zero(chain):
    q = contribution_matrix(chain)
    assert q[2, 0] == pytest.approx(0.0)
    assert q[1, 0] == pytest.approx(0.0)


def test_subset_contribution_linearity(cyclic):
    """q^U = sum of q^x for x in U (Theorem 2 corollary)."""
    q_union = contribution_vector(cyclic, [0, 2], tol=1e-14)
    q_each = contribution_vector(cyclic, [0], tol=1e-14) + contribution_vector(
        cyclic, [2], tol=1e-14
    )
    assert np.abs(q_union - q_each).max() < 1e-12


def test_contribution_matrix_size_guard():
    g = WebGraph.empty(5000)
    with pytest.raises(ValueError, match="too large"):
        contribution_matrix(g)


def test_figure1_link_contributions():
    """Section 3.1: g0's link contributes c(1-c)/n, s0's link
    (c + kc^2)(1-c)/n."""
    from repro.datasets import figure1_graph

    k, c = 3, 0.85
    example = figure1_graph(k)
    g = example.graph
    n = g.num_nodes
    x = example.id_of("x")
    scale = n / (1 - c)
    g0_contribution = link_contribution_exact(g, example.id_of("g0"), x)
    assert g0_contribution * scale == pytest.approx(c, abs=1e-9)
    s0_contribution = link_contribution_exact(g, example.id_of("s0"), x)
    assert s0_contribution * scale == pytest.approx(c + k * c * c, abs=1e-9)


def test_link_contribution_first_order_matches_exact_when_acyclic():
    from repro.datasets import figure1_graph

    example = figure1_graph(2)
    g = example.graph
    x = example.id_of("x")
    scores = pagerank(g, tol=1e-14).scores
    for source in ("g0", "g1", "s0"):
        s = example.id_of(source)
        assert link_contribution_first_order(
            g, s, x, scores
        ) == pytest.approx(link_contribution_exact(g, s, x), abs=1e-10)


def test_link_contribution_requires_edge(chain):
    scores = pagerank(chain).scores
    with pytest.raises(ValueError):
        link_contribution_exact(chain, 0, 2)
    with pytest.raises(ValueError):
        link_contribution_first_order(chain, 0, 2, scores)
