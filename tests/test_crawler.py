"""Crawler-frontier contracts: strict schema, determinism, attacks.

The stream synthesizer is the trusted side of the streaming story: the
wire format it emits must validate under the ingestor's strict schema,
replaying it against the base graph must never conflict (every insert
is new, every delete exists), and the scripted temporal attacks must
carry accurate ground truth for the detection-latency probe.
"""

import numpy as np
import pytest

from repro.errors import StreamEventError
from repro.graph import WebGraph
from repro.synth import (
    ATTACK_KINDS,
    CrawlEvent,
    parse_event_line,
    read_stream,
    synthesize_stream,
    validate_event,
)

N, ACTIVE = 100, 40


@pytest.fixture(scope="module")
def base_graph():
    rng = np.random.default_rng(7)
    edges = set()
    while len(edges) < 200:
        u, v = rng.integers(0, ACTIVE, 2)
        if u != v:
            edges.add((int(u), int(v)))
    return WebGraph.from_edges(N, sorted(edges))


@pytest.fixture(scope="module")
def stream(base_graph):
    return synthesize_stream(
        base_graph,
        core=np.arange(10),
        seed=3,
        num_events=300,
        boosters_per_attack=8,
        attack_stride=3,
    )


# ----------------------------------------------------------------------
# schema validation
# ----------------------------------------------------------------------


def _event_dict(**over):
    base = {"id": 1, "ts": 4, "op": "+", "src": 2, "dst": 3}
    base.update(over)
    return base


def test_validate_event_accepts_well_formed():
    event = validate_event(_event_dict(), num_nodes=10)
    assert isinstance(event, CrawlEvent)
    assert event.edge() == (2, 3)


@pytest.mark.parametrize(
    "mutate, reason",
    [
        (lambda d: d.pop("op"), "missing-field"),
        (lambda d: d.update(op="insert"), "bad-op"),
        (lambda d: d.update(extra=1), "bad-type"),
        (lambda d: d.update(src="2"), "bad-type"),
        (lambda d: d.update(src=True), "bad-type"),
        (lambda d: d.update(id=-1), "negative-id"),
        (lambda d: d.update(ts=-3), "negative-id"),
        (lambda d: d.update(dst=-2), "negative-id"),
        (lambda d: d.update(src=3, dst=3), "self-link"),
        (lambda d: d.update(dst=10), "out-of-range"),
    ],
)
def test_validate_event_typed_rejections(mutate, reason):
    obj = _event_dict()
    mutate(obj)
    with pytest.raises(StreamEventError) as err:
        validate_event(obj, num_nodes=10)
    assert err.value.reason == reason


def test_parse_event_line_bad_json():
    with pytest.raises(StreamEventError) as err:
        parse_event_line('{"id": 1, "ts":')
    assert err.value.reason == "bad-json"
    with pytest.raises(StreamEventError) as err:
        parse_event_line('[1, 2, 3]')
    assert err.value.reason == "bad-type"


def test_event_line_roundtrip():
    event = CrawlEvent(7, 12, "-", 4, 9)
    assert parse_event_line(event.to_line()) == event


# ----------------------------------------------------------------------
# synthesis
# ----------------------------------------------------------------------


def test_stream_is_deterministic(base_graph):
    core = np.arange(10)
    a = synthesize_stream(base_graph, core=core, seed=11, num_events=120,
                          boosters_per_attack=8)
    b = synthesize_stream(base_graph, core=core, seed=11, num_events=120,
                          boosters_per_attack=8)
    assert a.lines() == b.lines()
    c = synthesize_stream(base_graph, core=core, seed=12, num_events=120,
                          boosters_per_attack=8)
    assert a.lines() != c.lines()


def test_ids_sequential_and_ts_monotone(stream):
    ids = [e.id for e in stream.events]
    assert ids == list(range(len(ids)))
    ts = [e.ts for e in stream.events]
    assert all(b >= a for a, b in zip(ts, ts[1:]))


def test_events_validate_under_strict_schema(stream):
    for event in stream.events:
        parsed = parse_event_line(event.to_line(), num_nodes=N)
        assert parsed == event


def test_replay_never_conflicts(base_graph, stream):
    """Every insert is new and every delete exists at its event time."""
    live = set(base_graph.edges())
    for event in stream.events:
        edge = event.edge()
        if event.op == "+":
            assert edge not in live, f"double insert at event {event.id}"
            live.add(edge)
        else:
            assert edge in live, f"phantom delete at event {event.id}"
            live.remove(edge)


def test_attack_ground_truth(base_graph, stream):
    kinds = [a.kind for a in stream.attacks]
    assert kinds == list(ATTACK_KINDS)
    onsets = [a.onset_id for a in stream.attacks]
    assert onsets == sorted(onsets)
    core = set(range(10))
    for attack in stream.attacks:
        assert 0 <= attack.onset_id < len(stream.events)
        if attack.kind == "stale-core":
            assert attack.target in core
        elif attack.kind == "expired-takeover":
            # the hijacked host is a reputable member of the active web
            assert attack.target not in core
            assert attack.target < ACTIVE
        else:
            # a gradual farm is built from nothing on a dormant host
            assert attack.target >= ACTIVE
        # booster actors are claimed from the dormant (isolated) pool
        boosters = [n for n in attack.nodes if n != attack.target]
        assert all(node >= ACTIVE for node in boosters)


def test_attacks_none_is_pure_churn(base_graph):
    stream = synthesize_stream(
        base_graph, seed=5, num_events=80, attacks=()
    )
    assert stream.attacks == []
    assert len(stream.events) == 80


def test_burst_freezes_event_time(base_graph):
    stream = synthesize_stream(
        base_graph, seed=9, num_events=120, attacks=(),
        burst=(40, 30),
    )
    ts = [e.ts for e in stream.events]
    assert len(set(ts[40:70])) == 1, "burst events must share one instant"


def test_write_read_roundtrip(tmp_path, stream):
    path = tmp_path / "events.jsonl"
    stream.write(path)
    back = read_stream(path)
    assert back.events == stream.events
    assert back.num_nodes == stream.num_nodes
    assert [a.as_dict() for a in back.attacks] == [
        a.as_dict() for a in stream.attacks
    ]
