"""Unit tests for the Fetterly-style degree-outlier baseline."""

import numpy as np
import pytest

from repro.baselines import DegreeOutlierDetector, degree_outlier_mask
from repro.graph import GraphBuilder, WebGraph
from repro.synth import (
    BaseWebConfig,
    WorldAssembler,
    add_spam_farm,
    generate_base_web,
)


def build_world_with_regular_farm(rng, farm_size=800, ring=6):
    """Base web plus one machine-generated farm whose boosters all share
    the same out-degree (1 target link + `ring` ring links)."""
    assembler = WorldAssembler()
    base = generate_base_web(
        assembler, rng, BaseWebConfig(4_000, mean_outdegree=8.0)
    )
    farm = add_spam_farm(
        assembler,
        rng,
        base,
        farm_size,
        tag="farm:auto",
        target_links_back=False,
        booster_interlinks=ring,
    )
    return assembler.build(), farm


def test_detects_machine_generated_farm(rng):
    world, farm = build_world_with_regular_farm(rng)
    mask = degree_outlier_mask(world.graph, kind="out")
    # the regular boosters (all with identical out-degree) are flagged
    flagged_boosters = mask[farm.boosters].mean()
    assert flagged_boosters > 0.95
    # and the flags are overwhelmingly spam
    assert world.spam_mask[mask].mean() > 0.8


def test_misses_irregular_farm(rng):
    """A farm with organic-looking (varied) degrees slips through — the
    gap the paper points out for degree-based detectors."""
    assembler = WorldAssembler()
    base = generate_base_web(
        assembler, rng, BaseWebConfig(4_000, mean_outdegree=8.0)
    )
    farm = add_spam_farm(
        assembler, rng, base, 150, tag="farm:sneaky", target_links_back=True
    )
    world = assembler.build()
    mask = degree_outlier_mask(world.graph, kind="both")
    assert mask[farm.target] == False  # noqa: E712 - numpy bool
    assert mask[farm.boosters].mean() < 0.1


def test_flag_degrees_requires_enough_data():
    det = DegreeOutlierDetector("in")
    assert det.flag_degrees(np.array([1, 2])).size == 0
    assert det.flag_degrees(np.array([5, 5, 5, 5])).size == 0


def test_min_count_suppresses_tail_noise(rng):
    det = DegreeOutlierDetector("in", min_count=10_000)
    world, _ = build_world_with_regular_farm(rng, farm_size=300)
    assert not det.detect(world.graph).any()


def test_parameter_validation():
    with pytest.raises(ValueError):
        DegreeOutlierDetector("sideways")
    with pytest.raises(ValueError):
        DegreeOutlierDetector("in", overrepresentation=1.0)
    with pytest.raises(ValueError):
        DegreeOutlierDetector("in", min_count=0)


def test_empty_graph_no_flags():
    g = WebGraph.empty(50)
    assert not degree_outlier_mask(g).any()
