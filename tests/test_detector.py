"""Unit tests for the mass-based detector (Algorithm 2, Section 3.6)."""

import numpy as np
import pytest

from repro.core import MassDetector, detect_spam, estimate_spam_mass
from repro.datasets import figure2_graph


@pytest.fixture(scope="module")
def example():
    return figure2_graph()


def test_paper_worked_example(example):
    """Section 3.6 walks Algorithm 2 on Figure 2 with rho=1.5, tau=0.5:
    S = {x, s0, g2} (g2 is the expected false positive); g0 stays out."""
    result = detect_spam(
        example.graph,
        example.good_core,
        tau=0.5,
        rho=1.5,
        gamma=None,
    )
    expected = {example.id_of(name) for name in ("x", "s0", "g2")}
    assert set(result.candidates.tolist()) == expected
    assert not result.is_candidate(example.id_of("g0"))


def test_low_pagerank_nodes_never_candidates(example):
    """Nodes below rho are filtered even with relative mass 1 (the
    paper's three reasons for the PageRank threshold)."""
    result = detect_spam(
        example.graph, example.good_core, tau=0.5, rho=1.5, gamma=None
    )
    for name in ("s1", "s2", "s3", "s4", "s5", "s6", "g1", "g3"):
        node = example.id_of(name)
        assert not result.eligible_mask[node]
        assert not result.is_candidate(node)


def test_threshold_monotonicity(example):
    """Raising tau can only shrink the candidate set; lowering rho can
    only grow the eligible set."""
    estimates = estimate_spam_mass(
        example.graph, example.good_core, gamma=None
    )
    sizes = []
    for tau in (0.2, 0.5, 0.8, 0.99):
        result = MassDetector(tau, 1.5).detect(estimates)
        sizes.append(result.num_candidates)
    assert sizes == sorted(sizes, reverse=True)
    eligible = [
        MassDetector(0.5, rho).detect(estimates).num_eligible
        for rho in (1.0, 1.5, 3.0, 10.0)
    ]
    assert eligible == sorted(eligible, reverse=True)


def test_detection_result_accessors(example):
    estimates = estimate_spam_mass(
        example.graph, example.good_core, gamma=None
    )
    result = MassDetector(0.5, 1.5).detect(estimates)
    assert result.num_candidates == len(result.candidates)
    assert result.candidate_mask.sum() == result.num_candidates
    assert result.tau == 0.5 and result.rho == 1.5
    assert result.estimates is estimates


def test_unscaled_rho_interpretation(example):
    estimates = estimate_spam_mass(
        example.graph, example.good_core, gamma=None
    )
    n = example.graph.num_nodes
    raw_rho = 1.5 * (1 - 0.85) / n
    scaled = MassDetector(0.5, 1.5, scaled_rho=True).detect(estimates)
    raw = MassDetector(0.5, raw_rho, scaled_rho=False).detect(estimates)
    assert np.array_equal(scaled.candidate_mask, raw.candidate_mask)


def test_invalid_thresholds():
    with pytest.raises(ValueError):
        MassDetector(tau=1.5, rho=10)
    with pytest.raises(ValueError):
        MassDetector(tau=0.5, rho=-1)


def test_detector_on_synthetic_world(small_ctx):
    """On a full synthetic world, tau=0.98 should catch a majority-spam
    candidate set dominated by farm targets."""
    result = MassDetector(tau=0.98, rho=10.0).detect(small_ctx.estimates)
    assert result.num_candidates > 0
    world = small_ctx.world
    spam_hits = world.spam_mask[result.candidates]
    assert spam_hits.mean() > 0.5
    # every non-spam candidate is an anomalous-community member (the
    # paper's gray false positives), not an ordinary good host
    anomalous = set(world.anomalous_nodes().tolist())
    for node in result.candidates:
        node = int(node)
        assert world.spam_mask[node] or node in anomalous
    # a meaningful share of farm targets is found even at tau = 0.98
    # (hijack-heavy farms legitimately sit below the threshold)
    targets = set(world.group("spam:targets").tolist())
    found = targets & set(result.candidates.tolist())
    assert len(found) >= len(targets) * 0.3
    # lowering tau to 0.75 recovers more targets (hijack-carrying
    # farms have genuinely mixed support, so full recall is not the
    # paper's claim — precision at high tau is)
    relaxed = MassDetector(tau=0.75, rho=10.0).detect(small_ctx.estimates)
    found_relaxed = targets & set(relaxed.candidates.tolist())
    assert len(found_relaxed) > len(found)
    assert len(found_relaxed) >= len(targets) * 0.5


def test_expired_domains_not_detected(small_ctx):
    """Section 4.4.3 obs. 2: expired-domain spam draws its PageRank from
    good nodes, so mass detection is 'not expected to detect them'."""
    result = MassDetector(tau=0.5, rho=10.0).detect(small_ctx.estimates)
    expired = small_ctx.world.group("expired:targets")
    assert not result.candidate_mask[expired].any()
    # they are eligible (high PageRank) — just not high-mass
    assert small_ctx.estimates.relative[expired].max() < 0.5
