"""Differential tests: every solver backend computes the same PageRank.

The repo carries five ways to solve ``(I − c Tᵀ) p = (1 − c) v`` —
Jacobi, Gauss–Seidel, the power method, a direct sparse solve,
BiCGSTAB — plus the batched block kernel of :mod:`repro.perf.engine`
and the out-of-core sharded kernel of :mod:`repro.perf.sharded`.
The paper's guarantees (Theorems 1–3, the mass identities) hold for
*the* solution, so the backends must agree with each other to solver
tolerance on any graph.  These tests pin that agreement on a seeded zoo
of synthetic graphs chosen to hit the structural regimes of Section
4.1: dangling-heavy (the paper's host graph has 66.4% hosts without
outlinks), isolated-heavy, cyclic, star-shaped, edgeless, and
single-node.

The sharded backend is held to a *stronger* standard than solver
tolerance: for every zoo graph and every shard count in
``SHARD_COUNTS`` ({1, 2, 7, 32} by default, overridable through the
``REPRO_TEST_SHARDS`` environment variable — the CI ``scale`` job
matrixes over it), scores, iteration counts, residuals and convergence
flags must be **bitwise identical** to the in-memory block kernel.

The adaptive mixed-precision path (``precision="adaptive"``: float32
sweeps to a relaxed tier, float64 polish to ``tol``) is held to both
standards at once, for every mode in ``PRECISION_MODES``
(``REPRO_TEST_PRECISION``, matrixed by the CI ``precision`` job):
within ``10 * tol`` of the float64 kernel per node on every zoo graph,
bitwise identical between the in-memory and sharded backends, and
bitwise-identical rank ordering against the float64 solution.
"""

import os

import numpy as np
import pytest

from repro.core.pagerank import (
    pagerank,
    scaled_core_jump_vector,
    uniform_jump_vector,
)
from repro.core.solvers import solve
from repro.graph.ops import transition_matrix
from repro.graph.sharded import partition_graph
from repro.graph.webgraph import WebGraph
from repro.perf import PagerankEngine

DAMPING = 0.85
TOL = 1e-12
AGREEMENT = 1e-8

#: Shard counts of the bitwise-parity sweep.  The CI ``scale`` job sets
#: ``REPRO_TEST_SHARDS`` to pin a single count per matrix leg; the
#: default sweep covers trivial (1), even (2), uneven (7) and
#: more-shards-than-some-graphs-have-rows (32).
SHARD_COUNTS = [
    int(part)
    for part in os.environ.get("REPRO_TEST_SHARDS", "1,2,7,32").split(",")
    if part.strip()
]

#: Precision modes of the mixed-precision sweep.  The CI ``precision``
#: job sets ``REPRO_TEST_PRECISION`` to pin a single mode per matrix
#: leg; the default sweep covers both.
PRECISION_MODES = [
    part.strip()
    for part in os.environ.get(
        "REPRO_TEST_PRECISION", "float64,adaptive"
    ).split(",")
    if part.strip()
]


def _random_graph(
    seed: int,
    n: int,
    num_edges: int,
    *,
    dangling_frac: float = 0.0,
    isolated_frac: float = 0.0,
) -> WebGraph:
    """A seeded random graph with forced dangling/isolated fractions."""
    rng = np.random.default_rng(seed)
    nodes = np.arange(n)
    isolated = rng.choice(
        nodes, size=int(isolated_frac * n), replace=False
    )
    allowed = np.setdiff1d(nodes, isolated)
    dangling = rng.choice(
        allowed,
        size=min(int(dangling_frac * n), max(len(allowed) - 2, 0)),
        replace=False,
    )
    sources = np.setdiff1d(allowed, dangling)
    if len(sources) == 0 or len(allowed) == 0:
        return WebGraph.from_edges(n, [])
    edges = zip(
        rng.choice(sources, size=num_edges),
        rng.choice(allowed, size=num_edges),
    )
    return WebGraph.from_edges(n, list(edges))


def _graph_zoo():
    """~10 seeded graphs spanning the structural regimes."""
    zoo = {
        "plain-sparse": _random_graph(11, 300, 900),
        "plain-dense": _random_graph(12, 150, 2_500),
        "dangling-heavy": _random_graph(13, 300, 700, dangling_frac=0.7),
        "dangling-extreme": _random_graph(14, 200, 300, dangling_frac=0.9),
        "isolated-heavy": _random_graph(
            15, 300, 500, isolated_frac=0.4
        ),
        "mixed-pathological": _random_graph(
            16, 250, 400, dangling_frac=0.4, isolated_frac=0.3
        ),
        "tiny": _random_graph(17, 8, 14),
        "cycle": WebGraph.from_edges(
            60, [(i, (i + 1) % 60) for i in range(60)]
        ),
        "star": WebGraph.from_edges(80, [(i, 0) for i in range(1, 80)]),
        "edgeless": WebGraph.from_edges(40, []),
        "single-node": WebGraph.from_edges(1, []),
        "two-node": WebGraph.from_edges(2, [(0, 1)]),
    }
    return sorted(zoo.items())


ZOO = _graph_zoo()


@pytest.fixture(scope="module", params=[name for name, _ in ZOO])
def zoo_graph(request):
    return dict(ZOO)[request.param]


@pytest.fixture(scope="module")
def oracle(zoo_graph):
    """The direct sparse solve — exact up to linear-algebra round-off."""
    return pagerank(zoo_graph, method="direct", tol=TOL).scores


@pytest.mark.parametrize("method", ["jacobi", "gauss_seidel", "bicgstab"])
def test_iterative_solvers_match_direct(zoo_graph, oracle, method):
    scores = pagerank(zoo_graph, method=method, tol=TOL).scores
    assert np.abs(scores - oracle).sum() < AGREEMENT


def test_power_matches_normalized_direct(zoo_graph, oracle):
    # the power method iterates the eigenvector formulation, whose
    # fixed point is the *normalized* linear solution
    scores = pagerank(zoo_graph, method="power", tol=TOL).scores
    assert np.abs(
        scores / scores.sum() - oracle / oracle.sum()
    ).sum() < AGREEMENT


def test_batched_engine_matches_direct(zoo_graph, oracle):
    engine = PagerankEngine()
    batch = engine.solve_many(zoo_graph, [None], damping=DAMPING, tol=TOL)
    assert batch.converged.all()
    assert np.abs(batch.scores[:, 0] - oracle).sum() < AGREEMENT


def test_solve_many_columns_match_single_solves(zoo_graph):
    n = zoo_graph.num_nodes
    rng = np.random.default_rng(99)
    arbitrary = rng.random(n)
    arbitrary /= arbitrary.sum() * 2.0  # unnormalized, norm 0.5
    vectors = [
        uniform_jump_vector(n),
        scaled_core_jump_vector(n, list(range(min(3, n))), gamma=0.85),
        arbitrary,
    ]
    engine = PagerankEngine()
    batch = engine.solve_many(
        zoo_graph, np.stack(vectors, axis=1), damping=DAMPING, tol=TOL
    )
    transition_t = engine.operator(zoo_graph)
    for j, v in enumerate(vectors):
        single = solve(
            "jacobi", transition_t, v, damping=DAMPING, tol=TOL
        )
        assert np.abs(batch.scores[:, j] - single.scores).sum() < AGREEMENT
        # same convergence verdict, same residual scale
        assert bool(batch.converged[j]) == single.converged


def test_solve_many_agrees_across_jump_scales(zoo_graph):
    # the kernel must be exactly linear: solving kv equals k * solve(v)
    n = zoo_graph.num_nodes
    v = uniform_jump_vector(n)
    engine = PagerankEngine()
    batch = engine.solve_many(
        zoo_graph, np.stack([v, 0.25 * v], axis=1), tol=TOL
    )
    assert np.abs(
        batch.scores[:, 1] - 0.25 * batch.scores[:, 0]
    ).sum() < AGREEMENT


def test_engine_single_solve_equals_pagerank(zoo_graph):
    engine = PagerankEngine()
    via_engine = engine.solve(zoo_graph, tol=TOL)
    via_api = pagerank(zoo_graph, tol=TOL)
    assert np.array_equal(via_engine.scores, via_api.scores)


def test_operator_cache_returns_equivalent_matrix(zoo_graph):
    engine = PagerankEngine()
    cached = engine.operator(zoo_graph)
    rebuilt = transition_matrix(zoo_graph).T.tocsr()
    assert (cached != rebuilt).nnz == 0


# ---------------------------------------------------------------------------
# sharded backend: bitwise parity with the in-memory block kernel
# ---------------------------------------------------------------------------


def test_zero_node_graph_is_a_typed_error():
    from repro.errors import EmptyGraphError

    with pytest.raises(EmptyGraphError):
        WebGraph.from_edges(0, [])


@pytest.fixture(scope="module")
def sharded_variants(zoo_graph, tmp_path_factory):
    """One persisted store per shard count, all of the same zoo graph."""
    root = tmp_path_factory.mktemp("shard-zoo")
    return {
        k: partition_graph(zoo_graph, root / f"k{k}", num_shards=k)
        for k in SHARD_COUNTS
    }


def test_sharded_fingerprint_matches_memory(zoo_graph, sharded_variants):
    # the manifest fingerprint composes from per-shard digests, yet must
    # name the same edge set as the in-memory graph for ANY partition
    expected = zoo_graph.structural_fingerprint()
    for store in sharded_variants.values():
        assert store.structural_fingerprint() == expected


def test_sharded_round_trip_is_bitwise_identical(zoo_graph, sharded_variants):
    for store in sharded_variants.values():
        back = store.to_webgraph()
        assert np.array_equal(back.indptr, zoo_graph.indptr)
        assert np.array_equal(back.indices, zoo_graph.indices)


def _parity_vectors(n):
    rng = np.random.default_rng(4242)
    arbitrary = rng.random(n)
    arbitrary /= arbitrary.sum() * 2.0
    core = list(range(min(3, n)))
    return np.stack(
        [
            uniform_jump_vector(n),
            scaled_core_jump_vector(n, core, gamma=0.85),
            arbitrary,
        ],
        axis=1,
    )


def test_sharded_solve_many_bitwise_equal(zoo_graph, sharded_variants):
    engine = PagerankEngine()
    vectors = _parity_vectors(zoo_graph.num_nodes)
    reference = engine.solve_many(
        zoo_graph, vectors, damping=DAMPING, tol=TOL
    )
    for k, store in sharded_variants.items():
        batch = engine.solve_many(store, vectors, damping=DAMPING, tol=TOL)
        assert np.array_equal(batch.scores, reference.scores), k
        assert np.array_equal(batch.iterations, reference.iterations), k
        assert np.array_equal(batch.residuals, reference.residuals), k
        assert np.array_equal(batch.converged, reference.converged), k


def test_sharded_single_solve_bitwise_equal(zoo_graph, sharded_variants):
    # solve() on a sharded graph is a one-vector batch; the in-memory
    # comparison point is therefore the block kernel, not the scalar
    # Jacobi (whose check_every accounting differs)
    engine = PagerankEngine()
    reference = engine.solve_many(zoo_graph, [None], tol=TOL).column(0)
    for k, store in sharded_variants.items():
        result = engine.solve(store, tol=TOL)
        assert np.array_equal(result.scores, reference.scores), k
        assert result.iterations == reference.iterations, k


# ---------------------------------------------------------------------------
# adaptive mixed precision: 10*tol agreement + bitwise backend parity
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def float64_reference(zoo_graph):
    """The float64 block kernel — the oracle of the precision claim."""
    engine = PagerankEngine()
    return engine.solve_many(
        zoo_graph,
        _parity_vectors(zoo_graph.num_nodes),
        damping=DAMPING,
        tol=TOL,
    )


@pytest.mark.parametrize("precision", PRECISION_MODES)
def test_precision_modes_agree_with_float64_kernel(
    zoo_graph, float64_reference, precision
):
    """Every precision mode lands within 10*tol of the float64 oracle.

    (``float64`` itself must be *bitwise* the reference — the default
    path may not drift when the adaptive machinery is compiled in.)
    """
    engine = PagerankEngine(precision=precision)
    batch = engine.solve_many(
        zoo_graph,
        _parity_vectors(zoo_graph.num_nodes),
        damping=DAMPING,
        tol=TOL,
    )
    assert batch.converged.all()
    if precision == "float64":
        assert np.array_equal(batch.scores, float64_reference.scores)
        assert np.array_equal(
            batch.iterations, float64_reference.iterations
        )
    else:
        deviation = np.abs(batch.scores - float64_reference.scores).max()
        assert deviation <= 10 * TOL, deviation


@pytest.mark.parametrize("precision", PRECISION_MODES)
def test_precision_modes_preserve_rank_ordering(
    zoo_graph, float64_reference, precision
):
    """The ranking is the float64 one, up to exact ties in the oracle.

    Structurally equivalent nodes carry *bitwise equal* float64 scores
    and have no defined relative rank; the adaptive path may split such
    a tie by 1 ulp.  So the check is: the precision mode's descending
    order, applied to the float64 scores, yields exactly the float64
    descending sequence — every node sits in its float64 rank group.
    ``float64`` itself must reproduce the reference permutation
    bitwise.
    """
    engine = PagerankEngine(precision=precision)
    batch = engine.solve_many(
        zoo_graph,
        _parity_vectors(zoo_graph.num_nodes),
        damping=DAMPING,
        tol=TOL,
    )
    for j in range(batch.scores.shape[1]):
        order = np.argsort(-batch.scores[:, j], kind="stable")
        reference = np.argsort(
            -float64_reference.scores[:, j], kind="stable"
        )
        if precision == "float64":
            assert np.array_equal(order, reference), j
        else:
            assert np.array_equal(
                float64_reference.scores[order, j],
                float64_reference.scores[reference, j],
            ), j


@pytest.mark.parametrize("precision", PRECISION_MODES)
def test_sharded_precision_modes_bitwise_equal(
    zoo_graph, sharded_variants, precision
):
    """Sharded and in-memory kernels agree bitwise in *every* precision.

    The adaptive float32 phase runs over cast per-shard blocks that are
    sub-arrays of the cast in-memory operator, so the parity argument
    of the float64 path carries over unchanged.
    """
    engine = PagerankEngine(precision=precision)
    vectors = _parity_vectors(zoo_graph.num_nodes)
    reference = engine.solve_many(
        zoo_graph, vectors, damping=DAMPING, tol=TOL
    )
    for k, store in sharded_variants.items():
        batch = engine.solve_many(store, vectors, damping=DAMPING, tol=TOL)
        assert np.array_equal(batch.scores, reference.scores), k
        assert np.array_equal(batch.iterations, reference.iterations), k
        assert np.array_equal(batch.residuals, reference.residuals), k
        assert np.array_equal(batch.converged, reference.converged), k


def test_engine_rejects_unknown_precision():
    with pytest.raises(ValueError, match="precision"):
        PagerankEngine(precision="float16")


def test_estimate_spam_mass_backend_parity(zoo_graph, sharded_variants):
    from repro.core.mass import estimate_spam_mass

    core = list(range(min(3, zoo_graph.num_nodes)))
    engine = PagerankEngine()
    reference = estimate_spam_mass(
        zoo_graph, core, tol=TOL, engine=engine
    )
    for k, store in sharded_variants.items():
        estimates = estimate_spam_mass(store, core, tol=TOL, engine=engine)
        assert np.array_equal(estimates.pagerank, reference.pagerank), k
        assert np.array_equal(
            estimates.core_pagerank, reference.core_pagerank
        ), k
        assert np.array_equal(estimates.absolute, reference.absolute), k
        assert np.array_equal(estimates.relative, reference.relative), k
