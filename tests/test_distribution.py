"""Unit tests for the Figure 6 mass-distribution analyses."""

import numpy as np
import pytest

from repro.analysis import mass_distribution, negative_mass_decomposition
from repro.core import estimate_spam_mass


def test_sign_composition():
    mass = np.array([-2.0, -0.5, 0.0, 1.0, 3.0, 10.0])
    dist = mass_distribution(mass)
    assert dist.frac_positive == pytest.approx(0.5)
    assert dist.frac_negative == pytest.approx(2 / 6)
    assert dist.frac_zero == pytest.approx(1 / 6)
    assert dist.min_mass == -2.0
    assert dist.max_mass == 10.0


def test_histograms_cover_both_panels(rng):
    mass = np.concatenate([rng.pareto(2.0, 3_000) + 1, -rng.pareto(2.0, 500) - 1])
    dist = mass_distribution(mass)
    assert dist.positive_bins.size > 0
    assert dist.negative_bins.size > 0
    # fractions relative to all nodes: both panels together cover all
    assert dist.positive_fractions.sum() + dist.negative_fractions.sum() == (
        pytest.approx(1.0, abs=1e-9)
    )


def test_positive_fit_recovers_pareto_exponent(rng):
    mass = rng.pareto(1.31, 200_000) + 1.0  # density exponent 2.31
    dist = mass_distribution(mass, fit_xmin=1.0)
    assert dist.positive_fit is not None
    assert dist.positive_fit.alpha == pytest.approx(2.31, rel=0.05)


def test_no_fit_when_too_few_positive():
    dist = mass_distribution(np.array([-1.0, -2.0, 0.5]))
    assert dist.positive_fit is None


def test_empty_mass_rejected():
    with pytest.raises(ValueError):
        mass_distribution(np.array([]))


def test_negative_decomposition_separates_core(tiny_world, tiny_core):
    """Figure 6's negative panel superposes two curves: ordinary hosts
    (small magnitudes) and core-biased hosts (large magnitudes)."""
    est = estimate_spam_mass(tiny_world.graph, tiny_core, gamma=0.85)
    scaled = est.scaled_absolute()
    noncore, core = negative_mass_decomposition(scaled, tiny_core)
    noncore_bins, noncore_frac = noncore
    core_bins, core_frac = core
    assert core_bins.size > 0 and noncore_bins.size > 0
    # the core curve sits further left (larger magnitudes) than the
    # non-core curve: compare fraction-weighted mean magnitudes
    core_mean = np.average(core_bins, weights=core_frac)
    noncore_mean = np.average(noncore_bins, weights=noncore_frac)
    assert core_mean > noncore_mean


def test_negative_decomposition_fraction_bookkeeping():
    mass = np.array([-10.0, -1.0, -0.1, 2.0, 3.0])
    noncore, core = negative_mass_decomposition(mass, core=[0])
    assert core[1].sum() == pytest.approx(1 / 5)
    assert noncore[1].sum() == pytest.approx(2 / 5)


def test_negative_decomposition_empty_sides():
    mass = np.array([1.0, 2.0, 3.0])
    noncore, core = negative_mass_decomposition(mass, core=[0])
    assert noncore[0].size == 0 and core[0].size == 0
