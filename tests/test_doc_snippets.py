"""Documentation snippets stay runnable.

README.md and docs/api_guide.md embed Python examples; this test
extracts every self-contained ``python`` code block and executes it, so
the documented API cannot silently rot.  Blocks that reference
placeholder objects (``my_digraph``, ``page_urls``, …) are provided
with small stand-ins.
"""

import re
from pathlib import Path

import numpy as np
import pytest

REPO = Path(__file__).resolve().parent.parent

DOC_FILES = ["README.md", "docs/api_guide.md"]


def extract_blocks(path: Path):
    text = path.read_text(encoding="utf-8")
    return re.findall(r"```python\n(.*?)```", text, re.S)


def make_placeholders():
    """Stand-ins for the free variables doc snippets reference."""
    import networkx as nx

    from repro.core import MassDetector, estimate_spam_mass
    from repro.graph import WebGraph
    from repro.synth import WorldConfig, build_world, default_good_core

    world = build_world(
        WorldConfig(
            seed=3,
            num_base_hosts=1_200,
            mean_outdegree=6.0,
            directory_size=30,
            gov_size=40,
            edu_countries={"us": (4, 3), "it": (3, 3)},
            portal_hosts=50,
            blog_hosts=50,
            uncovered_country_hosts=100,
            uncovered_country_edu=12,
            covered_country_hosts=90,
            covered_country_edu=12,
            num_cliques=1,
            clique_size_range=(5, 8),
            num_farms=6,
            farm_boosters_range=(8, 40),
            num_alliances=1,
            alliance_targets=2,
            alliance_boosters=10,
            num_expired=1,
            expired_links_range=(5, 10),
            num_paid_customers=2,
            paid_links_range=(3, 8),
        )
    )
    good_core = default_good_core(world)
    estimates = estimate_spam_mass(world.graph, good_core)
    result = MassDetector(tau=0.9, rho=10.0).detect(estimates)
    candidates = result.candidates
    candidate = (
        int(candidates[0]) if len(candidates) else int(world.spam_nodes()[0])
    )
    from repro.eval import ReproductionContext
    from repro.eval.sampling import build_evaluation_sample

    scaled = estimates.scaled_pagerank()
    eligible_mask = scaled >= 10.0
    sample = build_evaluation_sample(
        world,
        np.flatnonzero(eligible_mask),
        np.random.default_rng(1),
    )
    ctx = ReproductionContext(
        world, good_core, estimates, 10.0, eligible_mask, sample, 0.85
    )
    nx_graph = nx.DiGraph([("a.com", "b.com"), ("b.com", "c.com")])
    page_urls = [
        "http://a.com/1",
        "http://a.com/2",
        "http://b.com/1",
    ]
    page_edges = [(0, 2), (1, 2)]
    return {
        "g": world.graph,
        "world": world,
        "good_core": good_core,
        "core": good_core,
        "known_spam_nodes": world.spam_nodes(),
        "blacklist": world.spam_nodes()[:10],
        "candidate": candidate,
        "candidate_mask": result.candidate_mask,
        "my_digraph": nx_graph,
        "page_urls": page_urls,
        "page_edges": page_edges,
        "ctx": ctx,
        "np": np,
    }


# blocks that are intentionally illustrative fragments, skipped by a
# marker substring
SKIP_MARKERS = (
    "WorldConfig.medium()",  # full medium build: covered by other tests
)


@pytest.fixture(scope="module")
def namespace():
    return make_placeholders()


@pytest.mark.parametrize("doc", DOC_FILES)
def test_doc_snippets_execute(doc, namespace):
    path = REPO / doc
    blocks = extract_blocks(path)
    assert blocks, f"{doc} has no python blocks?"
    executed = 0
    for block in blocks:
        if any(marker in block for marker in SKIP_MARKERS):
            continue
        env = dict(namespace)
        try:
            exec(compile(block, f"{doc}:snippet", "exec"), env)
        except Exception as error:  # pragma: no cover - failure path
            pytest.fail(f"snippet in {doc} failed: {error}\n---\n{block}")
        executed += 1
    assert executed >= 1
