"""Tests for the experiment runners — each checks the *shape* claims the
paper makes for its table/figure (see DESIGN.md's per-experiment index).

These run on the session-scoped small context, so together they form an
integration test of the whole pipeline.
"""

import math

import numpy as np
import pytest

from repro.eval import (
    ReproductionContext,
    run_absolute_mass_ranking,
    run_baseline_comparison,
    run_combined_ablation,
    run_core_repair,
    run_figure1,
    run_figure2_contributions,
    run_figure3,
    run_figure4,
    run_figure5,
    run_figure6,
    run_gamma_ablation,
    run_graph_stats,
    run_pagerank_distribution,
    run_solver_ablation,
    run_table1,
    run_table2,
)
from repro.synth import WorldConfig


def test_context_build(small_ctx):
    assert small_ctx.num_eligible() > 50
    assert small_ctx.eligible_mask.sum() == small_ctx.num_eligible()
    assert len(small_ctx.sample) == small_ctx.num_eligible()
    assert small_ctx.gamma == 0.85
    assert small_ctx.graph is small_ctx.world.graph


def test_t1_reproduces_paper_table_exactly():
    result = run_table1()
    # the note records the max deviation from the paper's analytics
    note = [n for n in result.notes if "max" in n][0]
    deviation = float(note.split("=")[-1])
    assert deviation < 1e-9
    assert len(result.rows) == 12
    x_row = result.rows[0]
    assert x_row[0] == "x"
    assert x_row[1] == pytest.approx(9.33, abs=0.005)


def test_f1_naive_scheme_claims():
    result = run_figure1(k_values=(1, 2, 5))
    scheme1 = result.column("scheme1")
    scheme2 = result.column("scheme2")
    assert scheme1 == ["good", "good", "good"]  # always fooled
    assert scheme2 == ["good", "spam", "spam"]  # flips at k = 2
    computed = result.column("p_x (computed)")
    analytic = result.column("p_x (analytic)")
    assert computed == pytest.approx(analytic, abs=1e-6)


def test_f2_contribution_claims():
    result = run_figure2_contributions()
    ratio_row = result.rows[-1]
    assert ratio_row[1] == pytest.approx(1.65, abs=0.005)
    assert ratio_row[1] == pytest.approx(ratio_row[2], abs=1e-6)


def test_s41_graph_stats_shape():
    result = run_graph_stats(WorldConfig.small())
    by_metric = {row[0]: row for row in result.rows}
    # base web matches the Yahoo! fractions closely
    assert by_metric["% no inlinks"][2] == pytest.approx(35.0, abs=2.0)
    assert by_metric["% no outlinks"][2] == pytest.approx(66.4, abs=2.0)
    assert by_metric["% isolated"][2] == pytest.approx(25.8, abs=2.0)
    # the full world is strictly larger than the base web
    assert by_metric["hosts"][3] > by_metric["hosts"][2]


def test_s43_pagerank_distribution_shape(small_ctx):
    result = run_pagerank_distribution(small_ctx)
    by_metric = {row[0]: row for row in result.rows}
    # most hosts sit near the minimum score
    assert by_metric["% scaled PR < 2"][2] > 50.0
    # high-PR hosts are rare
    assert by_metric["% scaled PR >= 100"][2] < 2.0
    assert by_metric["filtered set |T| (PR >= rho)"][2] == (
        small_ctx.num_eligible()
    )


def test_t2_group_boundaries(small_ctx):
    result = run_table2(small_ctx, num_groups=10)
    smallest = result.column("smallest m~")
    largest = result.column("largest m~")
    # monotone group boundaries, negative head, saturated tail
    assert smallest == sorted(smallest)
    assert smallest[0] < 0  # core-biased negatives exist
    assert largest[-1] == pytest.approx(1.0, abs=0.01)
    assert sum(result.column("size")) == len(small_ctx.sample)


def test_f3_spam_rises_toward_top_groups(small_ctx):
    result = run_figure3(small_ctx, num_groups=10)
    spam_frac = result.column("% spam")
    # bottom third nearly spam-free (the spam that does appear there is
    # the expired-domain kind, which the paper also finds at large
    # negative mass), top group spam-heavy
    assert sum(spam_frac[:3]) / 3 <= 20.0
    assert spam_frac[-1] >= 60.0
    # anomalous hosts exist and sit in the upper-middle region
    anomalous = result.column("anomalous")
    assert sum(anomalous) > 0
    top_half = sum(anomalous[5:])
    assert top_half >= sum(anomalous) * 0.9


def test_f4_precision_shape(small_ctx):
    result = run_figure4(small_ctx)
    taus = result.column("tau")
    incl = result.column("prec (anom. incl.)")
    excl = result.column("prec (anom. excl.)")
    totals = result.column("|T| above")
    # anomalies excluded: near-perfect at the paper's tau = 0.98
    assert excl[0] >= 0.95
    # excluding anomalies can only help
    for i, e in zip(incl, excl):
        if not (math.isnan(i) or math.isnan(e)):
            assert e >= i - 1e-9
    # precision never drops below the positive-mass spam base rate area
    assert min(x for x in incl if not math.isnan(x)) > 0.3
    # counts grow as the threshold loosens
    assert totals == sorted(totals)
    # overall decay: the top threshold beats the bottom one
    assert excl[0] > excl[-1]


def test_f5_core_size_and_breadth(small_ctx):
    result = run_figure5(small_ctx, fractions=(1.0, 0.1, 0.01))
    labels = result.columns[1:]
    assert labels == ["100% core", "10% core", "1% core", ".it core"]
    curves = {label: result.column(label) for label in labels}

    def mean_precision(label):
        values = [v for v in curves[label] if not math.isnan(v)]
        return sum(values) / len(values)

    # graceful decline with core size...
    assert mean_precision("100% core") >= mean_precision("1% core") - 0.02
    # ...and the narrow national core does worst on average (breadth
    # beats size, the Figure 5 headline)
    assert mean_precision(".it core") <= mean_precision("10% core")
    assert mean_precision(".it core") <= mean_precision("100% core")


def test_f6_mass_distribution_shape(small_ctx):
    result = run_figure6(small_ctx)
    by_metric = {row[0]: row for row in result.rows}
    assert by_metric["min mass"][1] < 0
    assert by_metric["max mass"][1] > 0
    exponent = by_metric["positive power-law exponent"][1]
    assert exponent != "n/a"
    # a decaying power law in the right range (paper: -2.31)
    assert -4.0 < float(exponent) < -1.0
    # negative side: the core curve sits at larger magnitudes
    med = by_metric["negative curves (non-core / core median |mass|)"][1]
    noncore_med, core_med = (float(x) for x in med.split(" / "))
    assert core_med > noncore_med


def test_s442_core_repair(small_ctx):
    result = run_core_repair(small_ctx)
    by_metric = {row[0]: row for row in result.rows}
    before = by_metric["portal mean m~ before"][1]
    after = by_metric["portal mean m~ after"][1]
    elsewhere = by_metric["mean |change| elsewhere (positive m~)"][1]
    # the paper's shape: ~0.99 before, collapses after, tiny side effect
    assert before > 0.9
    assert after < 0.55
    assert elsewhere < 0.05
    assert by_metric["hub hosts added to core"][1] <= 16


def test_s46_absolute_mass_unusable(small_ctx):
    result = run_absolute_mass_ranking(small_ctx, top=15)
    truths = result.column("truth")
    # good hosts intermix in the top absolute-mass list — no clean
    # separation point (the macromedia effect)
    assert "good" in truths
    assert "spam" in truths


def test_a1_gamma_ablation(small_ctx):
    result = run_gamma_ablation(small_ctx)
    unscaled, scaled = result.rows
    # unscaled: ||p'|| << ||p|| and estimates collapse onto PageRank
    assert unscaled[1] < 0.2
    assert unscaled[2] > 50.0
    # scaled: healthy norm ratio and a much larger good/spam separation
    assert scaled[1] > 0.5
    assert scaled[5] > unscaled[5] + 0.3


def test_a2_solver_ablation(small_ctx):
    result = run_solver_ablation(
        small_ctx, methods=("jacobi", "power", "bicgstab")
    )
    assert all(result.column("converged"))
    deviations = [float(d) for d in result.column(result.columns[-1])]
    assert max(deviations) < 1e-6


def test_a3_combined_ablation(small_ctx):
    result = run_combined_ablation(small_ctx, blacklist_fractions=(0.25,))
    assert result.rows[0][0] == "white-list only"
    separations = result.column("separation")
    assert all(s > 0.3 for s in separations)
    # combining with a real blacklist should not hurt recall
    recalls = result.column("recall")
    assert max(recalls[1:]) >= recalls[0] - 0.05


def test_a4_baseline_comparison(small_ctx):
    result = run_baseline_comparison(small_ctx)
    rows = {row[0]: row for row in result.rows}
    mass = rows["mass (tau=0.98)"]
    trust = rows["trustrank read-out"]
    # mass detection beats the TrustRank read-out on eligible precision
    assert mass[3] > trust[3]
    # naive schemes only work because they get oracle labels; they are
    # present for the comparison
    assert "naive scheme 1 (oracle labels)" in rows
    assert "supporter deviation" in rows
