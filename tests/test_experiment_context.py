"""Tests for ReproductionContext variants and CLI error paths that the
main experiment tests do not exercise."""

import numpy as np
import pytest

from repro.cli import main
from repro.eval import ReproductionContext
from repro.synth import WorldConfig


@pytest.fixture(scope="module")
def sampled_ctx():
    """A context that labels only a sampled fraction of the filtered
    set, like the paper's 0.1% sample."""
    return ReproductionContext.build(
        WorldConfig.small(), sample_fraction=0.5
    )


def test_sampled_context_respects_fraction(sampled_ctx):
    assert len(sampled_ctx.sample) == pytest.approx(
        0.5 * sampled_ctx.num_eligible(), abs=1
    )
    # sampled nodes all come from the eligible set
    eligible = np.flatnonzero(sampled_ctx.eligible_mask)
    assert set(sampled_ctx.sample.nodes.tolist()) <= set(eligible.tolist())


def test_sampled_context_includes_exclusion_channels(sampled_ctx):
    composition = sampled_ctx.sample.composition()
    # the unknown/non-existent channels fire at ~11% combined
    excluded = composition["unknown"] + composition["nonexistent"]
    assert 0 <= excluded <= len(sampled_ctx.sample) * 0.35


def test_sampled_precision_close_to_population(sampled_ctx):
    from repro.eval import precision_at

    full = ReproductionContext.build(WorldConfig.small())
    tau = 0.45
    sampled = precision_at(
        sampled_ctx.sample, sampled_ctx.estimates.relative, tau
    ).precision
    population = precision_at(
        full.sample, full.estimates.relative, tau
    ).precision
    assert sampled == pytest.approx(population, abs=0.25)


def test_custom_rho_changes_eligibility():
    strict = ReproductionContext.build(WorldConfig.small(), rho=50.0)
    loose = ReproductionContext.build(WorldConfig.small(), rho=5.0)
    assert strict.num_eligible() < loose.num_eligible()
    assert strict.rho == 50.0


def test_uncovered_coverage_knob():
    """Full coverage of the 'uncovered' country removes that anomaly
    group from the high-mass region."""
    gapped = ReproductionContext.build(
        WorldConfig.small(), uncovered_coverage=0.0
    )
    covered = ReproductionContext.build(
        WorldConfig.small(), uncovered_coverage=1.0
    )
    pl = gapped.world.group("country:pl")
    gapped_mass = gapped.estimates.relative[pl]
    covered_mass = covered.estimates.relative[pl]
    assert covered_mass.mean() < gapped_mass.mean() - 0.3


def test_cli_estimate_rejects_unknown_core_hosts(tmp_path, capsys):
    out = tmp_path / "world"
    main(["generate", "--scale", "small", "--seed", "3", "--out", str(out)])
    (out / "core.hosts").write_text("not-a-real-host.example\n")
    with pytest.raises(SystemExit, match="not present"):
        main(
            [
                "estimate",
                "--world",
                str(out),
                "--out-prefix",
                str(tmp_path / "p"),
            ]
        )


def test_cli_detect_rejects_mismatched_scores(tmp_path):
    out = tmp_path / "world"
    main(["generate", "--scale", "small", "--seed", "3", "--out", str(out)])
    from repro.graph import write_scores

    prefix = tmp_path / "bad"
    write_scores(np.array([0.5, 0.5]), f"{prefix}.pagerank.scores")
    write_scores(np.array([0.5, 0.5]), f"{prefix}.relative.scores")
    with pytest.raises(SystemExit, match="do not match"):
        main(
            [
                "detect",
                "--world",
                str(out),
                "--scores-prefix",
                str(prefix),
            ]
        )
