"""Tests for the mass-explanation module (inverse contributions)."""

import numpy as np
import pytest

from repro.core import contribution_matrix, pagerank
from repro.core.explain import contributions_to, explain_mass
from repro.datasets import figure2_graph
from repro.graph import WebGraph


@pytest.fixture(scope="module")
def example():
    return figure2_graph()


def test_contributions_to_matches_contribution_matrix(example):
    """The backward solve agrees with the forward Theorem 2 matrix."""
    q = contribution_matrix(example.graph)
    for target in range(example.graph.num_nodes):
        backward = contributions_to(example.graph, target)
        assert np.abs(backward - q[:, target]).max() < 1e-10


def test_contributions_sum_to_pagerank(example):
    """Theorem 1 through the backward direction."""
    scores = pagerank(example.graph, tol=1e-14).scores
    for target in (example.id_of("x"), example.id_of("g0")):
        contributions = contributions_to(example.graph, target)
        assert contributions.sum() == pytest.approx(
            scores[target], abs=1e-12
        )


def test_contributions_to_validation(example):
    with pytest.raises(IndexError):
        contributions_to(example.graph, 99)
    with pytest.raises(ValueError):
        contributions_to(example.graph, 0, v=np.ones(3))
    with pytest.raises(ValueError):
        contributions_to(example.graph, 0, damping=1.0)


def test_explain_x_blames_spam(example):
    """Explaining Figure 2's x reproduces the Section 3.3 analysis:
    the spam side contributes ~66% (Table 1's m = 0.66)."""
    explanation = explain_mass(
        example.graph,
        example.id_of("x"),
        example.good_core,
        suspected_spam=example.spam,
    )
    # x itself is in example.spam, so self + s-nodes give m = 0.66
    assert explanation.spam_share == pytest.approx(0.663, abs=0.005)
    assert explanation.core_share > 0.2
    kinds = {kind for _, _, kind in explanation.top_sources}
    assert "spam" in kinds and "core" in kinds
    # the direct in-neighbours g0, g2, s0 tie at the top of the
    # external sources (each contributes c = 0.85 scaled)
    external = [
        (s, c) for s, c, _ in explanation.top_sources
        if s != example.id_of("x")
    ]
    top_ids = {s for s, _ in external[:3]}
    assert top_ids == {
        example.id_of("g0"), example.id_of("g2"), example.id_of("s0")
    }
    assert external[0][1] == pytest.approx(external[2][1])


def test_explain_marks_self(example):
    # s1 has no inlinks: its whole PageRank is its own jump, and with
    # no black-list supplied it counts as unknown
    explanation = explain_mass(
        example.graph, example.id_of("s1"), example.good_core
    )
    assert explanation.top_sources[0][2] == "self"
    assert explanation.unknown_share == pytest.approx(1.0)
    # a core member's own jump counts toward the core share
    core_member = explain_mass(
        example.graph, example.id_of("g1"), example.good_core
    )
    assert core_member.core_share == pytest.approx(1.0)


def test_whitelist_wins_on_conflict(example):
    explanation = explain_mass(
        example.graph,
        example.id_of("x"),
        example.good_core,
        suspected_spam=list(example.good_core) + list(example.spam),
    )
    # core members stay "core" even when also black-listed
    for source, _, kind in explanation.top_sources:
        if source in example.good_core:
            assert kind == "core"


def test_render_is_readable(example):
    explanation = explain_mass(
        example.graph,
        example.id_of("x"),
        example.good_core,
        suspected_spam=example.spam,
    )
    text = explanation.render(example.graph)
    assert "node x" in text
    assert "core (known good)" in text
    assert "[spam]" in text


def test_explain_on_synthetic_candidate(small_ctx):
    """Explaining a detected farm target shows its boosters on top."""
    target = int(small_ctx.world.group("farm:1:target")[0])
    boosters = set(small_ctx.world.group("farm:1:boosters").tolist())
    explanation = explain_mass(
        small_ctx.graph, target, small_ctx.core, top=8
    )
    external_sources = [
        s for s, _, kind in explanation.top_sources if kind != "self"
    ]
    assert external_sources
    booster_hits = sum(1 for s in external_sources if s in boosters)
    assert booster_hits >= len(external_sources) * 0.7
    assert explanation.core_share < 0.3


def test_top_validation(example):
    with pytest.raises(ValueError):
        explain_mass(example.graph, 0, example.good_core, top=0)
