"""Tests for the closed-form farm analysis — validated against actual
PageRank computations on generated farms."""

import numpy as np
import pytest

from repro.analysis.farm_theory import (
    boosters_needed,
    hijacked_boost,
    optimal_farm_booster,
    optimal_farm_target,
    relay_farm_target,
    star_farm_target,
)
from repro.core import pagerank, scale_scores
from repro.graph import WebGraph


def isolated_farm(k, linkback, relays=0):
    """A farm floating alone in a larger graph of isolated filler nodes
    (filler keeps the uniform jump from distorting scaled units)."""
    n = k + 1 + 20
    edges = []
    target = 0
    boosters = list(range(1, k + 1))
    if relays:
        relay_nodes = boosters[:relays]
        feeders = boosters[relays:]
        for i, f in enumerate(feeders):
            edges.append((f, relay_nodes[i % relays]))
        for r in relay_nodes:
            edges.append((r, target))
    else:
        edges.extend((b, target) for b in boosters)
    if linkback:
        edges.extend((target, b) for b in boosters)
    return WebGraph.from_edges(n, edges), target


def scaled_pagerank(graph):
    return scale_scores(pagerank(graph, tol=1e-13).scores, graph.num_nodes)


@pytest.mark.parametrize("k", [1, 5, 20, 100])
def test_star_farm_closed_form(k):
    graph, target = isolated_farm(k, linkback=False)
    assert scaled_pagerank(graph)[target] == pytest.approx(
        star_farm_target(k), abs=1e-8
    )


@pytest.mark.parametrize("k", [1, 5, 20, 100])
def test_optimal_farm_closed_form(k):
    graph, target = isolated_farm(k, linkback=True)
    scaled = scaled_pagerank(graph)
    assert scaled[target] == pytest.approx(optimal_farm_target(k), abs=1e-8)
    assert scaled[1] == pytest.approx(optimal_farm_booster(k), abs=1e-8)


def test_recycling_beats_star():
    """The alliances result: linking back recycles rank, so the optimal
    farm strictly beats the star farm for every k."""
    for k in (1, 10, 500):
        assert optimal_farm_target(k) > star_farm_target(k)
    # asymptotically by the factor 1/(1-c^2)
    ratio = optimal_farm_target(10_000) / star_farm_target(10_000)
    assert ratio == pytest.approx(1 / (1 - 0.85**2), rel=1e-3)


@pytest.mark.parametrize("feeders,relays", [(6, 2), (9, 3), (20, 4)])
def test_relay_farm_closed_form(feeders, relays):
    graph, target = isolated_farm(
        feeders + relays, linkback=False, relays=relays
    )
    assert scaled_pagerank(graph)[target] == pytest.approx(
        relay_farm_target(feeders, relays), abs=1e-8
    )


def test_relay_camouflage_costs_rank():
    """Two-tier structure trades target PageRank for camouflage."""
    total = 30
    for relays in (1, 3, 10):
        assert relay_farm_target(total - relays, relays) < star_farm_target(
            total
        )


def test_hijacked_boost_linearity():
    # star farm + one stray link from a good chain: y -> target where y
    # also links one other node (out-degree 2)
    k = 5
    n = k + 4 + 20
    target, y, other = 0, k + 1, k + 2
    edges = [(b, target) for b in range(1, k + 1)]
    edges += [(y, target), (y, other)]
    graph = WebGraph.from_edges(n, edges)
    scaled = scaled_pagerank(graph)
    expected = star_farm_target(k) + hijacked_boost(scaled[y], 2)
    assert scaled[target] == pytest.approx(expected, abs=1e-8)


def test_boosters_needed_inverts_closed_forms():
    for score in (10.0, 50.0, 333.0):
        k = boosters_needed(score, recycling=True)
        assert optimal_farm_target(max(k, 1)) >= score - 1e-9
        if k > 1:
            assert optimal_farm_target(k - 1) < score
        k_star = boosters_needed(score, recycling=False)
        assert star_farm_target(max(k_star, 1)) >= score - 1e-9
        # recycling always needs fewer (or equal) boosters
        assert k <= k_star
    assert boosters_needed(1.0) == 0
    assert boosters_needed(0.5) == 0


def test_validation():
    with pytest.raises(ValueError):
        star_farm_target(0)
    with pytest.raises(ValueError):
        optimal_farm_target(5, c=1.0)
    with pytest.raises(ValueError):
        relay_farm_target(5, 0)
    with pytest.raises(ValueError):
        relay_farm_target(-1, 2)
    with pytest.raises(ValueError):
        hijacked_boost(1.0, 0)
    with pytest.raises(ValueError):
        hijacked_boost(-1.0, 2)
