"""Golden regression tests: recompute and diff against committed
fixtures.

The fixtures under ``tests/golden/`` pin the pipeline's numerics end to
end — the Table 1 worked example (whose values are analytically known)
and a full small-world mass estimation.  Any change that moves these
vectors past solver tolerance shows up here, whichever layer it hides
in (graph construction, operator assembly, solver, engine, core
assembly).

To update after an *intentional* numerical change::

    PYTHONPATH=src python -m repro.tools.regen_golden

and commit the diff with the change that caused it (see the module
docstring of ``repro.tools.regen_golden``).
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.detector import MassDetector
from repro.core.mass import estimate_spam_mass
from repro.datasets import figure2_graph
from repro.perf import PagerankEngine
from repro.synth import WorldConfig, build_world, default_good_core
from repro.tools.regen_golden import GAMMA, RHO, TAU, TOL, WORLD_SEED

GOLDEN = Path(__file__).parent / "golden"

# fixtures are computed at tol=1e-12; allow two orders of slack for
# BLAS/platform variation without letting real regressions through
ATOL = 1e-10


def test_golden_fixtures_are_committed():
    assert (GOLDEN / "table1.json").is_file()
    assert (GOLDEN / "world_small.npz").is_file()
    assert (GOLDEN / "telemetry_world_small.json").is_file()


def test_table1_matches_golden():
    fixture = json.loads((GOLDEN / "table1.json").read_text("utf-8"))
    example = figure2_graph()
    est = estimate_spam_mass(
        example.graph,
        example.good_core,
        gamma=fixture["gamma"],
        tol=fixture["tol"],
    )
    scaled_p = est.scaled_pagerank()
    scaled_core = est.scaled_core_pagerank()
    scaled_abs = est.scaled_absolute()
    for name, expected in fixture["nodes"].items():
        i = example.id_of(name)
        assert scaled_p[i] == pytest.approx(expected["p"], abs=ATOL)
        assert scaled_core[i] == pytest.approx(
            expected["p_core"], abs=ATOL
        )
        assert scaled_abs[i] == pytest.approx(
            expected["M_est"], abs=ATOL
        )
        assert est.relative[i] == pytest.approx(
            expected["m_est"], abs=ATOL
        )


@pytest.fixture(scope="module")
def world_small_fixture():
    with np.load(GOLDEN / "world_small.npz") as data:
        return {key: data[key] for key in data.files}


def test_world_small_matches_golden(world_small_fixture):
    fixture = world_small_fixture
    assert int(fixture["seed"]) == WORLD_SEED
    assert float(fixture["gamma"]) == GAMMA
    world = build_world(WorldConfig.small(seed=int(fixture["seed"])))
    core = default_good_core(world)
    np.testing.assert_array_equal(
        np.asarray(core, dtype=np.int64), fixture["core"]
    )
    est = estimate_spam_mass(
        world.graph,
        core,
        gamma=float(fixture["gamma"]),
        tol=float(fixture["tol"]),
    )
    assert np.abs(est.pagerank - fixture["pagerank"]).max() < ATOL
    assert np.abs(
        est.core_pagerank - fixture["core_pagerank"]
    ).max() < ATOL


def test_world_small_golden_is_self_consistent(world_small_fixture):
    # the committed fixture itself satisfies the paper's invariants —
    # guards against regenerating fixtures from a broken tree
    fixture = world_small_fixture
    p = fixture["pagerank"]
    p_core = fixture["core_pagerank"]
    assert p.min() > 0.0
    assert p.sum() <= 1.0 + 1e-9
    assert p_core.min() >= 0.0
    # relative mass stays <= 1 wherever PageRank is positive
    assert np.all(1.0 - p_core / p <= 1.0 + 1e-9)


def test_telemetry_stream_matches_golden(telemetry):
    """The normalized event stream of a full pipeline pass is pinned.

    Reruns the fixture's pipeline — small world, fresh engine, default
    thresholds — under the ``telemetry`` capture fixture and compares
    the timing-stripped stream (kinds, names, ordering, stable attrs)
    against ``tests/golden/telemetry_world_small.json``.  A surprise
    diff means an instrumentation contract change: a stage gained or
    lost its span, nesting order moved, or a span started erroring.

    To update after an *intentional* instrumentation change::

        PYTHONPATH=src python -m repro.tools.regen_golden
    """
    fixture = json.loads(
        (GOLDEN / "telemetry_world_small.json").read_text("utf-8")
    )
    assert fixture["seed"] == WORLD_SEED
    assert fixture["gamma"] == GAMMA
    assert fixture["tau"] == TAU

    world = build_world(WorldConfig.small(seed=fixture["seed"]))
    core = default_good_core(world)
    # a fresh engine, exactly as regen_golden uses: the shared engine
    # may hold a cached operator, which would drop the operator-build
    # span and desync the stream
    engine = PagerankEngine()
    est = estimate_spam_mass(
        world.graph,
        core,
        gamma=fixture["gamma"],
        tol=fixture["tol"],
        engine=engine,
    )
    MassDetector(fixture["tau"], fixture["rho"]).detect(est)

    assert telemetry.sink.normalized() == fixture["events"]
