"""Unit tests for good-core assembly and manipulation (Section 4.2/4.5)."""

import numpy as np
import pytest

from repro.synth import (
    assemble_good_core,
    core_coverage,
    country_only_core,
    repair_core,
    subsample_core,
)


def test_core_contains_only_good_hosts(tiny_world):
    core = assemble_good_core(tiny_world)
    assert not tiny_world.spam_mask[core].any()
    assert len(core) == len(np.unique(core))


def test_core_families_included(tiny_world):
    core = set(assemble_good_core(tiny_world).tolist())
    assert set(tiny_world.group("directory").tolist()) <= core
    assert set(tiny_world.group("gov").tolist()) <= core
    assert set(tiny_world.group("edu:us").tolist()) <= core


def test_family_exclusion(tiny_world):
    core = set(
        assemble_good_core(
            tiny_world, include_directory=False, include_gov=False
        ).tolist()
    )
    assert not (set(tiny_world.group("directory").tolist()) & core)
    assert not (set(tiny_world.group("gov").tolist()) & core)
    assert set(tiny_world.group("edu:us").tolist()) <= core


def test_edu_coverage_gap(tiny_world, rng):
    """The Polish-anomaly mechanism: a country's edu hosts are almost
    entirely left out of the core."""
    full = set(assemble_good_core(tiny_world).tolist())
    gapped = set(
        assemble_good_core(
            tiny_world, edu_coverage={"it": 0.0}, rng=rng
        ).tolist()
    )
    it_hosts = set(tiny_world.group("edu:it").tolist())
    assert it_hosts <= full
    assert not (it_hosts & gapped)
    partial = set(
        assemble_good_core(
            tiny_world, edu_coverage={"it": 0.5}, rng=rng
        ).tolist()
    )
    included = len(it_hosts & partial)
    assert 0 < included < len(it_hosts)


def test_coverage_validation(tiny_world):
    with pytest.raises(ValueError):
        assemble_good_core(tiny_world, edu_coverage={"it": 1.5})


def test_subsample_core(rng):
    core = np.arange(1_000)
    for fraction in (0.1, 0.01):
        sub = subsample_core(core, fraction, rng)
        assert len(sub) == int(round(fraction * 1_000))
        assert set(sub.tolist()) <= set(core.tolist())
        assert np.array_equal(sub, np.sort(sub))
    # never empty
    assert len(subsample_core(core, 0.0001, rng)) == 1
    with pytest.raises(ValueError):
        subsample_core(core, 0.0, rng)
    with pytest.raises(ValueError):
        subsample_core(core, 1.5, rng)


def test_country_only_core(tiny_world):
    core = country_only_core(tiny_world, "it")
    assert set(core.tolist()) == set(tiny_world.group("edu:it").tolist())
    with pytest.raises(KeyError):
        country_only_core(tiny_world, "zz")


def test_repair_core(tiny_world):
    core = assemble_good_core(tiny_world, edu_coverage={"it": 0.0})
    extra = tiny_world.group("edu:it")[:3]
    repaired = repair_core(core, extra)
    assert set(extra.tolist()) <= set(repaired.tolist())
    assert len(repaired) == len(core) + 3
    # idempotent
    assert len(repair_core(repaired, extra)) == len(repaired)


def test_core_coverage(tiny_world):
    core = assemble_good_core(tiny_world)
    coverage = core_coverage(tiny_world, core)
    assert 0.0 < coverage < 1.0
    assert coverage == pytest.approx(
        len(core) / int((~tiny_world.spam_mask).sum())
    )
