"""Property and unit tests for ``repro.graph.delta``.

``GraphDelta`` is the contract the incremental engine stands on: a
validated, immutable edge delta whose application splices a new CSR
(the base graph untouched) and whose fingerprint derivation is
*commutative* — updating the parent digest per edge must equal hashing
the spliced CSR from scratch.  Hypothesis drives the round-trip and
derivation invariants over random graphs; the unit tests pin the
rejection semantics and the file format.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DeltaError, GraphFormatError
from repro.graph import (
    GraphDelta,
    compose_applications,
    compose_deltas,
    read_delta,
    write_delta,
)
from repro.graph.webgraph import WebGraph
from test_differential_solvers import _random_graph

SETTINGS = dict(max_examples=30, deadline=None)


def _edge_set(graph):
    sources = np.repeat(np.arange(graph.num_nodes), graph.out_degree())
    return set(zip(sources.tolist(), graph.indices.tolist()))


def _random_delta(graph, rng, num_ins, num_del):
    """Fresh insertions + existing deletions, valid by construction."""
    n = graph.num_nodes
    existing = _edge_set(graph)
    insertions = set()
    attempts = 0
    while len(insertions) < num_ins and attempts < 50 * num_ins:
        attempts += 1
        u, v = int(rng.integers(n)), int(rng.integers(n))
        if u != v and (u, v) not in existing and (u, v) not in insertions:
            insertions.add((u, v))
    deletions = []
    if existing and num_del:
        pool = sorted(existing)
        idx = rng.choice(len(pool), size=min(num_del, len(pool)),
                         replace=False)
        deletions = [pool[i] for i in idx]
    return GraphDelta(insertions=sorted(insertions), deletions=deletions)


@st.composite
def graph_and_delta(draw):
    n = draw(st.integers(min_value=4, max_value=50))
    num_edges = draw(st.integers(min_value=0, max_value=4 * n))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    edges = {
        (int(u), int(v))
        for u, v in rng.integers(0, n, size=(num_edges, 2))
        if u != v
    }
    graph = WebGraph.from_edges(n, sorted(edges))
    delta = _random_delta(
        graph,
        rng,
        num_ins=draw(st.integers(min_value=0, max_value=2 * n)),
        num_del=draw(st.integers(min_value=0, max_value=graph.num_edges)),
    )
    return graph, delta


# ----------------------------------------------------------------------
# property tests
# ----------------------------------------------------------------------


@settings(**SETTINGS)
@given(graph_and_delta())
def test_apply_matches_rebuilt_graph(case):
    """The spliced CSR equals a from-scratch build of the edited set."""
    graph, delta = case
    after = delta.apply(graph).after
    edited = _edge_set(graph)
    edited -= set(map(tuple, delta.deletions.tolist()))
    edited |= set(map(tuple, delta.insertions.tolist()))
    rebuilt = WebGraph.from_edges(graph.num_nodes, sorted(edited))
    assert np.array_equal(after.indptr, rebuilt.indptr)
    assert np.array_equal(after.indices, rebuilt.indices)
    # the O(|delta|) derived fingerprint equals the cold recomputation
    assert (
        after.structural_fingerprint()
        == rebuilt.structural_fingerprint()
    )


@settings(**SETTINGS)
@given(graph_and_delta())
def test_inverse_round_trip(case):
    """Applying a delta then its inverse restores CSR and fingerprint."""
    graph, delta = case
    after = delta.apply(graph).after
    restored = delta.inverse().apply(after).after
    assert np.array_equal(restored.indptr, graph.indptr)
    assert np.array_equal(restored.indices, graph.indices)
    assert (
        restored.structural_fingerprint()
        == graph.structural_fingerprint()
    )


@settings(**SETTINGS)
@given(graph_and_delta())
def test_touched_sets_and_base_immutability(case):
    graph, delta = case
    indptr_before = graph.indptr.copy()
    indices_before = graph.indices.copy()
    application = delta.apply(graph)
    changed = np.concatenate([delta.insertions, delta.deletions])
    if len(changed):
        assert set(application.touched_sources.tolist()) == set(
            changed[:, 0].tolist()
        )
        assert set(delta.touched_nodes().tolist()) == set(
            changed.ravel().tolist()
        )
    else:
        assert delta.is_empty()
        assert len(application.touched_sources) == 0
    # the base graph is untouched
    assert np.array_equal(graph.indptr, indptr_before)
    assert np.array_equal(graph.indices, indices_before)
    assert (
        application.after.num_edges
        == graph.num_edges + delta.num_insertions - delta.num_deletions
    )


# ----------------------------------------------------------------------
# zoo regimes: dangling- and isolated-heavy graphs
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(n=120, num_edges=400, dangling_frac=0.6),
        dict(n=120, num_edges=200, isolated_frac=0.5),
        dict(n=150, num_edges=300, dangling_frac=0.3, isolated_frac=0.3),
    ],
    ids=["dangling-heavy", "isolated-heavy", "mixed"],
)
def test_apply_on_zoo_regimes(kwargs):
    graph = _random_graph(5, **kwargs)
    rng = np.random.default_rng(17)
    delta = _random_delta(graph, rng, num_ins=25, num_del=10)
    after = delta.apply(graph).after
    edited = _edge_set(graph)
    edited -= set(map(tuple, delta.deletions.tolist()))
    edited |= set(map(tuple, delta.insertions.tolist()))
    rebuilt = WebGraph.from_edges(graph.num_nodes, sorted(edited))
    assert np.array_equal(after.indptr, rebuilt.indptr)
    assert np.array_equal(after.indices, rebuilt.indices)
    assert (
        after.structural_fingerprint()
        == rebuilt.structural_fingerprint()
    )


# ----------------------------------------------------------------------
# rejection semantics
# ----------------------------------------------------------------------


def test_rejects_self_links_and_duplicates():
    with pytest.raises(DeltaError, match="self-link"):
        GraphDelta(insertions=[(3, 3)])
    with pytest.raises(DeltaError, match="self-link"):
        GraphDelta(deletions=[(0, 0)])
    with pytest.raises(DeltaError, match="duplicate"):
        GraphDelta(insertions=[(0, 1), (0, 1)])
    with pytest.raises(DeltaError, match="duplicate"):
        GraphDelta(deletions=[(2, 1), (2, 1)])
    with pytest.raises(DeltaError, match="both"):
        GraphDelta(insertions=[(0, 1)], deletions=[(0, 1)])
    with pytest.raises(DeltaError, match="negative"):
        GraphDelta(insertions=[(-1, 2)])
    with pytest.raises(DeltaError, match="pairs"):
        GraphDelta(insertions=[(0, 1, 2)])


def test_apply_rejects_semantic_conflicts():
    graph = WebGraph.from_edges(4, [(0, 1), (1, 2)])
    with pytest.raises(DeltaError, match="out of range"):
        GraphDelta(insertions=[(0, 9)]).apply(graph)
    with pytest.raises(DeltaError, match="already present"):
        GraphDelta(insertions=[(0, 1)]).apply(graph)
    with pytest.raises(DeltaError, match="not present"):
        GraphDelta(deletions=[(2, 3)]).apply(graph)


def test_empty_delta_is_identity():
    graph = WebGraph.from_edges(4, [(0, 1), (1, 2)])
    delta = GraphDelta()
    assert delta.is_empty() and len(delta) == 0
    after = delta.apply(graph).after
    assert np.array_equal(after.indptr, graph.indptr)
    assert np.array_equal(after.indices, graph.indices)
    assert (
        after.structural_fingerprint() == graph.structural_fingerprint()
    )


# ----------------------------------------------------------------------
# composition
# ----------------------------------------------------------------------


@st.composite
def graph_and_chain(draw):
    """A graph plus a chain of deltas, each valid against the last tip.

    Later deltas may delete edges earlier ones inserted (and re-insert
    edges earlier ones deleted), so composition's cancellation paths
    get exercised, not just disjoint unions.
    """
    n = draw(st.integers(min_value=4, max_value=40))
    num_edges = draw(st.integers(min_value=0, max_value=3 * n))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    length = draw(st.integers(min_value=1, max_value=4))
    rng = np.random.default_rng(seed)
    edges = {
        (int(u), int(v))
        for u, v in rng.integers(0, n, size=(num_edges, 2))
        if u != v
    }
    graph = WebGraph.from_edges(n, sorted(edges))
    chain = []
    tip = graph
    for _ in range(length):
        delta = _random_delta(
            tip,
            rng,
            num_ins=int(rng.integers(0, n)),
            num_del=int(rng.integers(0, max(tip.num_edges, 1))),
        )
        chain.append(delta)
        tip = delta.apply(tip).after
    return graph, chain


@settings(**SETTINGS)
@given(graph_and_chain())
def test_composed_splice_equals_sequential_splices(case):
    """One composed splice is bitwise the chain of individual splices."""
    graph, chain = case
    tip = graph
    for delta in chain:
        tip = delta.apply(tip).after
    composed = compose_deltas(chain)
    spliced = composed.apply(graph).after
    assert np.array_equal(spliced.indptr, tip.indptr)
    assert np.array_equal(spliced.indices, tip.indices)
    assert (
        spliced.structural_fingerprint() == tip.structural_fingerprint()
    )
    # net size: cancellations drop out of both edge lists
    assert spliced.num_edges == graph.num_edges + sum(
        d.num_insertions - d.num_deletions for d in chain
    )


@settings(**SETTINGS)
@given(graph_and_chain())
def test_compose_applications_matches_chain_endpoints(case):
    graph, chain = case
    applications = []
    tip = graph
    for delta in chain:
        application = delta.apply(tip)
        applications.append(application)
        tip = application.after
    composed = compose_applications(applications)
    assert composed.before is graph
    assert composed.after is tip
    respliced = composed.delta.apply(graph).after
    assert np.array_equal(respliced.indptr, tip.indptr)
    assert np.array_equal(respliced.indices, tip.indices)


def test_compose_cancels_opposing_edits():
    first = GraphDelta(insertions=[(0, 1), (2, 3)], deletions=[(4, 5)])
    second = GraphDelta(insertions=[(4, 5)], deletions=[(0, 1)])
    net = first.compose(second)
    assert net.num_insertions == 1  # only (2, 3) survives
    assert net.num_deletions == 0  # (4, 5) delete+re-insert cancels
    assert tuple(net.insertions[0]) == (2, 3)
    # full round trip composes to the identity
    assert first.compose(first.inverse()).is_empty()


def test_compose_rejects_conflicting_chains():
    with pytest.raises(DeltaError, match="inserted by both"):
        GraphDelta(insertions=[(0, 1)]).compose(
            GraphDelta(insertions=[(0, 1)])
        )
    with pytest.raises(DeltaError, match="deleted by both"):
        GraphDelta(deletions=[(0, 1)]).compose(
            GraphDelta(deletions=[(0, 1)])
        )


def test_compose_applications_rejects_broken_chains():
    graph = WebGraph.from_edges(4, [(0, 1), (1, 2)])
    first = GraphDelta(insertions=[(2, 3)]).apply(graph)
    unrelated = GraphDelta(insertions=[(3, 0)]).apply(graph)
    with pytest.raises(DeltaError, match="chain"):
        compose_applications([first, unrelated])
    with pytest.raises(DeltaError, match="empty"):
        compose_applications([])


# ----------------------------------------------------------------------
# file I/O
# ----------------------------------------------------------------------


def test_delta_file_round_trip(tmp_path):
    delta = GraphDelta(
        insertions=[(0, 1), (4, 2)], deletions=[(3, 0)]
    )
    path = tmp_path / "crawl.delta"
    write_delta(delta, path)
    loaded = read_delta(path)
    assert np.array_equal(loaded.insertions, delta.insertions)
    assert np.array_equal(loaded.deletions, delta.deletions)


def test_read_delta_rejects_malformed_lines(tmp_path):
    path = tmp_path / "bad.delta"
    path.write_text("+ 0 1\n* 2 3\n")
    with pytest.raises(GraphFormatError, match="bad.delta:2"):
        read_delta(path)
    path.write_text("+ 0 x\n")
    with pytest.raises(GraphFormatError, match="non-integer"):
        read_delta(path)
    # semantic validation still applies to parsed content
    path.write_text("+ 1 1\n")
    with pytest.raises(DeltaError, match="self-link"):
        read_delta(path)
