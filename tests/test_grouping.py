"""Unit tests for sample grouping (Table 2 / Figure 3 machinery)."""

import numpy as np
import pytest

from repro.eval import (
    LABEL_GOOD,
    LABEL_SPAM,
    LABEL_UNKNOWN,
    EvaluationSample,
    group_composition,
    split_into_groups,
)


def make_sample(num=100, seed=0):
    rng = np.random.default_rng(seed)
    nodes = np.arange(num)
    mass = rng.uniform(-5, 1, size=200)
    labels = [
        LABEL_SPAM if rng.random() < 0.3 else LABEL_GOOD for _ in range(num)
    ]
    anomalous = rng.random(num) < 0.1
    return EvaluationSample(nodes, labels, anomalous), mass


def test_group_count_and_sizes():
    sample, mass = make_sample(92)
    groups = split_into_groups(sample, mass, num_groups=20)
    assert len(groups) == 20
    sizes = [g.size for g in groups]
    assert sum(sizes) == 92
    # near-equal sizes: paper's 892/20 gives 44-48; here 4 or 5
    assert set(sizes) <= {4, 5}
    assert [g.index for g in groups] == list(range(1, 21))


def test_groups_sorted_by_mass():
    sample, mass = make_sample()
    groups = split_into_groups(sample, mass, num_groups=10)
    boundaries = [(g.smallest, g.largest) for g in groups]
    for (s1, l1), (s2, l2) in zip(boundaries, boundaries[1:]):
        assert l1 <= s2 + 1e-12
        assert s1 <= l1 and s2 <= l2


def test_group_membership_matches_mass_range():
    sample, mass = make_sample()
    groups = split_into_groups(sample, mass, num_groups=5)
    for g in groups:
        member_mass = mass[g.members]
        assert member_mass.min() == pytest.approx(g.smallest)
        assert member_mass.max() == pytest.approx(g.largest)


def test_composition_counts():
    nodes = np.array([0, 1, 2, 3])
    labels = [LABEL_GOOD, LABEL_SPAM, LABEL_GOOD, LABEL_UNKNOWN]
    anomalous = np.array([False, False, True, False])
    sample = EvaluationSample(nodes, labels, anomalous)
    mass = np.array([0.1, 0.2, 0.3, 0.4])
    (group,) = split_into_groups(sample, mass, num_groups=1)
    assert group.num_good == 1
    assert group.num_spam == 1
    assert group.num_anomalous == 1  # anomalous good counted separately
    assert group.num_excluded == 1
    assert group.usable == 3
    assert group.spam_fraction() == pytest.approx(1 / 3)


def test_spam_fraction_empty_group():
    nodes = np.array([0])
    sample = EvaluationSample(nodes, [LABEL_UNKNOWN], np.array([False]))
    (group,) = split_into_groups(sample, np.array([0.5]), num_groups=1)
    assert group.usable == 0
    assert group.spam_fraction() == 0.0


def test_group_composition_table():
    sample, mass = make_sample(60)
    groups = split_into_groups(sample, mass, num_groups=6)
    table = group_composition(groups)
    assert table["group"] == [1, 2, 3, 4, 5, 6]
    assert len(table["spam_fraction"]) == 6
    for i, g in enumerate(groups):
        assert table["usable"][i] == g.usable
        assert table["good"][i] == g.num_good


def test_validation():
    sample, mass = make_sample(5)
    with pytest.raises(ValueError):
        split_into_groups(sample, mass, num_groups=0)
    with pytest.raises(ValueError):
        split_into_groups(sample, mass, num_groups=10)
