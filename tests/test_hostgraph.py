"""Unit tests for the base-web generator (Section 4.1 statistics)."""

import numpy as np
import pytest

from repro.synth import BaseWebConfig, WorldAssembler, generate_base_web
from repro.synth.hostgraph import sample_targets


def build(rng, **kwargs):
    asm = WorldAssembler()
    base = generate_base_web(asm, rng, BaseWebConfig(**kwargs))
    return asm.build(), base


def test_default_fractions_match_paper(rng):
    world, _ = build(rng, num_hosts=20_000)
    stats = world.graph.stats()
    assert stats.frac_no_inlinks == pytest.approx(0.35, abs=0.02)
    assert stats.frac_no_outlinks == pytest.approx(0.664, abs=0.02)
    assert stats.frac_isolated == pytest.approx(0.258, abs=0.02)


def test_custom_fractions(rng):
    world, _ = build(
        rng,
        num_hosts=10_000,
        frac_isolated=0.1,
        frac_no_outlinks=0.4,
        frac_no_inlinks=0.3,
    )
    stats = world.graph.stats()
    assert stats.frac_isolated == pytest.approx(0.1, abs=0.02)
    assert stats.frac_no_outlinks == pytest.approx(0.4, abs=0.02)
    assert stats.frac_no_inlinks == pytest.approx(0.3, abs=0.02)


def test_class_handles_are_consistent(rng):
    world, base = build(rng, num_hosts=5_000)
    g = world.graph
    out_deg = g.out_degree()
    in_deg = g.in_degree()
    # active hosts emit links; linkable hosts receive them
    assert (out_deg[base.active] > 0).all()
    assert (in_deg[base.linkable] > 0).all()
    assert (out_deg[base.isolated] == 0).all()
    assert (in_deg[base.isolated] == 0).all()
    # connected hosts have both
    assert (out_deg[base.connected] > 0).all()
    assert (in_deg[base.connected] > 0).all()
    assert len(base.connected_popularity) == len(base.connected)


def test_destinations_only_linkable(rng):
    world, base = build(rng, num_hosts=5_000)
    linkable = set(base.linkable.tolist())
    dests = set(world.graph.indices.tolist())
    assert dests <= linkable


def test_indegree_is_heavy_tailed(rng):
    world, _ = build(rng, num_hosts=20_000)
    in_deg = world.graph.in_degree()
    mean = in_deg[in_deg > 0].mean()
    # a heavy tail: the max in-degree dwarfs the mean
    assert in_deg.max() > 20 * mean


def test_mean_outdegree_respected(rng):
    world, base = build(rng, num_hosts=10_000, mean_outdegree=10.0)
    out_deg = world.graph.out_degree()
    active_mean = out_deg[base.active].mean()
    # dedup and self-link removal lose a little, so allow slack
    assert active_mean == pytest.approx(10.0, rel=0.25)


def test_all_base_hosts_good(rng):
    world, _ = build(rng, num_hosts=2_000)
    assert not world.spam_mask.any()


def test_names_generated(rng):
    world, _ = build(rng, num_hosts=500)
    assert world.graph.names is not None
    assert all("." in name for name in world.graph.names)
    # names are unique
    assert len(set(world.graph.names)) == 500


def test_determinism():
    a, _ = build(np.random.default_rng(9), num_hosts=2_000)
    b, _ = build(np.random.default_rng(9), num_hosts=2_000)
    assert a.graph == b.graph


def test_config_validation():
    with pytest.raises(ValueError):
        BaseWebConfig(10)  # too few hosts
    with pytest.raises(ValueError):
        BaseWebConfig(1_000, frac_isolated=1.2)
    with pytest.raises(ValueError):
        BaseWebConfig(1_000, frac_no_outlinks=0.1, frac_isolated=0.3)
    with pytest.raises(ValueError):
        BaseWebConfig(
            1_000, frac_no_outlinks=0.7, frac_no_inlinks=0.6, frac_isolated=0.2
        )
    with pytest.raises(ValueError):
        BaseWebConfig(1_000, mean_outdegree=0.5)


def test_sample_targets_weighting(rng):
    candidates = np.array([10, 20, 30])
    weights = np.array([0.0, 0.0, 1.0])
    picks = sample_targets(rng, candidates, weights, 100)
    assert (picks == 30).all()
    with pytest.raises(ValueError):
        sample_targets(rng, np.array([]), np.array([]), 5)


def test_sample_targets_proportionality(rng):
    candidates = np.array([0, 1])
    weights = np.array([1.0, 3.0])
    picks = sample_targets(rng, candidates, weights, 40_000)
    assert (picks == 1).mean() == pytest.approx(0.75, abs=0.02)
