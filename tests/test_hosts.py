"""Unit tests for host-name parsing and the host registry."""

import pytest

from repro.graph import HostName, HostRegistry, clean_url, parse_host


class TestHostName:
    def test_simple_host(self):
        h = parse_host("www.example.com")
        assert h.tld == "com"
        assert h.suffix == "com"
        assert h.domain == "example.com"

    def test_composite_suffix(self):
        h = parse_host("blogA.blogger.com.br")
        assert h.suffix == "com.br"
        assert h.domain == "blogger.com.br"

    def test_paper_host_definition(self):
        # the paper counts www-cs and cs as distinct hosts
        a = parse_host("www-cs.stanford.edu")
        b = parse_host("cs.stanford.edu")
        assert a != b
        assert a.domain == b.domain == "stanford.edu"

    def test_case_and_trailing_dot_normalized(self):
        assert parse_host("WWW.Example.COM.").raw == "www.example.com"

    def test_bare_domain(self):
        h = parse_host("example.org")
        assert h.domain == "example.org"

    def test_single_label(self):
        h = parse_host("localhost")
        assert h.tld == "localhost"
        assert h.domain == "localhost"

    def test_subdomain_membership(self):
        h = parse_host("china.alibaba.com")
        assert h.is_subdomain_of("alibaba.com")
        assert h.is_subdomain_of("china.alibaba.com")
        assert not h.is_subdomain_of("balibaba.com")

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            parse_host("")
        with pytest.raises(ValueError):
            parse_host("a..b")

    def test_hashable(self):
        assert len({parse_host("a.com"), parse_host("A.com")}) == 1


class TestCleanUrl:
    def test_scheme_and_path_stripped(self):
        assert clean_url("http://www.foo.com/bar/baz") == "www.foo.com"
        assert clean_url("https://foo.com") == "foo.com"

    def test_port_and_credentials_stripped(self):
        assert clean_url("http://foo.com:8080/x") == "foo.com"
        assert clean_url("http://user:pw@foo.com/") == "foo.com"

    def test_broken_urls_return_none(self):
        assert clean_url("") is None
        assert clean_url("http://") is None
        assert clean_url("not a url") is None
        assert clean_url("http://nodots") is None
        assert clean_url("http://bad..host/") is None

    def test_no_scheme_accepted(self):
        assert clean_url("plain.example.net/path") == "plain.example.net"


class TestHostRegistry:
    def make(self):
        reg = HostRegistry()
        reg.register_all(
            [
                "www.nasa.gov",
                "www.epa.gov",
                "cs.stanford.edu",
                "china.alibaba.com",
                "www.alibaba.com",
                "blog1.blogger.com.br",
                "www.onet.pl",
            ]
        )
        return reg

    def test_roundtrip(self):
        reg = self.make()
        assert reg.id_of("www.nasa.gov") == 0
        assert reg.name_of(0) == "www.nasa.gov"
        assert "www.nasa.gov" in reg
        assert "missing.example" not in reg
        assert len(reg) == 7

    def test_duplicate_rejected(self):
        reg = self.make()
        with pytest.raises(ValueError):
            reg.register("WWW.NASA.GOV")

    def test_with_suffix_selects_gov(self):
        reg = self.make()
        assert reg.with_suffix(".gov") == [0, 1]
        assert reg.with_suffix("pl") == [6]
        # no false positive on partial label match
        assert 3 not in reg.with_suffix("libaba.com")

    def test_in_domain(self):
        reg = self.make()
        assert reg.in_domain("alibaba.com") == [3, 4]

    def test_domains_grouping(self):
        reg = self.make()
        groups = reg.domains()
        assert groups["alibaba.com"] == [3, 4]
        assert groups["blogger.com.br"] == [5]

    def test_names_and_iter(self):
        reg = self.make()
        assert reg.names()[2] == "cs.stanford.edu"
        assert list(reg.iter_ids()) == list(range(7))
