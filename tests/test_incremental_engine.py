"""Differential and integration tests for the incremental engine.

The contract under test: a Gauss–Southwell residual-push update runs at
the *same tolerance* as a cold solve and agrees with it to ``10 * tol``
per node — for both the uniform-jump ``p`` and the core-jump ``p′`` —
across the solver-zoo regimes, for insertion-, deletion- and mixed
deltas, chained updates, and the layers stacked on top (operator
splicing, ``estimate_spam_mass(previous=)``, ``MassDetector.update``,
``ReproductionContext.updated``, solution checkpoints).
"""

import numpy as np
import pytest

from repro.core.detector import MassDetector
from repro.core.mass import estimate_spam_mass
from repro.core.pagerank import (
    scaled_core_jump_vector,
    uniform_jump_vector,
)
from repro.errors import CheckpointError
from repro.graph import GraphDelta, compose_applications
from repro.graph.webgraph import WebGraph
from repro.perf import OperatorCache, PagerankEngine
from repro.perf.incremental import CORRECTION_ACCEPT, _deflate_residual
from repro.runtime import load_solution, save_solution
from test_differential_solvers import _random_graph

TOL = 1e-12
BOUND = 10 * TOL


def _edge_set(graph):
    sources = np.repeat(np.arange(graph.num_nodes), graph.out_degree())
    return set(zip(sources.tolist(), graph.indices.tolist()))


def _random_delta(graph, rng, num_ins, num_del):
    n = graph.num_nodes
    existing = _edge_set(graph)
    insertions = set()
    attempts = 0
    while len(insertions) < num_ins and attempts < 50 * num_ins:
        attempts += 1
        u, v = int(rng.integers(n)), int(rng.integers(n))
        if u != v and (u, v) not in existing and (u, v) not in insertions:
            insertions.add((u, v))
    deletions = []
    if existing and num_del:
        pool = sorted(existing)
        idx = rng.choice(len(pool), size=min(num_del, len(pool)),
                         replace=False)
        deletions = [pool[i] for i in idx]
    return GraphDelta(insertions=sorted(insertions), deletions=deletions)


def _stacked_jumps(graph, rng):
    """The spam-mass pair: uniform jump and a γ-scaled core jump."""
    n = graph.num_nodes
    core = np.sort(rng.choice(n, size=max(5, n // 10), replace=False))
    return np.stack(
        [uniform_jump_vector(n), scaled_core_jump_vector(n, core, 0.85)],
        axis=1,
    )


# ----------------------------------------------------------------------
# zoo differential: incremental vs cold at the same tol
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(n=300, num_edges=1800),
        dict(n=300, num_edges=900, dangling_frac=0.5),
        dict(n=300, num_edges=700, isolated_frac=0.4),
        dict(n=350, num_edges=1000, dangling_frac=0.3, isolated_frac=0.2),
    ],
    ids=["plain", "dangling-heavy", "isolated-heavy", "mixed"],
)
@pytest.mark.parametrize("seed", [0, 1])
def test_update_matches_cold_solve_on_zoo(kwargs, seed):
    graph = _random_graph(seed, **kwargs)
    rng = np.random.default_rng(100 + seed)
    stacked = _stacked_jumps(graph, rng)
    delta = _random_delta(graph, rng, num_ins=30, num_del=15)
    application = delta.apply(graph)

    engine = PagerankEngine()
    base = engine.solve_many(graph, stacked, tol=TOL)
    inc = engine.update_many(application, base, stacked, tol=TOL)
    cold = PagerankEngine().solve_many(application.after, stacked, tol=TOL)

    assert inc.converged.all()
    assert np.abs(inc.scores - cold.scores).max() <= BOUND


def test_update_matches_cold_on_deletion_heavy_delta():
    graph = _random_graph(3, n=250, num_edges=1500)
    rng = np.random.default_rng(9)
    stacked = _stacked_jumps(graph, rng)
    delta = _random_delta(graph, rng, num_ins=0, num_del=60)
    application = delta.apply(graph)

    engine = PagerankEngine()
    base = engine.solve_many(graph, stacked, tol=TOL)
    inc = engine.update_many(application, base, stacked, tol=TOL)
    cold = PagerankEngine().solve_many(application.after, stacked, tol=TOL)
    assert np.abs(inc.scores - cold.scores).max() <= BOUND


def test_empty_delta_returns_previous_scores_in_zero_sweeps():
    graph = _random_graph(4, n=200, num_edges=1200)
    rng = np.random.default_rng(4)
    stacked = _stacked_jumps(graph, rng)
    engine = PagerankEngine()
    base = engine.solve_many(graph, stacked, tol=TOL)
    inc = engine.update_many(
        GraphDelta().apply(graph), base, stacked, tol=TOL
    )
    assert inc.converged.all()
    assert inc.stats.sweeps == 0
    assert np.abs(inc.scores - base.scores).max() <= BOUND


def test_chained_updates_track_the_cold_solution():
    graph = _random_graph(5, n=250, num_edges=1400, dangling_frac=0.3)
    rng = np.random.default_rng(5)
    stacked = _stacked_jumps(graph, rng)
    engine = PagerankEngine()
    current = engine.solve_many(graph, stacked, tol=TOL)
    for step in range(3):
        delta = _random_delta(graph, rng, num_ins=20, num_del=8)
        application = delta.apply(graph)
        current = engine.update_many(application, current, stacked, tol=TOL)
        graph = application.after
    cold = PagerankEngine().solve_many(graph, stacked, tol=TOL)
    assert np.abs(current.scores - cold.scores).max() <= BOUND


def test_update_many_validates_previous_shape():
    graph = WebGraph.from_edges(5, [(0, 1), (1, 2)])
    application = GraphDelta(insertions=[(2, 3)]).apply(graph)
    engine = PagerankEngine()
    with pytest.raises(ValueError, match="previous scores"):
        engine.update_many(
            application, np.zeros((5, 3)), [None, [0, 1]], tol=TOL
        )


# ----------------------------------------------------------------------
# delta coalescing, escape profile, deflation, adaptive escapes
# ----------------------------------------------------------------------


def _chained_applications(graph, rng, steps=3):
    applications = []
    tip = graph
    for _ in range(steps):
        delta = _random_delta(tip, rng, num_ins=20, num_del=8)
        application = delta.apply(tip)
        applications.append(application)
        tip = application.after
    return applications, tip


def test_update_many_coalesces_application_chains():
    """A chain passed to ``update_many`` is one composed warm solve.

    Bitwise identical to pre-composing the chain by hand, and within
    the usual ``10 * tol`` of the cold solve on the final graph.
    """
    graph = _random_graph(21, n=300, num_edges=1600, dangling_frac=0.3)
    rng = np.random.default_rng(21)
    stacked = _stacked_jumps(graph, rng)
    applications, final = _chained_applications(graph, rng)

    engine = PagerankEngine()
    base = engine.solve_many(graph, stacked, tol=TOL)
    coalesced = engine.update_many(applications, base, stacked, tol=TOL)

    other = PagerankEngine()
    other.cache.bundle_for(graph)
    precomposed = other.update_many(
        compose_applications(applications), base, stacked, tol=TOL
    )
    assert np.array_equal(coalesced.scores, precomposed.scores)
    assert coalesced.stats.pushes == precomposed.stats.pushes

    cold = PagerankEngine().solve_many(final, stacked, tol=TOL)
    assert np.abs(coalesced.scores - cold.scores).max() <= BOUND


def test_diffuse_update_escapes_and_records_the_profile():
    """A delta rescaling many live out-rows escapes immediately.

    Touched sources that already have outlinks rescale their whole row,
    so the seed frontier is wide *and* live — the early-escape
    condition — and the stats must say so.
    """
    graph = _random_graph(22, n=400, num_edges=2400)
    rng = np.random.default_rng(22)
    stacked = _stacked_jumps(graph, rng)
    delta = _random_delta(graph, rng, num_ins=120, num_del=0)
    application = delta.apply(graph)

    engine = PagerankEngine()
    base = engine.solve_many(graph, stacked, tol=TOL)
    inc = engine.update_many(application, base, stacked, tol=TOL)

    stats = inc.stats
    assert stats.escapes == 1
    assert stats.seed_frontier > 0
    assert stats.live_seed_frontier > 0
    assert stats.escape_sweeps > 0
    assert stats.polish_sweeps == 0  # float64 path has no polish phase
    for key in (
        "seed_frontier",
        "live_seed_frontier",
        "escapes",
        "escape_sweeps",
        "correction_cols",
        "correction_gain",
        "polish_sweeps",
    ):
        assert key in stats.as_dict()

    cold = PagerankEngine().solve_many(application.after, stacked, tol=TOL)
    assert np.abs(inc.scores - cold.scores).max() <= BOUND


def test_farm_update_stays_on_the_push_path():
    """Leaf-local churn (dangling targets) must never trigger an escape."""
    graph = _random_graph(23, n=300, num_edges=600, dangling_frac=0.7)
    rng = np.random.default_rng(23)
    stacked = _stacked_jumps(graph, rng)
    out_deg = np.diff(graph.indptr)
    silent = np.flatnonzero(out_deg == 0)
    sources = rng.choice(silent, size=5, replace=False)
    insertions = []
    for src in sources:
        pool = silent[silent != src]
        insertions.extend(
            (int(src), int(t))
            for t in rng.choice(pool, size=15, replace=False)
        )
    application = GraphDelta(insertions=sorted(set(insertions))).apply(
        graph
    )
    engine = PagerankEngine()
    base = engine.solve_many(graph, stacked, tol=TOL)
    inc = engine.update_many(application, base, stacked, tol=TOL)
    assert inc.stats.escapes == 0
    assert inc.stats.max_frontier < graph.num_nodes
    cold = PagerankEngine().solve_many(application.after, stacked, tol=TOL)
    assert np.abs(inc.scores - cold.scores).max() <= BOUND


def test_deflate_residual_accepts_in_span_and_rejects_noise():
    graph = _random_graph(24, n=120, num_edges=700)
    rng = np.random.default_rng(24)
    bundle = OperatorCache().bundle_for(graph)
    c = 0.85
    tt = bundle.transition_t
    basis = rng.random((graph.num_nodes, 2))
    image = basis - c * (tt @ basis)

    # residual exactly in the image span: accepted, near-zero remainder
    residual = image @ np.array([[0.7, 0.0], [0.0, -0.4]])
    start, deflated, gains, accepted = _deflate_residual(
        bundle, residual, basis, c
    )
    assert accepted.all()
    assert gains.max() < 1e-8
    assert np.abs(deflated).max() < 1e-10 * np.abs(residual).max()
    # the warm start is the known solve of the deflated component
    assert np.allclose(start, basis @ [[0.7, 0.0], [0.0, -0.4]])

    # residual orthogonal to the image span: projection removes nothing,
    # the guard rejects and hands the original residual through untouched
    noise = rng.random((graph.num_nodes, 1))
    q, _ = np.linalg.qr(image)
    orthogonal = noise - q @ (q.T @ noise)
    start, deflated, gains, accepted = _deflate_residual(
        bundle, orthogonal, basis, c
    )
    assert not accepted.any()
    assert start is None
    assert deflated is orthogonal
    assert gains.min() > CORRECTION_ACCEPT


def test_adaptive_escape_matches_float64_within_bound():
    graph = _random_graph(25, n=400, num_edges=2400)
    rng = np.random.default_rng(25)
    stacked = _stacked_jumps(graph, rng)
    delta = _random_delta(graph, rng, num_ins=120, num_del=0)
    application = delta.apply(graph)

    engine = PagerankEngine(precision="adaptive")
    base = engine.solve_many(graph, stacked, tol=TOL)
    inc = engine.update_many(application, base, stacked, tol=TOL)
    assert inc.stats.escapes == 1
    assert inc.stats.polish_sweeps > 0  # float64 polish phase ran

    cold = PagerankEngine().solve_many(application.after, stacked, tol=TOL)
    assert np.abs(inc.scores - cold.scores).max() <= BOUND


# ----------------------------------------------------------------------
# operator splice
# ----------------------------------------------------------------------


def test_derived_operator_is_bit_identical_to_cold_build():
    graph = _random_graph(6, n=200, num_edges=1200, dangling_frac=0.4)
    rng = np.random.default_rng(6)
    delta = _random_delta(graph, rng, num_ins=25, num_del=10)
    application = delta.apply(graph)

    cache = OperatorCache()
    cache.bundle_for(graph)  # parent resident
    spliced = cache.derive_for(application).transition_t
    cold = OperatorCache().bundle_for(application.after).transition_t

    assert np.array_equal(spliced.indptr, cold.indptr)
    assert np.array_equal(spliced.indices, cold.indices)
    assert np.array_equal(spliced.data, cold.data)
    assert cache.derives == 1
    # the derived child is registered: a second request is a cache hit
    hits_before = cache.hits
    cache.derive_for(application)
    assert cache.hits == hits_before + 1


def test_derive_falls_back_to_cold_build_without_parent():
    graph = _random_graph(7, n=100, num_edges=500)
    rng = np.random.default_rng(7)
    application = _random_delta(graph, rng, 10, 5).apply(graph)
    cache = OperatorCache()  # parent never built
    bundle = cache.derive_for(application)
    assert cache.derives == 0
    cold = OperatorCache().bundle_for(application.after)
    assert np.array_equal(
        bundle.transition_t.data, cold.transition_t.data
    )


# ----------------------------------------------------------------------
# estimate_spam_mass(previous=) and the detector update
# ----------------------------------------------------------------------


def _small_world_delta(graph, rng):
    return _random_delta(graph, rng, num_ins=25, num_del=10)


def test_estimate_previous_path_matches_cold_estimate():
    graph = _random_graph(8, n=300, num_edges=1500, dangling_frac=0.4)
    rng = np.random.default_rng(8)
    core = np.sort(rng.choice(300, size=30, replace=False))
    previous = estimate_spam_mass(graph, core, gamma=0.85)
    application = _small_world_delta(graph, rng).apply(graph)

    updated = estimate_spam_mass(
        application, core, gamma=0.85, previous=previous
    )
    cold = estimate_spam_mass(application.after, core, gamma=0.85)
    assert np.abs(updated.pagerank - cold.pagerank).max() <= BOUND
    assert np.abs(updated.core_pagerank - cold.core_pagerank).max() <= BOUND


def test_estimate_previous_path_validates_inputs():
    graph = _random_graph(9, n=50, num_edges=200)
    rng = np.random.default_rng(9)
    core = [0, 1, 2]
    previous = estimate_spam_mass(graph, core, gamma=0.85)
    application = _random_delta(graph, rng, 5, 2).apply(graph)
    with pytest.raises(ValueError, match="DeltaApplication"):
        estimate_spam_mass(graph, core, gamma=0.85, previous=previous)
    with pytest.raises(ValueError, match="different"):
        estimate_spam_mass(
            application, core, gamma=0.5, previous=previous
        )
    with pytest.raises(ValueError, match="incremental engine"):
        estimate_spam_mass(
            application,
            core,
            gamma=0.85,
            previous=previous,
            transition_t=object(),
        )


def test_detector_update_equals_fresh_detect():
    graph = _random_graph(10, n=300, num_edges=1500, dangling_frac=0.4)
    rng = np.random.default_rng(10)
    core = np.sort(rng.choice(300, size=30, replace=False))
    previous = estimate_spam_mass(graph, core, gamma=0.85)
    detector = MassDetector(tau=0.5, rho=2.0)
    baseline = detector.detect(previous)

    application = _small_world_delta(graph, rng).apply(graph)
    updated_est = estimate_spam_mass(
        application, core, gamma=0.85, previous=previous
    )
    update = detector.update(baseline, updated_est)
    fresh = detector.detect(updated_est)

    assert np.array_equal(
        update.result.candidate_mask, fresh.candidate_mask
    )
    assert np.array_equal(
        update.result.eligible_mask, fresh.eligible_mask
    )
    flipped = np.flatnonzero(
        fresh.candidate_mask != baseline.candidate_mask
    )
    assert set(update.newly_flagged) | set(update.newly_cleared) == set(
        flipped
    )
    assert update.relabeled == len(flipped)


def test_detector_update_rejects_size_mismatch():
    graph = _random_graph(11, n=40, num_edges=150)
    est = estimate_spam_mass(graph, [0, 1, 2], gamma=0.85)
    detector = MassDetector(tau=0.5, rho=2.0)
    baseline = detector.detect(est)
    other = estimate_spam_mass(
        _random_graph(11, n=41, num_edges=150), [0, 1, 2], gamma=0.85
    )
    with pytest.raises(ValueError, match="nodes"):
        detector.update(baseline, other)


def test_reproduction_context_updated(small_ctx):
    rng = np.random.default_rng(21)
    delta = _random_delta(small_ctx.graph, rng, num_ins=40, num_del=15)
    ctx = small_ctx.updated(delta)

    assert ctx is not small_ctx
    assert ctx.gamma == small_ctx.gamma and ctx.rho == small_ctx.rho
    assert np.array_equal(ctx.core, small_ctx.core)
    assert ctx.graph.num_edges == small_ctx.graph.num_edges + 25

    cold = estimate_spam_mass(
        ctx.graph, ctx.core, gamma=ctx.gamma
    )
    assert np.abs(ctx.estimates.pagerank - cold.pagerank).max() <= BOUND
    expected_eligible = cold.scaled_pagerank() >= ctx.rho
    assert np.array_equal(ctx.eligible_mask, expected_eligible)


# ----------------------------------------------------------------------
# telemetry
# ----------------------------------------------------------------------


def test_update_emits_incremental_telemetry(telemetry):
    graph = _random_graph(12, n=150, num_edges=800)
    rng = np.random.default_rng(12)
    stacked = _stacked_jumps(graph, rng)
    engine = PagerankEngine()
    base = engine.solve_many(graph, stacked, tol=TOL)
    application = _random_delta(graph, rng, 15, 5).apply(graph)
    result = engine.update_many(application, base, stacked, tol=TOL)

    sink = telemetry.sink
    assert sink.span_count("solve:incremental") == 1
    assert sink.span_count("operator-derive") == 1
    events = sink.named("incremental.update")
    assert len(events) == 1
    assert events[0].attrs["sweeps"] == result.stats.sweeps
    assert events[0].attrs["pushes"] == result.stats.pushes
    assert telemetry.metrics.value("engine.incremental_updates") == 1
    assert telemetry.metrics.value("opcache.derives") == 1
    assert (
        telemetry.metrics.value("incremental.pushes")
        == result.stats.pushes
    )


def test_detector_update_emits_relabel_metrics(telemetry):
    graph = _random_graph(13, n=150, num_edges=800)
    rng = np.random.default_rng(13)
    core = np.sort(rng.choice(150, size=15, replace=False))
    est = estimate_spam_mass(graph, core, gamma=0.85)
    detector = MassDetector(tau=0.5, rho=2.0)
    baseline = detector.detect(est)
    application = _random_delta(graph, rng, 15, 5).apply(graph)
    updated_est = estimate_spam_mass(
        application, core, gamma=0.85, previous=est
    )
    update = detector.update(baseline, updated_est)
    assert telemetry.sink.span_count("detect:update") == 1
    assert (
        telemetry.metrics.value("detect.relabeled") == update.relabeled
    )


# ----------------------------------------------------------------------
# solution checkpoints (resume-as-previous)
# ----------------------------------------------------------------------


def test_solution_snapshot_round_trip(tmp_path):
    graph = _random_graph(14, n=80, num_edges=300)
    rng = np.random.default_rng(14)
    stacked = _stacked_jumps(graph, rng)
    batch = PagerankEngine().solve_many(graph, stacked, tol=TOL)
    fingerprint = graph.structural_fingerprint()

    path = save_solution(
        tmp_path,
        batch.scores,
        fingerprint=fingerprint,
        iterations=batch.iterations,
        extra={"labels": ["pagerank", "core"]},
    )
    assert path.name == "solution.npz"

    snap = load_solution(tmp_path, fingerprint=fingerprint)
    assert np.array_equal(snap.scores, batch.scores)
    assert np.array_equal(snap.iterations, batch.iterations)
    assert snap.fingerprint == fingerprint
    assert snap.meta["labels"] == ["pagerank", "core"]


def test_solution_snapshot_fingerprint_guard(tmp_path):
    graph = _random_graph(15, n=60, num_edges=250)
    rng = np.random.default_rng(15)
    stacked = _stacked_jumps(graph, rng)
    batch = PagerankEngine().solve_many(graph, stacked, tol=TOL)
    save_solution(
        tmp_path,
        batch.scores,
        fingerprint=graph.structural_fingerprint(),
    )
    mutated = GraphDelta(insertions=[(0, 59)]).apply(graph).after
    with pytest.raises(CheckpointError, match="fingerprint"):
        load_solution(
            tmp_path, fingerprint=mutated.structural_fingerprint()
        )


def test_solution_snapshot_missing_file(tmp_path):
    with pytest.raises(CheckpointError, match="no solution snapshot"):
        load_solution(tmp_path)
