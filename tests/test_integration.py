"""End-to-end integration tests: world → core → estimates → detection →
evaluation, plus serialization round trips of a full pipeline."""

import numpy as np
import pytest

from repro.core import (
    MassDetector,
    detect_spam,
    estimate_spam_mass,
    true_relative_mass,
)
from repro.eval import (
    build_evaluation_sample,
    detection_metrics,
    precision_curve,
    split_into_groups,
)
from repro.graph import read_graph_bundle, read_scores, write_graph_bundle, write_scores
from repro.synth import (
    WorldConfig,
    build_world,
    default_good_core,
    repair_core,
    true_gamma,
)


def test_full_pipeline_on_small_world(small_ctx):
    """The complete Section 4 pipeline holds together: high precision at
    tau = 0.98 once anomalies are accounted for, and the detector's
    candidate set is dominated by genuine heavy-weight link spam."""
    detector = MassDetector(tau=0.98, rho=10.0)
    result = detector.detect(small_ctx.estimates)
    metrics = detection_metrics(
        result.candidate_mask,
        small_ctx.world.spam_mask,
        restrict_to=small_ctx.eligible_mask,
    )
    assert metrics["precision"] > 0.5
    # with anomalous communities removed from the universe, precision
    # approaches the paper's ~100%
    anomalous_mask = np.zeros(small_ctx.world.num_nodes, dtype=bool)
    anomalous_mask[small_ctx.world.anomalous_nodes()] = True
    clean = detection_metrics(
        result.candidate_mask,
        small_ctx.world.spam_mask,
        restrict_to=small_ctx.eligible_mask & ~anomalous_mask,
    )
    assert clean["precision"] >= 0.95


def test_core_repair_pipeline(small_ctx):
    """Repairing the core (Section 4.4.2) lifts precision with anomalies
    included."""
    hubs = small_ctx.world.group("portal:megaportal.com:hubs")
    repaired = repair_core(small_ctx.core, hubs)
    estimates = estimate_spam_mass(
        small_ctx.graph, repaired, gamma=small_ctx.gamma
    )
    before = precision_curve(
        small_ctx.sample, small_ctx.estimates.relative, (0.98,)
    )[0]
    after = precision_curve(small_ctx.sample, estimates.relative, (0.98,))[0]
    assert after.precision >= before.precision


def test_pipeline_determinism():
    config = WorldConfig.small(seed=99)
    a = build_world(config)
    b = build_world(config)
    core_a = default_good_core(a)
    core_b = default_good_core(b)
    assert np.array_equal(core_a, core_b)
    est_a = estimate_spam_mass(a.graph, core_a)
    est_b = estimate_spam_mass(b.graph, core_b)
    assert np.array_equal(est_a.relative, est_b.relative)


def test_serialization_roundtrip_preserves_detection(tmp_path, tiny_world):
    """Persist the world, reload it, and get bit-identical detection."""
    core = default_good_core(tiny_world)
    labels = {
        int(i): ("spam" if tiny_world.spam_mask[i] else "good")
        for i in range(tiny_world.num_nodes)
    }
    write_graph_bundle(
        tiny_world.graph,
        tmp_path / "world",
        labels=labels,
        metadata={"gamma": 0.85},
    )
    graph, loaded_labels, meta = read_graph_bundle(tmp_path / "world")
    assert graph == tiny_world.graph
    assert meta == {"gamma": 0.85}

    original = detect_spam(tiny_world.graph, core, tau=0.9, rho=10.0)
    reloaded = detect_spam(graph, core, tau=0.9, rho=10.0)
    assert np.array_equal(original.candidate_mask, reloaded.candidate_mask)

    # score vectors survive exactly too
    est = estimate_spam_mass(tiny_world.graph, core)
    write_scores(est.relative, tmp_path / "rel.scores")
    assert np.array_equal(read_scores(tmp_path / "rel.scores"), est.relative)


def test_estimator_tracks_oracle_on_fresh_world(rng):
    """Build a fresh world (different seed from fixtures) and verify the
    estimated relative mass orders spam above good among eligible
    non-anomalous hosts."""
    config = WorldConfig.small(seed=31)
    world = build_world(config)
    core = default_good_core(world)
    est = estimate_spam_mass(world.graph, core, gamma=true_gamma(world))
    eligible = est.scaled_pagerank() >= 10
    anomalous = np.zeros(world.num_nodes, dtype=bool)
    anomalous[world.anomalous_nodes()] = True
    spam_rel = est.relative[eligible & world.spam_mask]
    good_rel = est.relative[eligible & ~world.spam_mask & ~anomalous]
    assert spam_rel.mean() - good_rel.mean() > 0.5


def test_sample_grouping_pipeline(small_ctx):
    groups = split_into_groups(
        small_ctx.sample, small_ctx.estimates.relative, num_groups=10
    )
    # the grouping covers the whole sample and respects the filter
    assert sum(g.size for g in groups) == len(small_ctx.sample)
    scaled = small_ctx.estimates.scaled_pagerank()
    for g in groups:
        assert (scaled[g.members] >= small_ctx.rho - 1e-9).all()


def test_sampled_evaluation_approximates_full(small_ctx, rng):
    """A 50% uniform sample yields precision estimates close to the
    full-population ones (the paper's 0.1% sample logic)."""
    eligible_nodes = np.flatnonzero(small_ctx.eligible_mask)
    sample = build_evaluation_sample(
        small_ctx.world, eligible_nodes, rng, fraction=0.5
    )
    full = precision_curve(
        small_ctx.sample, small_ctx.estimates.relative, (0.45,)
    )[0]
    half = precision_curve(sample, small_ctx.estimates.relative, (0.45,))[0]
    assert half.precision == pytest.approx(full.precision, abs=0.2)
