"""Unit tests for graph/label/score serialization."""

import numpy as np
import pytest

from repro.graph import (
    WebGraph,
    read_edge_list,
    read_graph_bundle,
    read_host_list,
    read_labels,
    read_scores,
    write_edge_list,
    write_graph_bundle,
    write_host_list,
    write_labels,
    write_scores,
)


@pytest.fixture()
def sample_graph():
    return WebGraph.from_edges(
        4, [(0, 1), (1, 2), (2, 0), (0, 3)], names=["a.com", "b.com", "c.com", "d.com"]
    )


def test_edge_list_roundtrip(tmp_path, sample_graph):
    path = tmp_path / "g.edges"
    write_edge_list(sample_graph, path)
    loaded = read_edge_list(path)
    assert loaded == sample_graph


def test_edge_list_gzip_roundtrip(tmp_path, sample_graph):
    path = tmp_path / "g.edges.gz"
    write_edge_list(sample_graph, path)
    assert read_edge_list(path) == sample_graph


def test_edge_list_preserves_isolated_nodes(tmp_path):
    g = WebGraph.from_edges(10, [(0, 1)])
    path = tmp_path / "g.edges"
    write_edge_list(g, path)
    assert read_edge_list(path).num_nodes == 10


def test_edge_list_rejects_malformed(tmp_path):
    bad = tmp_path / "bad.edges"
    bad.write_text("# header\nnot-a-number\n")
    with pytest.raises(ValueError):
        read_edge_list(bad)
    bad.write_text("3\n1 2 3\n")
    with pytest.raises(ValueError):
        read_edge_list(bad)
    bad.write_text("# only comments\n")
    with pytest.raises(ValueError):
        read_edge_list(bad)


def test_host_list_roundtrip(tmp_path):
    names = ["www.a.com", "b.org", "sub.c.net"]
    path = tmp_path / "hosts.txt"
    write_host_list(names, path)
    assert read_host_list(path) == names


def test_host_list_rejects_newlines(tmp_path):
    with pytest.raises(ValueError):
        write_host_list(["bad\nname"], tmp_path / "h.txt")


def test_labels_roundtrip(tmp_path):
    labels = {0: "good", 3: "spam", 7: "unknown"}
    path = tmp_path / "l.labels"
    write_labels(labels, path)
    assert read_labels(path) == labels


def test_labels_reject_whitespace(tmp_path):
    with pytest.raises(ValueError):
        write_labels({0: "two words"}, tmp_path / "l.labels")


def test_labels_reject_malformed_line(tmp_path):
    bad = tmp_path / "bad.labels"
    bad.write_text("0 good extra\n")
    with pytest.raises(ValueError):
        read_labels(bad)


def test_scores_roundtrip_exact(tmp_path):
    scores = np.array([0.1, 1e-17, 3.25, -2.5])
    path = tmp_path / "s.scores"
    write_scores(scores, path)
    loaded = read_scores(path)
    # repr-based format preserves doubles exactly
    assert np.array_equal(loaded, scores)


def test_scores_empty(tmp_path):
    path = tmp_path / "empty.scores"
    write_scores(np.array([]), path)
    assert read_scores(path).size == 0


def test_bundle_roundtrip(tmp_path, sample_graph):
    labels = {0: "good", 1: "spam"}
    meta = {"seed": 7, "kind": "test"}
    out = write_graph_bundle(
        sample_graph, tmp_path / "bundle", labels=labels, metadata=meta
    )
    graph, loaded_labels, loaded_meta = read_graph_bundle(out)
    assert graph == sample_graph
    assert graph.names == sample_graph.names
    assert loaded_labels == labels
    assert loaded_meta == meta


def test_bundle_compressed(tmp_path, sample_graph):
    out = write_graph_bundle(sample_graph, tmp_path / "bz", compress=True)
    assert (out / "graph.edges.gz").exists()
    graph, labels, meta = read_graph_bundle(out)
    assert graph == sample_graph
    assert labels is None and meta is None


def test_bundle_missing_graph(tmp_path):
    with pytest.raises(FileNotFoundError):
        read_graph_bundle(tmp_path)


def test_npz_roundtrip(tmp_path, sample_graph):
    from repro.graph import read_npz, write_npz

    path = tmp_path / "g.npz"
    write_npz(sample_graph, path)
    loaded = read_npz(path)
    assert loaded == sample_graph
    assert loaded.names == sample_graph.names


def test_npz_without_names(tmp_path):
    from repro.graph import read_npz, write_npz

    g = WebGraph.from_edges(6, [(0, 1), (4, 5)])
    path = tmp_path / "g.npz"
    write_npz(g, path)
    loaded = read_npz(path)
    assert loaded == g
    assert loaded.names is None


# ----------------------------------------------------------------------
# corrupted input: strict raises typed errors, lenient skips + warns
# ----------------------------------------------------------------------


def test_truncated_gzip_edge_list_raises_typed_error(tmp_path, sample_graph):
    from repro.graph import GraphFormatError, TruncatedFileError

    path = tmp_path / "g.edges.gz"
    write_edge_list(sample_graph, path)
    raw = path.read_bytes()
    path.write_bytes(raw[: len(raw) // 2])
    with pytest.raises(TruncatedFileError):
        read_edge_list(path)
    # truncation is unrecoverable: lenient mode raises too
    with pytest.raises(TruncatedFileError):
        read_edge_list(path, strict=False)
    # and the typed error is still a GraphFormatError/ValueError
    assert issubclass(TruncatedFileError, GraphFormatError)
    assert issubclass(TruncatedFileError, ValueError)


def test_truncated_npz_raises_typed_error(tmp_path, sample_graph):
    from repro.graph import TruncatedFileError, read_npz, write_npz

    path = tmp_path / "g.npz"
    write_npz(sample_graph, path)
    raw = path.read_bytes()
    path.write_bytes(raw[: len(raw) // 2])
    with pytest.raises(TruncatedFileError):
        read_npz(path)


def test_edge_list_non_integer_tokens(tmp_path):
    from repro.graph import GraphFormatError, GraphIOWarning

    path = tmp_path / "g.edges"
    path.write_text("4\n0 1\n1 x2\n2 3\n")
    with pytest.raises(GraphFormatError, match="non-integer"):
        read_edge_list(path)
    with pytest.warns(GraphIOWarning) as record:
        g = read_edge_list(path, strict=False)
    assert g.num_nodes == 4
    assert sorted(g.edges()) == [(0, 1), (2, 3)]
    assert record[0].message.counts["malformed"] == 1


def test_edge_list_id_out_of_range(tmp_path):
    from repro.graph import GraphFormatError, GraphIOWarning

    path = tmp_path / "g.edges"
    path.write_text("3\n0 1\n1 3\n2 0\n")  # id 3 >= num_nodes 3
    with pytest.raises(GraphFormatError, match="out of range"):
        read_edge_list(path)
    with pytest.warns(GraphIOWarning) as record:
        g = read_edge_list(path, strict=False)
    assert sorted(g.edges()) == [(0, 1), (2, 0)]
    assert record[0].message.counts["out-of-range"] == 1


def test_edge_list_negative_ids(tmp_path):
    from repro.graph import GraphFormatError, GraphIOWarning

    path = tmp_path / "g.edges"
    path.write_text("3\n0 1\n-1 2\n")
    with pytest.raises(GraphFormatError):
        read_edge_list(path)
    with pytest.warns(GraphIOWarning):
        g = read_edge_list(path, strict=False)
    assert sorted(g.edges()) == [(0, 1)]


def test_edge_list_empty_file(tmp_path):
    from repro.graph import GraphFormatError

    path = tmp_path / "empty.edges"
    path.write_text("")
    with pytest.raises(GraphFormatError, match="header"):
        read_edge_list(path)
    # the header is structural: lenient mode cannot invent one
    with pytest.raises(GraphFormatError, match="header"):
        read_edge_list(path, strict=False)


def test_edge_list_lenient_counts_duplicates(tmp_path):
    from repro.graph import GraphIOWarning

    path = tmp_path / "g.edges"
    path.write_text("3\n0 1\n0 1\n1 1\n1 2\n")
    with pytest.warns(GraphIOWarning) as record:
        g = read_edge_list(path, strict=False)
    counts = record[0].message.counts
    assert counts["duplicate"] == 1
    assert counts["self-link"] == 1
    assert sorted(g.edges()) == [(0, 1), (1, 2)]


def test_edge_list_strict_is_the_default(tmp_path):
    path = tmp_path / "g.edges"
    path.write_text("2\n0 zzz\n")
    with pytest.raises(ValueError):  # backward-compatible type
        read_edge_list(path)


def test_labels_lenient_skips_and_warns(tmp_path):
    from repro.graph import GraphFormatError, GraphIOWarning

    path = tmp_path / "l.labels"
    path.write_text("0 good\nbroken line here\n2 spam\n-1 spam\n")
    with pytest.raises(GraphFormatError):
        read_labels(path)
    with pytest.warns(GraphIOWarning) as record:
        labels = read_labels(path, strict=False)
    assert labels == {0: "good", 2: "spam"}
    assert record[0].message.counts["malformed"] == 2


def test_scores_lenient_skips_and_warns(tmp_path):
    from repro.graph import GraphFormatError, GraphIOWarning

    path = tmp_path / "s.scores"
    path.write_text("0 0.5\n1 not-a-float\n2 0.25\n")
    with pytest.raises(GraphFormatError):
        read_scores(path)
    with pytest.warns(GraphIOWarning):
        scores = read_scores(path, strict=False)
    assert scores[0] == 0.5 and scores[2] == 0.25


def test_write_failure_leaves_no_partial_file(tmp_path, sample_graph, monkeypatch):
    import repro.graph.io as io_mod

    def always_fail(src, dst):
        raise OSError("disk on fire")

    monkeypatch.setattr(io_mod.os, "replace", always_fail)
    monkeypatch.setattr(io_mod, "with_retries", lambda fn, **kw: fn())
    path = tmp_path / "g.edges"
    with pytest.raises(OSError):
        write_edge_list(sample_graph, path)
    monkeypatch.undo()
    # neither the final file nor a stale tmp survives the failed write
    assert list(tmp_path.iterdir()) == []


def test_bundle_lenient_mode_threads_through(tmp_path, sample_graph):
    from repro.graph import GraphFormatError, GraphIOWarning

    out = write_graph_bundle(sample_graph, tmp_path / "bundle")
    edges = out / "graph.edges"
    edges.write_text(edges.read_text() + "bad line!\n")
    with pytest.raises(GraphFormatError):
        read_graph_bundle(out)
    with pytest.warns(GraphIOWarning):
        graph, _, _ = read_graph_bundle(out, strict=False)
    assert graph == sample_graph
