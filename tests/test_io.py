"""Unit tests for graph/label/score serialization."""

import numpy as np
import pytest

from repro.graph import (
    WebGraph,
    read_edge_list,
    read_graph_bundle,
    read_host_list,
    read_labels,
    read_scores,
    write_edge_list,
    write_graph_bundle,
    write_host_list,
    write_labels,
    write_scores,
)


@pytest.fixture()
def sample_graph():
    return WebGraph.from_edges(
        4, [(0, 1), (1, 2), (2, 0), (0, 3)], names=["a.com", "b.com", "c.com", "d.com"]
    )


def test_edge_list_roundtrip(tmp_path, sample_graph):
    path = tmp_path / "g.edges"
    write_edge_list(sample_graph, path)
    loaded = read_edge_list(path)
    assert loaded == sample_graph


def test_edge_list_gzip_roundtrip(tmp_path, sample_graph):
    path = tmp_path / "g.edges.gz"
    write_edge_list(sample_graph, path)
    assert read_edge_list(path) == sample_graph


def test_edge_list_preserves_isolated_nodes(tmp_path):
    g = WebGraph.from_edges(10, [(0, 1)])
    path = tmp_path / "g.edges"
    write_edge_list(g, path)
    assert read_edge_list(path).num_nodes == 10


def test_edge_list_rejects_malformed(tmp_path):
    bad = tmp_path / "bad.edges"
    bad.write_text("# header\nnot-a-number\n")
    with pytest.raises(ValueError):
        read_edge_list(bad)
    bad.write_text("3\n1 2 3\n")
    with pytest.raises(ValueError):
        read_edge_list(bad)
    bad.write_text("# only comments\n")
    with pytest.raises(ValueError):
        read_edge_list(bad)


def test_host_list_roundtrip(tmp_path):
    names = ["www.a.com", "b.org", "sub.c.net"]
    path = tmp_path / "hosts.txt"
    write_host_list(names, path)
    assert read_host_list(path) == names


def test_host_list_rejects_newlines(tmp_path):
    with pytest.raises(ValueError):
        write_host_list(["bad\nname"], tmp_path / "h.txt")


def test_labels_roundtrip(tmp_path):
    labels = {0: "good", 3: "spam", 7: "unknown"}
    path = tmp_path / "l.labels"
    write_labels(labels, path)
    assert read_labels(path) == labels


def test_labels_reject_whitespace(tmp_path):
    with pytest.raises(ValueError):
        write_labels({0: "two words"}, tmp_path / "l.labels")


def test_labels_reject_malformed_line(tmp_path):
    bad = tmp_path / "bad.labels"
    bad.write_text("0 good extra\n")
    with pytest.raises(ValueError):
        read_labels(bad)


def test_scores_roundtrip_exact(tmp_path):
    scores = np.array([0.1, 1e-17, 3.25, -2.5])
    path = tmp_path / "s.scores"
    write_scores(scores, path)
    loaded = read_scores(path)
    # repr-based format preserves doubles exactly
    assert np.array_equal(loaded, scores)


def test_scores_empty(tmp_path):
    path = tmp_path / "empty.scores"
    write_scores(np.array([]), path)
    assert read_scores(path).size == 0


def test_bundle_roundtrip(tmp_path, sample_graph):
    labels = {0: "good", 1: "spam"}
    meta = {"seed": 7, "kind": "test"}
    out = write_graph_bundle(
        sample_graph, tmp_path / "bundle", labels=labels, metadata=meta
    )
    graph, loaded_labels, loaded_meta = read_graph_bundle(out)
    assert graph == sample_graph
    assert graph.names == sample_graph.names
    assert loaded_labels == labels
    assert loaded_meta == meta


def test_bundle_compressed(tmp_path, sample_graph):
    out = write_graph_bundle(sample_graph, tmp_path / "bz", compress=True)
    assert (out / "graph.edges.gz").exists()
    graph, labels, meta = read_graph_bundle(out)
    assert graph == sample_graph
    assert labels is None and meta is None


def test_bundle_missing_graph(tmp_path):
    with pytest.raises(FileNotFoundError):
        read_graph_bundle(tmp_path)


def test_npz_roundtrip(tmp_path, sample_graph):
    from repro.graph import read_npz, write_npz

    path = tmp_path / "g.npz"
    write_npz(sample_graph, path)
    loaded = read_npz(path)
    assert loaded == sample_graph
    assert loaded.names == sample_graph.names


def test_npz_without_names(tmp_path):
    from repro.graph import read_npz, write_npz

    g = WebGraph.from_edges(6, [(0, 1), (4, 5)])
    path = tmp_path / "g.npz"
    write_npz(g, path)
    loaded = read_npz(path)
    assert loaded == g
    assert loaded.names is None
