"""Unit tests for spam-mass definitions and estimators (Sections 3.3-3.5)."""

import numpy as np
import pytest

from repro.core import (
    blacklist_mass,
    estimate_spam_mass,
    pagerank,
    scale_scores,
    true_relative_mass,
    true_spam_mass,
)
from repro.datasets import figure2_graph, table1_expected
from repro.graph import WebGraph


@pytest.fixture(scope="module")
def example():
    return figure2_graph()


def test_true_mass_matches_table1(example):
    g = example.graph
    mass = scale_scores(
        true_spam_mass(g, example.spam, tol=1e-14), g.num_nodes
    )
    expected = table1_expected()
    for name in example.names_in_order():
        assert mass[example.id_of(name)] == pytest.approx(
            expected[name]["M"], abs=1e-9
        ), name


def test_true_relative_mass_matches_table1(example):
    g = example.graph
    rel = true_relative_mass(g, example.spam, tol=1e-14)
    expected = table1_expected()
    for name in example.names_in_order():
        assert rel[example.id_of(name)] == pytest.approx(
            expected[name]["m"], abs=1e-9
        ), name


def test_estimated_mass_matches_table1(example):
    est = estimate_spam_mass(example.graph, example.good_core, gamma=None)
    expected = table1_expected()
    scaled_abs = est.scaled_absolute()
    for name in example.names_in_order():
        i = example.id_of(name)
        assert scaled_abs[i] == pytest.approx(expected[name]["M_est"], abs=1e-9)
        assert est.relative[i] == pytest.approx(
            expected[name]["m_est"], abs=1e-9
        )


def test_good_spam_decomposition(example):
    """p = q^{V+} + q^{V-} for any partition (Section 3.3)."""
    g = example.graph
    p = pagerank(g, tol=1e-14).scores
    m_spam = true_spam_mass(g, example.spam, tol=1e-14)
    m_good = true_spam_mass(g, example.good, tol=1e-14)
    assert np.abs(p - m_spam - m_good).max() < 1e-12


def test_estimate_requires_nonempty_core(example):
    with pytest.raises(ValueError):
        estimate_spam_mass(example.graph, [])


def test_relative_mass_zero_where_pagerank_zero():
    # a core-based estimate where some nodes have zero PageRank is not
    # constructible with a uniform jump; use true mass on an island
    g = WebGraph.from_edges(4, [(0, 1)])
    est = estimate_spam_mass(g, [0], gamma=0.85)
    assert np.isfinite(est.relative).all()


def test_gamma_scaling_norm(example):
    """With the scaled jump, ||p'|| is comparable to gamma * ||p||-ish;
    with the unscaled core jump, ||p'|| << ||p|| (Section 3.5)."""
    g = example.graph
    unscaled = estimate_spam_mass(g, example.good_core, gamma=None)
    scaled = estimate_spam_mass(g, example.good_core, gamma=0.85)
    ratio_unscaled = unscaled.core_pagerank.sum() / unscaled.pagerank.sum()
    ratio_scaled = scaled.core_pagerank.sum() / scaled.pagerank.sum()
    assert ratio_scaled > ratio_unscaled
    assert ratio_scaled > 0.5


def test_negative_mass_for_core_members_under_scaling(tiny_world, tiny_core):
    """Section 3.5: scaling over-weights core members, so they (and
    their main beneficiaries) get negative estimated mass."""
    est = estimate_spam_mass(tiny_world.graph, tiny_core, gamma=0.85)
    core_mass = est.absolute[tiny_core]
    assert (core_mass < 0).mean() > 0.9


def test_mass_estimates_shapes_and_scaling(tiny_world, tiny_core):
    est = estimate_spam_mass(tiny_world.graph, tiny_core, gamma=0.85)
    n = tiny_world.num_nodes
    assert est.num_nodes == n
    assert est.absolute.shape == (n,)
    assert np.allclose(
        est.scaled_absolute(),
        est.scaled_pagerank() - est.scaled_core_pagerank(),
    )
    # relative mass is bounded above by 1 (p' >= 0)
    assert est.relative.max() <= 1.0 + 1e-12


def test_estimated_vs_true_mass_correlation(tiny_world, tiny_core):
    """The estimator should track the oracle: across eligible nodes,
    estimated and actual relative mass correlate strongly."""
    g = tiny_world.graph
    est = estimate_spam_mass(g, tiny_core, gamma=0.85)
    actual = true_relative_mass(g, tiny_world.spam_nodes())
    eligible = est.scaled_pagerank() >= 10.0
    # anomalous good communities are exactly where the estimator is
    # known to deviate from the oracle (core coverage gaps), so they
    # are excluded, as the paper excludes them from its headline curve
    anomalous = np.zeros(tiny_world.num_nodes, dtype=bool)
    anomalous[tiny_world.anomalous_nodes()] = True
    subset = eligible & ~anomalous
    rho = np.corrcoef(est.relative[subset], actual[subset])[0, 1]
    assert rho > 0.6


def test_blacklist_mass_is_spam_contribution(example):
    """M^ = PR(v^{V-}) equals the true spam mass when the black list is
    complete."""
    g = example.graph
    m_hat = blacklist_mass(g, example.spam, tol=1e-14)
    m_true = true_spam_mass(g, example.spam, tol=1e-14)
    assert np.abs(m_hat - m_true).max() < 1e-12


def test_blacklist_mass_gamma_scaling(example):
    g = example.graph
    unscaled = blacklist_mass(g, example.spam)
    scaled = blacklist_mass(g, example.spam, gamma=0.85)
    # scaled version distributes total weight 1-gamma over the core
    assert not np.allclose(unscaled, scaled)
    with pytest.raises(ValueError):
        blacklist_mass(g, example.spam, gamma=1.0)
    with pytest.raises(ValueError):
        blacklist_mass(g, [])


def test_mass_estimates_shape_mismatch_rejected():
    from repro.core.mass import MassEstimates

    with pytest.raises(ValueError):
        MassEstimates(np.ones(3), np.ones(4), 0.85, None)
