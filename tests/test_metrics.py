"""Unit tests for precision curves and detection metrics."""

import numpy as np
import pytest

from repro.eval import (
    LABEL_GOOD,
    LABEL_NONEXISTENT,
    LABEL_SPAM,
    LABEL_UNKNOWN,
    PAPER_THRESHOLDS,
    EvaluationSample,
    counts_above_thresholds,
    detection_metrics,
    paper_thresholds,
    precision_at,
    precision_curve,
)


@pytest.fixture()
def labeled_sample():
    nodes = np.arange(6)
    labels = [
        LABEL_SPAM,       # mass 0.99
        LABEL_GOOD,       # mass 0.99 (anomalous)
        LABEL_SPAM,       # mass 0.5
        LABEL_GOOD,       # mass 0.2
        LABEL_UNKNOWN,    # mass 0.99 — excluded
        LABEL_NONEXISTENT # mass -1  — excluded
    ]
    anomalous = np.array([False, True, False, False, False, False])
    mass = np.array([0.99, 0.99, 0.5, 0.2, 0.99, -1.0])
    return EvaluationSample(nodes, labels, anomalous), mass


def test_precision_at_includes_anomalous(labeled_sample):
    sample, mass = labeled_sample
    point = precision_at(sample, mass, 0.98)
    # above 0.98: spam(1) + anomalous good(1); unknown excluded
    assert point.num_total == 2
    assert point.num_spam == 1
    assert point.precision == pytest.approx(0.5)


def test_precision_at_excludes_anomalous(labeled_sample):
    sample, mass = labeled_sample
    point = precision_at(sample, mass, 0.98, exclude_anomalous=True)
    assert point.num_total == 1
    assert point.precision == pytest.approx(1.0)


def test_precision_nan_when_empty(labeled_sample):
    sample, mass = labeled_sample
    point = precision_at(sample, mass, 1.5)
    assert point.num_total == 0
    assert point.precision != point.precision  # NaN


def test_precision_curve_matches_pointwise(labeled_sample):
    sample, mass = labeled_sample
    curve = precision_curve(sample, mass, (0.98, 0.4, 0.0))
    assert [p.tau for p in curve] == [0.98, 0.4, 0.0]
    assert curve[1].num_spam == 2  # both spam hosts above 0.4
    assert curve[2].num_total == 4  # all usable hosts above 0


def test_paper_thresholds():
    assert paper_thresholds() == PAPER_THRESHOLDS
    assert PAPER_THRESHOLDS[0] == 0.98
    assert PAPER_THRESHOLDS[-1] == 0.0
    assert list(PAPER_THRESHOLDS) == sorted(PAPER_THRESHOLDS, reverse=True)


def test_counts_above_thresholds():
    mass = np.array([0.99, 0.5, 0.1, -2.0, 0.98])
    eligible = np.array([True, True, True, True, False])
    counts = counts_above_thresholds(mass, eligible, (0.98, 0.5, 0.0))
    assert counts == [1, 2, 3]
    with pytest.raises(ValueError):
        counts_above_thresholds(mass, eligible[:3])


def test_detection_metrics_basic():
    candidates = np.array([True, True, False, False])
    spam = np.array([True, False, True, False])
    m = detection_metrics(candidates, spam)
    assert m["tp"] == 1 and m["fp"] == 1 and m["fn"] == 1
    assert m["precision"] == pytest.approx(0.5)
    assert m["recall"] == pytest.approx(0.5)
    assert m["f1"] == pytest.approx(0.5)


def test_detection_metrics_restricted_universe():
    candidates = np.array([True, True, False, False])
    spam = np.array([True, False, True, False])
    universe = np.array([True, False, False, True])
    m = detection_metrics(candidates, spam, restrict_to=universe)
    assert m["tp"] == 1 and m["fp"] == 0 and m["fn"] == 0
    assert m["precision"] == 1.0 and m["recall"] == 1.0


def test_detection_metrics_degenerate_cases():
    none = np.zeros(3, dtype=bool)
    spam = np.array([True, False, False])
    m = detection_metrics(none, spam)
    assert m["precision"] != m["precision"]  # no candidates -> NaN
    assert m["recall"] == 0.0
    all_clean = detection_metrics(none, none)
    assert all_clean["f1"] != all_clean["f1"]  # nothing to find -> NaN
    with pytest.raises(ValueError):
        detection_metrics(none, spam[:2])
