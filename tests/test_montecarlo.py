"""Tests for Monte-Carlo PageRank estimation."""

import numpy as np
import pytest

from repro.core import pagerank
from repro.core.montecarlo import pagerank_montecarlo
from repro.datasets import figure2_graph
from repro.graph import WebGraph


def test_matches_linear_solution_on_figure2(rng):
    example = figure2_graph()
    exact = pagerank(example.graph, tol=1e-13).scores
    mc = pagerank_montecarlo(
        example.graph, num_walks=400_000, rng=rng
    )
    assert np.abs(mc.scores - exact).max() < 5e-3 * exact.max()
    # relative error on the biggest score is tight
    x = example.id_of("x")
    assert mc.scores[x] == pytest.approx(exact[x], rel=0.02)


def test_unnormalized_core_jump(rng):
    """MC estimation works for core-based vectors, i.e. for p'."""
    example = figure2_graph()
    from repro.core import core_jump_vector

    v = core_jump_vector(example.graph.num_nodes, example.good_core)
    exact = pagerank(example.graph, v, tol=1e-13).scores
    mc = pagerank_montecarlo(
        example.graph, v, num_walks=400_000, rng=rng
    )
    assert np.abs(mc.scores - exact).max() < 0.01 * max(exact.max(), 1e-9)


def test_estimator_is_unbiased_across_seeds():
    g = WebGraph.from_edges(4, [(0, 1), (1, 2), (2, 0), (0, 3)])
    exact = pagerank(g, tol=1e-13).scores
    estimates = [
        pagerank_montecarlo(
            g, num_walks=30_000, rng=np.random.default_rng(seed)
        ).scores
        for seed in range(8)
    ]
    mean_estimate = np.mean(estimates, axis=0)
    assert np.abs(mean_estimate - exact).max() < 2e-3


def test_error_shrinks_with_walks(rng):
    g = WebGraph.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])
    exact = pagerank(g, tol=1e-13).scores

    def error(num_walks, seed):
        mc = pagerank_montecarlo(
            g, num_walks=num_walks, rng=np.random.default_rng(seed)
        )
        return np.abs(mc.scores - exact).sum()

    small = np.mean([error(2_000, s) for s in range(5)])
    large = np.mean([error(128_000, s) for s in range(5)])
    assert large < small / 3  # expect ~8x from 64x more walks


def test_dangling_nodes_kill_walks(rng):
    # single dangling node: every walk visits it once at most
    g = WebGraph.from_edges(2, [(0, 1)])
    mc = pagerank_montecarlo(g, num_walks=50_000, rng=rng)
    exact = pagerank(g, tol=1e-13).scores
    assert np.abs(mc.scores - exact).max() < 3e-3
    assert mc.total_steps <= 2 * mc.num_walks


def test_validation(rng):
    g = WebGraph.from_edges(2, [(0, 1)])
    with pytest.raises(ValueError):
        pagerank_montecarlo(g, np.ones(3), rng=rng)
    with pytest.raises(ValueError):
        pagerank_montecarlo(g, np.array([-0.5, 0.5]), rng=rng)
    with pytest.raises(ValueError):
        pagerank_montecarlo(g, np.zeros(2), rng=rng)
    with pytest.raises(ValueError):
        pagerank_montecarlo(g, num_walks=0, rng=rng)
    with pytest.raises(ValueError):
        pagerank_montecarlo(g, damping=1.5, rng=rng)


def test_spam_mass_via_montecarlo(rng):
    """MC-estimated relative mass separates Figure 2's spam from good —
    the estimator composes with the paper's pipeline."""
    example = figure2_graph()
    from repro.core import core_jump_vector

    g = example.graph
    p = pagerank_montecarlo(g, num_walks=300_000, rng=rng).scores
    v_core = core_jump_vector(g.num_nodes, example.good_core)
    p_core = pagerank_montecarlo(
        g, v_core, num_walks=300_000, rng=rng
    ).scores
    rel = 1.0 - p_core / np.maximum(p, 1e-12)
    assert rel[example.id_of("x")] > 0.6
    assert rel[example.id_of("s0")] > 0.9
    assert rel[example.id_of("g0")] < 0.5
