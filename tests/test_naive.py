"""Unit tests for the naive labeling schemes (Section 3.1)."""

import numpy as np
import pytest

from repro.baselines import scheme1_label, scheme1_mask, scheme2_label, scheme2_mask
from repro.datasets import figure1_graph, figure2_graph


def test_scheme1_fails_on_figure1():
    """The paper's first example: x has 2 good links and 1 spam link, so
    the majority vote says good even though spam dominates its
    PageRank."""
    for k in (2, 5, 10):
        example = figure1_graph(k)
        assert (
            scheme1_label(example.graph, example.id_of("x"), example.spam)
            == "good"
        )


def test_scheme2_succeeds_on_figure1_for_large_k():
    """Scheme 2 flips to spam once k >= ceil(1/c) = 2 (the paper's
    analysis)."""
    example = figure1_graph(1)
    assert (
        scheme2_label(example.graph, example.id_of("x"), example.spam)
        == "good"
    )
    for k in (2, 3, 8):
        example = figure1_graph(k)
        assert (
            scheme2_label(example.graph, example.id_of("x"), example.spam)
            == "spam"
        )


def test_both_schemes_fail_on_figure2():
    """Figure 2's indirect boosting defeats both schemes — the paper's
    motivation for whole-graph spam mass."""
    example = figure2_graph()
    x = example.id_of("x")
    assert scheme1_label(example.graph, x, example.spam) == "good"
    assert scheme2_label(example.graph, x, example.spam) == "good"
    assert (
        scheme2_label(example.graph, x, example.spam, exact=False) == "good"
    )


def test_scheme1_catches_directly_boosted_node():
    example = figure1_graph(4)
    s0 = example.id_of("s0")  # all of s0's in-links are spam
    assert scheme1_label(example.graph, s0, example.spam) == "spam"


def test_no_inlinks_labeled_good():
    example = figure1_graph(2)
    g0 = example.id_of("g0")
    assert scheme1_label(example.graph, g0, example.spam) == "good"
    assert scheme2_label(example.graph, g0, example.spam) == "good"


def test_tie_counts_as_good():
    """One good and one spam in-link: not a majority, so scheme 1 has no
    evidence to call spam."""
    from repro.graph import WebGraph

    g = WebGraph.from_edges(3, [(0, 2), (1, 2)])
    assert scheme1_label(g, 2, [1]) == "good"


def test_scheme_masks_match_per_node_labels():
    example = figure2_graph()
    g = example.graph
    mask1 = scheme1_mask(g, example.spam)
    mask2 = scheme2_mask(g, example.spam)
    for node in range(g.num_nodes):
        assert mask1[node] == (
            scheme1_label(g, node, example.spam) == "spam"
        )
        assert mask2[node] == (
            scheme2_label(g, node, example.spam, exact=False) == "spam"
        )


def test_scheme2_exact_vs_first_order_agree_on_figure1():
    example = figure1_graph(3)
    x = example.id_of("x")
    assert scheme2_label(
        example.graph, x, example.spam, exact=True
    ) == scheme2_label(example.graph, x, example.spam, exact=False)
