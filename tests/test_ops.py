"""Unit tests for graph structural operations."""

import numpy as np
import pytest

from repro.graph import (
    WebGraph,
    adjacency_matrix,
    degree_histogram,
    merge_graphs,
    reachable_from,
    reaches,
    remove_nodes,
    subgraph,
    to_networkx,
    transition_matrix,
)


@pytest.fixture()
def diamond():
    # 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
    return WebGraph.from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)])


def test_transition_matrix_rows(diamond):
    t = transition_matrix(diamond).toarray()
    assert t[0, 1] == pytest.approx(0.5)
    assert t[0, 2] == pytest.approx(0.5)
    assert t[1, 3] == pytest.approx(1.0)
    # dangling row is zero (substochastic, Section 2.2)
    assert t[3].sum() == 0.0
    # every non-dangling row sums to 1
    assert t[0].sum() == pytest.approx(1.0)


def test_adjacency_matrix(diamond):
    a = adjacency_matrix(diamond).toarray()
    assert a.sum() == diamond.num_edges
    assert a[0, 1] == 1.0 and a[1, 0] == 0.0


def test_subgraph_induced(diamond):
    sub, mapping = subgraph(diamond, [0, 1, 3])
    assert sub.num_nodes == 3
    assert sorted(sub.edges()) == [(0, 1), (1, 2)]  # 0->1, 1->3 renumbered
    assert list(mapping) == [0, 1, 3]


def test_subgraph_rejects_duplicates(diamond):
    with pytest.raises(ValueError):
        subgraph(diamond, [0, 0, 1])


def test_subgraph_keeps_names():
    g = WebGraph.from_edges(3, [(0, 1)], names=["a", "b", "c"])
    sub, _ = subgraph(g, [1, 2])
    assert sub.names == ("b", "c")


def test_remove_nodes(diamond):
    pruned, mapping = remove_nodes(diamond, [1])
    assert pruned.num_nodes == 3
    # only 0->2->3 path remains (renumbered 0->1->2)
    assert sorted(pruned.edges()) == [(0, 1), (1, 2)]
    assert list(mapping) == [0, 2, 3]


def test_reachable_from(diamond):
    mask = reachable_from(diamond, [1])
    assert list(mask) == [False, True, False, True]
    # sources always included (zero-length walk)
    assert reachable_from(diamond, [3]).tolist() == [False, False, False, True]


def test_reaches(diamond):
    mask = reaches(diamond, [3])
    assert mask.all()  # every node reaches 3
    assert reaches(diamond, [0]).tolist() == [True, False, False, False]


def test_reachable_multiple_sources(diamond):
    assert reachable_from(diamond, [1, 2]).tolist() == [False, True, True, True]


def test_degree_histogram():
    values, counts = degree_histogram(np.array([0, 1, 1, 3, 3, 3]))
    assert values.tolist() == [0, 1, 3]
    assert counts.tolist() == [1, 2, 3]
    empty_values, empty_counts = degree_histogram(np.array([]))
    assert len(empty_values) == 0 and len(empty_counts) == 0


def test_merge_graphs():
    a = WebGraph.from_edges(2, [(0, 1)], names=["a0", "a1"])
    b = WebGraph.from_edges(3, [(1, 2)], names=["b0", "b1", "b2"])
    merged, offsets = merge_graphs([a, b], cross_edges=[(0, 1, 1, 0)])
    assert merged.num_nodes == 5
    assert offsets == [0, 2]
    assert merged.has_edge(0, 1)  # a's edge
    assert merged.has_edge(3, 4)  # b's edge shifted by 2
    assert merged.has_edge(1, 2)  # cross edge a1 -> b0
    assert merged.names == ("a0", "a1", "b0", "b1", "b2")


def test_merge_graphs_bad_cross_edge():
    a = WebGraph.empty(1)
    with pytest.raises(IndexError):
        merge_graphs([a], cross_edges=[(0, 0, 3, 0)])


def test_to_networkx(diamond):
    g = to_networkx(diamond)
    assert g.number_of_nodes() == 4
    assert g.number_of_edges() == 4
    assert g.has_edge(0, 1)
