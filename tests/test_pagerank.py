"""Unit tests for the high-level PageRank API (Section 2.2)."""

import numpy as np
import pytest

from repro.core import (
    DEFAULT_DAMPING,
    core_jump_vector,
    indicator_jump_vector,
    pagerank,
    scale_scores,
    scaled_core_jump_vector,
    uniform_jump_vector,
    unscale_scores,
)
from repro.datasets import figure1_graph, figure1_pagerank_x
from repro.graph import WebGraph


def test_uniform_jump_vector():
    v = uniform_jump_vector(4)
    assert v.sum() == pytest.approx(1.0)
    assert (v == 0.25).all()
    with pytest.raises(ValueError):
        uniform_jump_vector(0)


def test_core_jump_vector_unnormalized():
    v = core_jump_vector(10, [0, 3, 7])
    assert v.sum() == pytest.approx(0.3)
    assert v[3] == pytest.approx(0.1)
    assert v[1] == 0.0


def test_core_jump_vector_range_check():
    with pytest.raises(ValueError):
        core_jump_vector(3, [5])


def test_scaled_core_jump_vector_norm_is_gamma():
    w = scaled_core_jump_vector(100, [1, 2, 3, 4], gamma=0.85)
    assert w.sum() == pytest.approx(0.85)
    assert w[1] == pytest.approx(0.85 / 4)
    with pytest.raises(ValueError):
        scaled_core_jump_vector(10, [0], gamma=0.0)
    with pytest.raises(ValueError):
        scaled_core_jump_vector(10, [], gamma=0.5)


def test_indicator_jump_vector_restricts_base():
    base = np.array([0.4, 0.3, 0.2, 0.1])
    v = indicator_jump_vector(4, [1, 3], base)
    assert v.tolist() == [0.0, 0.3, 0.0, 0.1]
    with pytest.raises(ValueError):
        indicator_jump_vector(4, [0], np.ones(3))


def test_pagerank_accepts_node_list_as_jump():
    g = WebGraph.from_edges(3, [(0, 1), (1, 2)])
    from_ids = pagerank(g, [0]).scores
    explicit = pagerank(g, core_jump_vector(3, [0])).scores
    assert np.array_equal(from_ids, explicit)


def test_pagerank_figure1_closed_form():
    for k in (0, 1, 4, 12):
        example = figure1_graph(k)
        scores = pagerank(example.graph).scores
        scaled = scale_scores(scores, example.graph.num_nodes)
        assert scaled[example.id_of("x")] == pytest.approx(
            figure1_pagerank_x(k), abs=1e-9
        )


def test_scaled_score_of_leaf_is_one():
    """Under the paper's scaling, a node with no inlinks scores 1."""
    g = WebGraph.from_edges(3, [(0, 1), (2, 1)])
    scaled = scale_scores(pagerank(g).scores, 3)
    assert scaled[0] == pytest.approx(1.0)
    assert scaled[2] == pytest.approx(1.0)


def test_scale_unscale_roundtrip(rng):
    scores = rng.random(7)
    assert np.allclose(unscale_scores(scale_scores(scores, 7), 7), scores)
    with pytest.raises(ValueError):
        scale_scores(scores, 0)
    with pytest.raises(ValueError):
        unscale_scores(scores, -1)


def test_pagerank_linearity_in_v():
    """PR(v1 + v2) = PR(v1) + PR(v2) — the property core-based mass
    estimation rests on."""
    g = WebGraph.from_edges(
        5, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 4), (4, 2)]
    )
    v1 = indicator_jump_vector(5, [0, 1])
    v2 = indicator_jump_vector(5, [2, 3, 4])
    combined = pagerank(g, v1 + v2, tol=1e-14).scores
    separate = pagerank(g, v1, tol=1e-14).scores + pagerank(g, v2, tol=1e-14).scores
    assert np.abs(combined - separate).max() < 1e-11


def test_pagerank_default_damping_is_085():
    assert DEFAULT_DAMPING == 0.85


def test_pagerank_raises_on_divergence():
    g = WebGraph.from_edges(3, [(0, 1), (1, 0)])
    with pytest.raises(RuntimeError, match="failed to converge"):
        pagerank(g, tol=1e-16, max_iter=1)
    result = pagerank(g, tol=1e-16, max_iter=1, raise_on_divergence=False)
    assert not result.converged


def test_pagerank_wrong_shape_jump_rejected():
    g = WebGraph.empty(3)
    with pytest.raises(ValueError):
        pagerank(g, np.full(4, 0.25))


def test_pagerank_order_matches_networkx(rng):
    import networkx as nx

    n = 80
    edges = [
        (int(u), int(v))
        for u, v in zip(rng.integers(0, n, 500), rng.integers(0, n, 500))
        if u != v
    ]
    g = WebGraph.from_edges(n, edges)
    ours = pagerank(g, tol=1e-13).scores
    ours = ours / ours.sum()
    nx_graph = nx.DiGraph(edges)
    nx_graph.add_nodes_from(range(n))
    theirs = nx.pagerank(nx_graph, alpha=0.85, tol=1e-13, max_iter=500)
    theirs_vec = np.array([theirs[i] for i in range(n)])
    # networkx patches dangling nodes (stochastic formulation), which is
    # exactly the normalized linear solution
    assert np.abs(ours - theirs_vec).max() < 1e-6
