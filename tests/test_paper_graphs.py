"""Unit tests for the reference paper graphs (Figures 1-2, Table 1)."""

import pytest

from repro.datasets import (
    figure1_graph,
    figure1_pagerank_x,
    figure1_spam_contribution_x,
    figure2_graph,
    table1_expected,
)


def test_figure1_structure():
    example = figure1_graph(4)
    g = example.graph
    assert g.num_nodes == 8  # x, g0, g1, s0, s1..s4
    x = example.id_of("x")
    assert g.has_edge(example.id_of("g0"), x)
    assert g.has_edge(example.id_of("g1"), x)
    assert g.has_edge(example.id_of("s0"), x)
    for i in range(1, 5):
        assert g.has_edge(example.id_of(f"s{i}"), example.id_of("s0"))
    assert set(example.good) == {example.id_of("g0"), example.id_of("g1")}
    assert x in example.spam


def test_figure1_k_zero():
    example = figure1_graph(0)
    assert example.graph.num_nodes == 4
    with pytest.raises(ValueError):
        figure1_graph(-1)


def test_figure1_closed_forms():
    # paper: for c = 0.85 and k >= ceil(1/c) = 2 spam dominates
    c = 0.85
    assert figure1_pagerank_x(0, c) == pytest.approx(1 + 3 * c)
    for k in (2, 3, 10):
        spam_share = figure1_spam_contribution_x(k, c) / figure1_pagerank_x(k, c)
        if k >= 2:
            good_part = figure1_pagerank_x(k, c) - figure1_spam_contribution_x(k, c)
            assert figure1_spam_contribution_x(k, c) > good_part - 1  # spam ~ dominant
    # k=2 is the paper's tipping point for the scheme-2 majority
    assert figure1_spam_contribution_x(2, c) > (
        figure1_pagerank_x(2, c) - figure1_spam_contribution_x(2, c) - 1.0
    )


def test_figure2_structure():
    example = figure2_graph()
    g = example.graph
    assert g.num_nodes == 12
    x = example.id_of("x")
    # x's immediate in-neighbours: g0, g2, s0
    assert sorted(g.in_neighbors(x).tolist()) == sorted(
        [example.id_of("g0"), example.id_of("g2"), example.id_of("s0")]
    )
    # spam reaches x only indirectly through g0/g2 (besides s0)
    assert g.has_edge(example.id_of("s5"), example.id_of("g0"))
    assert g.has_edge(example.id_of("s6"), example.id_of("g2"))
    for i in range(1, 5):
        assert g.has_edge(example.id_of(f"s{i}"), example.id_of("s0"))
    # x is dangling (no outlinks in the figure)
    assert g.out_degree(x) == 0


def test_figure2_partition():
    example = figure2_graph()
    assert len(example.good) == 4
    assert len(example.spam) == 8  # x + s0..s6
    assert set(example.good) & set(example.spam) == set()
    assert set(example.good) | set(example.spam) == set(range(12))
    # the worked example's core deliberately omits g2
    assert example.id_of("g2") not in example.good_core
    assert len(example.good_core) == 3


def test_table1_values_at_085():
    exp = table1_expected(0.85)
    assert exp["x"]["p"] == pytest.approx(9.33, abs=0.005)
    assert exp["x"]["p_core"] == pytest.approx(2.295)
    assert exp["x"]["M"] == pytest.approx(6.185)
    assert exp["x"]["M_est"] == pytest.approx(7.035)
    assert exp["x"]["m"] == pytest.approx(0.66, abs=0.005)
    assert exp["x"]["m_est"] == pytest.approx(0.75, abs=0.005)
    assert exp["g0"]["m"] == pytest.approx(0.31, abs=0.005)
    assert exp["g2"]["m_est"] == pytest.approx(0.69, abs=0.005)
    assert exp["s0"]["p"] == pytest.approx(4.4)
    assert exp["s1"]["m"] == 1.0
    assert exp["g1"]["M"] == 0.0


def test_table1_other_damping_consistent():
    """The analytic table must stay internally consistent for any c:
    relative values are ratios of the absolute ones."""
    exp = table1_expected(0.5)
    for name, row in exp.items():
        assert row["m"] == pytest.approx(row["M"] / row["p"])
        assert row["m_est"] == pytest.approx(row["M_est"] / row["p"])


def test_names_in_order():
    example = figure2_graph()
    names = example.names_in_order()
    assert names[0] == "x"
    assert len(names) == 12
    assert example.id_of(names[5]) == 5
