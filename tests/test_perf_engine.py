"""Unit tests for the perf engine: cache behavior, batched-solve
mechanics, runtime-policy integration, and parallel Monte Carlo."""

import numpy as np
import pytest

from repro.core.mass import estimate_spam_mass
from repro.core.pagerank import pagerank, uniform_jump_vector
from repro.errors import ConvergenceError
from repro.graph.webgraph import WebGraph
from repro.perf import (
    OperatorCache,
    PagerankEngine,
    get_engine,
    graph_fingerprint,
    pagerank_montecarlo_parallel,
    plan_chunks,
    set_engine,
)


@pytest.fixture()
def chain_graph():
    return WebGraph.from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4)])


def _ring(n, offset=0):
    return WebGraph.from_edges(
        n, [((i + offset) % n, (i + offset + 1) % n) for i in range(n)]
    )


# ----------------------------------------------------------------------
# fingerprint + cache
# ----------------------------------------------------------------------


def test_fingerprint_ignores_names():
    edges = [(0, 1), (1, 2)]
    bare = WebGraph.from_edges(3, edges)
    named = WebGraph.from_edges(3, edges, names=["a", "b", "c"])
    assert graph_fingerprint(bare) == graph_fingerprint(named)


def test_fingerprint_sensitive_to_structure():
    a = WebGraph.from_edges(4, [(0, 1), (2, 3)])
    b = WebGraph.from_edges(4, [(0, 3), (2, 1)])  # same counts, moved
    c = WebGraph.from_edges(5, [(0, 1), (2, 3)])  # extra node
    assert graph_fingerprint(a) != graph_fingerprint(b)
    assert graph_fingerprint(a) != graph_fingerprint(c)


def test_fingerprint_is_cached_on_the_instance():
    graph = _ring(40)
    baseline = WebGraph.fingerprint_computations
    first = graph.structural_fingerprint()
    assert WebGraph.fingerprint_computations == baseline + 1
    # repeated cache keying never rehashes the CSR
    cache = OperatorCache()
    cache.bundle_for(graph)
    cache.bundle_for(graph)
    assert graph.structural_fingerprint() == first
    assert WebGraph.fingerprint_computations == baseline + 1
    # a distinct (if identical) object pays its own single computation
    clone = _ring(40)
    clone.structural_fingerprint()
    clone.structural_fingerprint()
    assert WebGraph.fingerprint_computations == baseline + 2


def test_cache_hits_and_structural_sharing(chain_graph):
    cache = OperatorCache(maxsize=4)
    first = cache.bundle_for(chain_graph)
    # a structurally identical but distinct object shares the entry
    clone = WebGraph.from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4)])
    second = cache.bundle_for(clone)
    assert second is first
    info = cache.cache_info()
    assert info == {
        "hits": 1,
        "misses": 1,
        "evictions": 0,
        "derives": 0,
        "size": 1,
        "maxsize": 4,
    }


def test_cache_lru_eviction():
    cache = OperatorCache(maxsize=2)
    g1, g2, g3 = _ring(5), _ring(6), _ring(7)
    b1 = cache.bundle_for(g1)
    cache.bundle_for(g2)
    cache.bundle_for(g1)  # refresh g1 → g2 becomes LRU
    cache.bundle_for(g3)  # evicts g2
    assert g1 in cache and g3 in cache and g2 not in cache
    assert cache.bundle_for(g1) is b1
    assert cache.cache_info()["evictions"] == 1


def test_cache_rejects_zero_size():
    with pytest.raises(ValueError, match="maxsize"):
        OperatorCache(maxsize=0)


def test_bundle_restriction_partitions_nodes(chain_graph):
    bundle = OperatorCache().bundle_for(chain_graph)
    # nodes 4 and 5 have no outlinks
    assert set(bundle.dangling.tolist()) == {4, 5}
    assert set(bundle.non_dangling.tolist()) == {0, 1, 2, 3}
    assert bundle.tt_ss.shape == (4, 4)
    assert bundle.tt_ds.shape == (2, 4)
    assert bundle.nbytes() > 0


# ----------------------------------------------------------------------
# engine mechanics
# ----------------------------------------------------------------------


def test_solve_many_input_validation(chain_graph):
    engine = PagerankEngine()
    n = chain_graph.num_nodes
    v = uniform_jump_vector(n)
    with pytest.raises(ValueError, match="at least one"):
        engine.solve_many(chain_graph, np.empty((n, 0)))
    with pytest.raises(ValueError, match="rows"):
        engine.solve_many(chain_graph, np.ones((n + 1, 2)) / (n + 1))
    with pytest.raises(ValueError, match="norm"):
        engine.solve_many(chain_graph, np.stack([v, v * 0.0], axis=1))
    with pytest.raises(ValueError, match="exceed"):
        engine.solve_many(chain_graph, np.stack([v, v * n], axis=1))
    with pytest.raises(ValueError, match="labels"):
        engine.solve_many(chain_graph, [v, v], labels=["only-one"])
    with pytest.raises(ValueError, match="check_every"):
        PagerankEngine(check_every=0)


def test_solve_many_edgeless_graph():
    graph = WebGraph.from_edges(5, [])
    engine = PagerankEngine()
    batch = engine.solve_many(graph, [None], damping=0.85)
    # (I - cT^T) = I: the solution is the jump term
    expected = 0.15 * uniform_jump_vector(5)
    assert np.allclose(batch.scores[:, 0], expected)
    assert batch.converged.all()


def test_solve_many_raises_on_iteration_exhaustion(chain_graph):
    engine = PagerankEngine()
    with pytest.raises(ConvergenceError, match="col0"):
        engine.solve_many(chain_graph, [None], tol=1e-15, max_iter=2)
    batch = engine.solve_many(
        chain_graph, [None], tol=1e-15, max_iter=2, check=False
    )
    assert not batch.converged[0]
    assert batch.iterations[0] == 2


def test_batch_result_columns_roundtrip(chain_graph):
    engine = PagerankEngine()
    batch = engine.solve_many(chain_graph, [None, [0, 1]], tol=1e-12)
    columns = batch.columns()
    assert len(columns) == batch.num_columns == 2
    for j, column in enumerate(columns):
        assert np.array_equal(column.scores, batch.scores[:, j])
        assert column.converged
        assert column.method == "batched_jacobi"


def test_default_engine_is_shared_and_replaceable():
    previous = set_engine(None)
    try:
        a = get_engine()
        assert get_engine() is a
        mine = PagerankEngine(cache_size=2)
        assert set_engine(mine) is a
        assert get_engine() is mine
    finally:
        set_engine(previous)


def test_pagerank_populates_shared_cache(chain_graph):
    previous = set_engine(None)
    try:
        pagerank(chain_graph, tol=1e-12)
        info = get_engine().cache.cache_info()
        assert info["misses"] == 1
        pagerank(chain_graph, [0, 1], tol=1e-12)
        assert get_engine().cache.cache_info()["hits"] >= 1
    finally:
        set_engine(previous)


# ----------------------------------------------------------------------
# runtime-policy integration (PR 1 semantics, per column)
# ----------------------------------------------------------------------


def test_solve_many_under_policy_reports_per_column(tmp_path, chain_graph):
    from repro.runtime.resilient import RuntimePolicy

    policy = RuntimePolicy(checkpoint_dir=tmp_path, checkpoint_every=1)
    engine = PagerankEngine()
    batch = engine.solve_many(
        chain_graph,
        [None, [0, 1]],
        tol=1e-12,
        labels=("pagerank", "core"),
        policy=policy,
    )
    assert batch.method == "fallback_chain"
    assert batch.converged.all()
    assert set(batch.reports) == {"pagerank", "core"}
    for report in batch.reports.values():
        assert report.outcome == "converged"
    # per-column labeled checkpoint directories, as in PR 1
    assert (tmp_path / "pagerank").is_dir()
    assert (tmp_path / "core").is_dir()


def test_estimate_spam_mass_policy_via_engine(tmp_path, chain_graph):
    from repro.runtime.resilient import RuntimePolicy

    policy = RuntimePolicy(checkpoint_dir=tmp_path)
    est = estimate_spam_mass(chain_graph, [0, 1], policy=policy)
    assert set(est.reports) == {"pagerank", "core"}
    plain = estimate_spam_mass(chain_graph, [0, 1])
    assert np.abs(est.pagerank - plain.pagerank).sum() < 1e-8
    assert np.abs(est.core_pagerank - plain.core_pagerank).sum() < 1e-8


def test_estimate_spam_mass_non_jacobi_uses_cached_operator(chain_graph):
    engine = PagerankEngine()
    est = estimate_spam_mass(
        chain_graph, [0, 1], method="gauss_seidel", engine=engine
    )
    assert engine.cache.cache_info()["misses"] == 1
    batched = estimate_spam_mass(chain_graph, [0, 1], engine=engine)
    assert np.abs(est.pagerank - batched.pagerank).sum() < 1e-8


# ----------------------------------------------------------------------
# parallel Monte Carlo
# ----------------------------------------------------------------------


def test_plan_chunks_partitions_budget():
    assert sum(plan_chunks(100)) == 100
    assert plan_chunks(10, chunks=4) == [3, 3, 2, 2]
    assert plan_chunks(3, chunks=8) == [1, 1, 1]
    with pytest.raises(ValueError):
        plan_chunks(0)


def test_montecarlo_deterministic_across_worker_counts(chain_graph):
    kwargs = dict(num_walks=5_000, seed=11)
    serial = pagerank_montecarlo_parallel(chain_graph, workers=None, **kwargs)
    one = pagerank_montecarlo_parallel(chain_graph, workers=1, **kwargs)
    two = pagerank_montecarlo_parallel(chain_graph, workers=2, **kwargs)
    assert np.array_equal(serial.scores, one.scores)
    assert np.array_equal(serial.scores, two.scores)
    assert serial.num_walks == 5_000


def test_montecarlo_approximates_linear_pagerank():
    graph = _ring(12)
    exact = pagerank(graph, tol=1e-12).scores
    mc = pagerank_montecarlo_parallel(graph, num_walks=200_000, seed=3)
    assert np.abs(mc.scores - exact).sum() < 0.01


def test_montecarlo_pool_failure_falls_back(monkeypatch, chain_graph):
    import repro.perf.parallel as parallel_mod

    class ExplodingPool:
        def __init__(self, *args, **kwargs):
            raise OSError("no process pool in this sandbox")

    monkeypatch.setattr(
        parallel_mod, "ProcessPoolExecutor", ExplodingPool
    )
    reference = pagerank_montecarlo_parallel(
        chain_graph, num_walks=2_000, workers=None, seed=5
    )
    with pytest.warns(RuntimeWarning, match="sequentially"):
        degraded = pagerank_montecarlo_parallel(
            chain_graph, num_walks=2_000, workers=4, seed=5
        )
    assert np.array_equal(degraded.scores, reference.scores)


def test_engine_montecarlo_uses_default_workers(chain_graph):
    engine = PagerankEngine(workers=1)
    result = engine.montecarlo(chain_graph, num_walks=1_000, seed=2)
    direct = pagerank_montecarlo_parallel(
        chain_graph, num_walks=1_000, workers=1, seed=2
    )
    assert np.array_equal(result.scores, direct.scores)
