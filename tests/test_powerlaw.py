"""Unit tests for power-law fitting and distribution helpers."""

import numpy as np
import pytest

from repro.analysis import (
    ccdf,
    fit_continuous_powerlaw,
    fit_discrete_powerlaw,
    log_binned_histogram,
)


def pareto_sample(rng, alpha, xmin, size):
    """Continuous Pareto draws with density ~ x^-alpha for x >= xmin."""
    u = rng.random(size)
    return xmin * (1 - u) ** (-1.0 / (alpha - 1.0))


def test_continuous_mle_recovers_exponent(rng):
    for alpha in (1.8, 2.31, 3.0):
        sample = pareto_sample(rng, alpha, xmin=1.0, size=50_000)
        fit = fit_continuous_powerlaw(sample, xmin=1.0)
        assert fit.alpha == pytest.approx(alpha, rel=0.03)
        assert not fit.discrete


def test_discrete_mle_recovers_exponent(rng):
    alpha = 2.5
    sample = np.floor(pareto_sample(rng, alpha, xmin=5.0, size=80_000)).astype(
        int
    )
    fit = fit_discrete_powerlaw(sample, xmin=5)
    assert fit.alpha == pytest.approx(alpha, rel=0.05)
    assert fit.discrete


def test_fit_ignores_below_xmin(rng):
    sample = np.concatenate(
        [pareto_sample(rng, 2.4, 10.0, 20_000), np.full(50_000, 1.0)]
    )
    fit = fit_continuous_powerlaw(sample, xmin=10.0)
    assert fit.alpha == pytest.approx(2.4, rel=0.05)
    assert fit.num_tail == 20_000


def test_fit_continuous_default_xmin(rng):
    sample = pareto_sample(rng, 2.0, 3.0, 10_000)
    fit = fit_continuous_powerlaw(sample)
    assert fit.xmin == pytest.approx(sample.min())


def test_fit_validation():
    with pytest.raises(ValueError):
        fit_continuous_powerlaw(np.array([1.0]))
    with pytest.raises(ValueError):
        fit_continuous_powerlaw(np.array([-1.0, -2.0]))
    with pytest.raises(ValueError):
        fit_continuous_powerlaw(np.array([2.0, 3.0]), xmin=-1.0)
    with pytest.raises(ValueError):
        fit_discrete_powerlaw(np.array([3, 4, 5]), xmin=0)
    with pytest.raises(ValueError):
        fit_continuous_powerlaw(np.array([5.0, 5.0, 5.0]), xmin=5.0)


def test_pdf_normalization():
    fit = fit_continuous_powerlaw(
        pareto_sample(np.random.default_rng(0), 2.5, 1.0, 5_000), xmin=1.0
    )
    xs = np.linspace(1.0, 5_000.0, 2_000_000)
    integral = np.trapezoid(fit.pdf(xs), xs)
    assert integral == pytest.approx(1.0, abs=0.01)


def test_expected_counts_scale_with_total():
    fit = fit_continuous_powerlaw(
        pareto_sample(np.random.default_rng(1), 2.0, 1.0, 5_000), xmin=1.0
    )
    values = np.array([1.0, 2.0, 4.0])
    assert np.allclose(
        fit.expected_counts(values, 200), 2 * fit.expected_counts(values, 100)
    )


def test_ccdf_basic():
    xs, probs = ccdf(np.array([1.0, 1.0, 2.0, 4.0]))
    assert xs.tolist() == [1.0, 2.0, 4.0]
    assert probs.tolist() == [1.0, 0.5, 0.25]
    empty_x, empty_p = ccdf(np.array([]))
    assert empty_x.size == 0 and empty_p.size == 0


def test_ccdf_slope_matches_exponent(rng):
    """For a power law with exponent alpha, the CCDF has log-log slope
    1 - alpha."""
    alpha = 2.5
    sample = pareto_sample(rng, alpha, 1.0, 100_000)
    xs, probs = ccdf(sample)
    keep = (xs > 2) & (xs < 50)
    slope = np.polyfit(np.log(xs[keep]), np.log(probs[keep]), 1)[0]
    assert slope == pytest.approx(1 - alpha, abs=0.1)


def test_log_binned_histogram_fractions():
    values = np.array([0.0, -3.0, 1.0, 10.0, 100.0, 100.0])
    bins, fractions = log_binned_histogram(values, bins_per_decade=1)
    # fractions are relative to ALL inputs (incl. non-positive)
    assert fractions.sum() == pytest.approx(4 / 6)
    assert (bins > 0).all()


def test_log_binned_histogram_density_and_validation():
    values = np.array([1.0, 5.0, 50.0])
    bins, dens = log_binned_histogram(values, bins_per_decade=2, density=True)
    assert (dens > 0).all()
    with pytest.raises(ValueError):
        log_binned_histogram(values, bins_per_decade=0)
    empty_b, empty_f = log_binned_histogram(np.array([-1.0, 0.0]))
    assert empty_b.size == 0
