"""Property-based tests (hypothesis) for the core invariants.

These exercise the paper's mathematical claims on *arbitrary* graphs and
jump vectors, not just the worked examples:

* Theorem 1 — contributions sum to PageRank;
* linearity of ``PR(·)`` in the jump vector;
* solver agreement;
* estimator identities (``M̃ = p − p′``, ``m̃ = 1 − p′/p``,
  ``m̃ ≤ 1``);
* detector monotonicity in both thresholds;
* graph-construction invariants (dedup, self-link removal, transpose).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    MassDetector,
    contribution_matrix,
    contribution_vector,
    estimate_spam_mass,
    pagerank,
    true_spam_mass,
    uniform_jump_vector,
)
from repro.graph import WebGraph, transition_matrix

SETTINGS = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graphs(draw, min_nodes=2, max_nodes=12):
    """Random directed graphs (possibly with dangling/isolated nodes)."""
    n = draw(st.integers(min_nodes, max_nodes))
    num_edges = draw(st.integers(0, n * (n - 1)))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1), st.integers(0, n - 1)
            ),
            min_size=0,
            max_size=num_edges,
        )
    )
    return WebGraph.from_edges(n, edges)


@st.composite
def graphs_with_subset(draw):
    graph = draw(graphs())
    subset = draw(
        st.sets(
            st.integers(0, graph.num_nodes - 1),
            min_size=1,
            max_size=graph.num_nodes,
        )
    )
    return graph, sorted(subset)


@given(graphs())
@settings(**SETTINGS)
def test_theorem1_contributions_sum_to_pagerank(graph):
    scores = pagerank(graph, tol=1e-13).scores
    q = contribution_matrix(graph)
    assert np.abs(q.sum(axis=0) - scores).max() < 1e-9


@given(graphs_with_subset())
@settings(**SETTINGS)
def test_decomposition_into_subset_and_complement(pair):
    """p = q^U + q^{V \\ U} for every subset U (Section 3.3)."""
    graph, subset = pair
    complement = [x for x in range(graph.num_nodes) if x not in subset]
    scores = pagerank(graph, tol=1e-13).scores
    q_subset = contribution_vector(graph, subset, tol=1e-13)
    if complement:
        q_subset = q_subset + contribution_vector(graph, complement, tol=1e-13)
    assert np.abs(scores - q_subset).max() < 1e-9


@given(graphs_with_subset())
@settings(**SETTINGS)
def test_mass_is_nonnegative_and_bounded(pair):
    """0 <= M <= p for the true mass of any spam set."""
    graph, subset = pair
    scores = pagerank(graph, tol=1e-13).scores
    mass = true_spam_mass(graph, subset, tol=1e-13)
    assert (mass >= -1e-12).all()
    assert (mass <= scores + 1e-12).all()


@given(graphs(), st.floats(0.05, 0.95))
@settings(**SETTINGS)
def test_pagerank_linearity(graph, split):
    v = uniform_jump_vector(graph.num_nodes)
    combined = pagerank(graph, v, tol=1e-13).scores
    part1 = pagerank(graph, split * v, tol=1e-13).scores
    part2 = pagerank(graph, (1 - split) * v, tol=1e-13).scores
    assert np.abs(combined - part1 - part2).max() < 1e-9


@given(graphs())
@settings(**SETTINGS)
def test_solvers_agree(graph):
    from repro.core.solvers import direct, jacobi

    tt = transition_matrix(graph).T.tocsr()
    v = uniform_jump_vector(graph.num_nodes)
    a = jacobi(tt, v, tol=1e-13).scores
    b = direct(tt, v).scores
    assert np.abs(a - b).max() < 1e-9


@given(graphs_with_subset(), st.one_of(st.none(), st.floats(0.1, 1.0)))
@settings(**SETTINGS)
def test_estimator_identities(pair, gamma):
    graph, core = pair
    est = estimate_spam_mass(graph, core, gamma=gamma, tol=1e-13)
    assert np.allclose(est.absolute, est.pagerank - est.core_pagerank)
    positive = est.pagerank > 0
    assert np.allclose(
        est.relative[positive],
        1.0 - est.core_pagerank[positive] / est.pagerank[positive],
    )
    # p' >= 0 always, so relative mass never exceeds 1
    assert est.relative.max() <= 1.0 + 1e-12
    assert np.isfinite(est.relative).all()


@given(
    graphs_with_subset(),
    st.floats(-1.0, 1.0),
    st.floats(-1.0, 1.0),
    st.floats(0.5, 20.0),
    st.floats(0.5, 20.0),
)
@settings(**SETTINGS)
def test_detector_monotonicity(pair, tau1, tau2, rho1, rho2):
    graph, core = pair
    est = estimate_spam_mass(graph, core, gamma=0.85, tol=1e-12)
    lo_tau, hi_tau = sorted((tau1, tau2))
    lo_rho, hi_rho = sorted((rho1, rho2))
    loose = MassDetector(lo_tau, lo_rho).detect(est)
    strict = MassDetector(hi_tau, hi_rho).detect(est)
    assert set(strict.candidates.tolist()) <= set(loose.candidates.tolist())


@given(
    st.integers(2, 10),
    st.lists(
        st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=60
    ),
)
@settings(**SETTINGS)
def test_graph_construction_invariants(n, raw_edges):
    edges = [(u % n, v % n) for u, v in raw_edges]
    graph = WebGraph.from_edges(n, edges)
    clean = {(u, v) for u, v in edges if u != v}
    assert graph.num_edges == len(clean)
    assert sorted(graph.edges()) == sorted(clean)
    # degree bookkeeping is consistent
    assert graph.out_degree().sum() == graph.num_edges
    assert graph.in_degree().sum() == graph.num_edges
    # transpose twice is the identity
    assert graph.transpose().transpose() == graph
    # transition matrix rows are (sub)stochastic
    t = transition_matrix(graph)
    row_sums = np.asarray(t.sum(axis=1)).ravel()
    dangling = graph.dangling_mask()
    assert np.allclose(row_sums[dangling], 0.0)
    assert np.allclose(row_sums[~dangling], 1.0)


@given(graphs())
@settings(**SETTINGS)
def test_pagerank_norm_bounds(graph):
    """0 < ||p||_1 <= ||v||_1 in the linear formulation."""
    scores = pagerank(graph, tol=1e-13).scores
    assert scores.sum() > 0
    assert scores.sum() <= 1.0 + 1e-9
    assert (scores > 0).all()  # uniform jump reaches every node
