"""Additional property-based tests: serialization round trips, farm
closed forms, threshold tooling and explanation invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.farm_theory import (
    boosters_needed,
    optimal_farm_booster,
    optimal_farm_target,
    relay_farm_target,
    star_farm_target,
)
from repro.core.explain import contributions_to
from repro.core import pagerank
from repro.eval import (
    LABEL_GOOD,
    LABEL_SPAM,
    EvaluationSample,
    detection_volume,
    precision_at,
)
from repro.graph import (
    WebGraph,
    read_edge_list,
    read_npz,
    read_scores,
    write_edge_list,
    write_npz,
    write_scores,
)

SETTINGS = dict(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graphs(draw, min_nodes=2, max_nodes=10):
    n = draw(st.integers(min_nodes, max_nodes))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=n * (n - 1),
        )
    )
    return WebGraph.from_edges(n, edges)


@given(graphs())
@settings(**SETTINGS)
def test_edge_list_roundtrip_property(tmp_path_factory, graph):
    path = tmp_path_factory.mktemp("io") / "g.edges"
    write_edge_list(graph, path)
    assert read_edge_list(path) == graph


@given(graphs())
@settings(**SETTINGS)
def test_npz_roundtrip_property(tmp_path_factory, graph):
    path = tmp_path_factory.mktemp("io") / "g.npz"
    write_npz(graph, path)
    assert read_npz(path) == graph


@given(
    st.lists(
        st.floats(
            min_value=-1e6,
            max_value=1e6,
            allow_nan=False,
            allow_infinity=False,
        ),
        min_size=1,
        max_size=50,
    )
)
@settings(**SETTINGS)
def test_scores_roundtrip_property(tmp_path_factory, values):
    path = tmp_path_factory.mktemp("io") / "v.scores"
    scores = np.asarray(values, dtype=np.float64)
    write_scores(scores, path)
    assert np.array_equal(read_scores(path), scores)


@given(st.integers(1, 5_000), st.floats(0.05, 0.95))
@settings(**SETTINGS)
def test_farm_closed_form_relations(k, c):
    """Order relations of the farm formulas hold for every k and c."""
    star = star_farm_target(k, c)
    optimal = optimal_farm_target(k, c)
    booster = optimal_farm_booster(k, c)
    assert optimal > star > 1.0
    assert booster > 1.0
    # conservation-flavoured sanity: the farm's total scaled PageRank
    # equals its node count plus what the circulating rank adds
    assert optimal + k * booster > (k + 1)
    # relay farms never beat the flat star farm with the same budget
    if k >= 2:
        assert relay_farm_target(k - 1, 1, c) <= star + 1e-9


@given(st.floats(1.5, 5_000.0), st.booleans())
@settings(**SETTINGS)
def test_boosters_needed_is_minimal(score, recycling):
    k = boosters_needed(score, recycling=recycling)
    formula = optimal_farm_target if recycling else star_farm_target
    assert formula(max(k, 1)) >= score - 1e-9
    if k > 1:
        assert formula(k - 1) < score


@given(graphs(min_nodes=3))
@settings(**SETTINGS)
def test_contributions_to_sums_to_pagerank(graph):
    scores = pagerank(graph, tol=1e-13).scores
    target = graph.num_nodes // 2
    contributions = contributions_to(graph, target)
    assert contributions.sum() == pytest.approx(scores[target], abs=1e-10)
    assert (contributions >= -1e-15).all()


@st.composite
def labeled_samples(draw):
    size = draw(st.integers(2, 40))
    labels = draw(
        st.lists(
            st.sampled_from([LABEL_GOOD, LABEL_SPAM]),
            min_size=size,
            max_size=size,
        )
    )
    mass = np.asarray(
        draw(
            st.lists(
                st.floats(-5.0, 1.0, allow_nan=False),
                min_size=size,
                max_size=size,
            )
        )
    )
    sample = EvaluationSample(
        np.arange(size), labels, np.zeros(size, dtype=bool)
    )
    return sample, mass


@given(labeled_samples(), st.floats(-5.0, 1.0), st.floats(-5.0, 1.0))
@settings(**SETTINGS)
def test_precision_counts_monotone_in_tau(pair, tau1, tau2):
    sample, mass = pair
    lo, hi = sorted((tau1, tau2))
    loose = precision_at(sample, mass, lo)
    strict = precision_at(sample, mass, hi)
    assert strict.num_total <= loose.num_total
    assert strict.num_spam <= loose.num_spam
    eligible = np.ones(len(sample), dtype=bool)
    assert detection_volume(mass, eligible, hi) <= detection_volume(
        mass, eligible, lo
    )
