"""Property-based invariants of PageRank and spam-mass estimation.

Randomized graphs and cores (via hypothesis) exercise the paper's
algebraic guarantees rather than specific worked examples:

* ``‖p‖₁ ≤ 1`` for any jump vector with ``‖v‖₁ ≤ 1`` (Section 2.2 —
  the linear PageRank gives up the mass that dies at dangling nodes);
* with the *full* good core, the γ-scaled core jump satisfies
  ``w = γ·v ≤ v``, hence ``p′ ≤ p`` componentwise (linearity +
  non-negativity of the resolvent);
* the two mass forms agree through the identity ``M̃ = m̃ · p``
  (Definitions 1–3);
* the operator cache is invisible to numerics: a cache hit returns the
  same solution arrays a cold build produces, bit for bit.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mass import estimate_spam_mass
from repro.core.pagerank import pagerank, uniform_jump_vector
from repro.graph.webgraph import WebGraph
from repro.perf import PagerankEngine

TOL = 1e-12
SETTINGS = dict(max_examples=25, deadline=None)


@st.composite
def graph_and_core(draw):
    """A random graph plus a non-empty node subset to use as the core."""
    n = draw(st.integers(min_value=5, max_value=60))
    num_edges = draw(st.integers(min_value=0, max_value=4 * n))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    edges = rng.integers(0, n, size=(num_edges, 2))
    graph = WebGraph.from_edges(n, [tuple(map(int, e)) for e in edges])
    core_size = draw(st.integers(min_value=1, max_value=n))
    core = rng.choice(n, size=core_size, replace=False)
    return graph, np.sort(core)


@given(graph_and_core())
@settings(**SETTINGS)
def test_pagerank_norm_bounded_by_one(gc):
    graph, _ = gc
    scores = pagerank(graph, tol=TOL).scores
    assert scores.min() >= 0.0
    assert scores.sum() <= 1.0 + 1e-9


@given(graph_and_core(), st.floats(min_value=0.05, max_value=1.0))
@settings(**SETTINGS)
def test_full_core_pagerank_dominated(gc, gamma):
    # with the core = the whole graph, w = (γ/n)·1 ≤ (1/n)·1 = v, so
    # p' = PR(w) = γ·PR(v) ≤ PR(v) componentwise
    graph, _ = gc
    full_core = np.arange(graph.num_nodes)
    est = estimate_spam_mass(graph, full_core, gamma=gamma, tol=TOL)
    assert np.all(est.core_pagerank <= est.pagerank + 1e-9)
    # and exactly proportional, since w = γ·v
    assert np.abs(
        est.core_pagerank - gamma * est.pagerank
    ).max() < 1e-9


@given(graph_and_core())
@settings(**SETTINGS)
def test_mass_identity_absolute_equals_relative_times_p(gc):
    graph, core = gc
    est = estimate_spam_mass(graph, core, gamma=0.85, tol=TOL)
    # p ≥ (1−c)/n > 0 everywhere under the uniform jump, so the
    # relative form is defined everywhere and M̃ = m̃·p exactly
    assert est.pagerank.min() > 0.0
    assert np.allclose(
        est.absolute, est.relative * est.pagerank, atol=1e-12
    )
    assert np.array_equal(
        est.absolute, est.pagerank - est.core_pagerank
    )


@given(graph_and_core())
@settings(**SETTINGS)
def test_cache_hit_equals_cold_build(gc):
    graph, core = gc
    n = graph.num_nodes
    vectors = np.stack(
        [
            uniform_jump_vector(n),
            np.where(np.isin(np.arange(n), core), 0.85 / len(core), 0.0),
        ],
        axis=1,
    )
    warm_engine = PagerankEngine()
    cold = warm_engine.solve_many(graph, vectors, tol=TOL)
    hit = warm_engine.solve_many(graph, vectors, tol=TOL)
    info = warm_engine.cache.cache_info()
    assert info["misses"] == 1 and info["hits"] >= 1
    assert np.array_equal(hit.scores, cold.scores)
    # and a completely fresh engine (cold build) agrees bit for bit —
    # caching never changes the arithmetic
    fresh = PagerankEngine().solve_many(graph, vectors, tol=TOL)
    assert np.array_equal(fresh.scores, cold.scores)


@given(graph_and_core())
@settings(**SETTINGS)
def test_batched_pair_matches_sequential_estimates(gc):
    # the engine path (batched) and an explicit-matrix path (sequential
    # legacy) produce the same MassEstimates to solver tolerance
    graph, core = gc
    batched = estimate_spam_mass(graph, core, gamma=0.85, tol=TOL)
    from repro.graph.ops import transition_matrix

    sequential = estimate_spam_mass(
        graph,
        core,
        gamma=0.85,
        tol=TOL,
        transition_t=transition_matrix(graph).T.tocsr(),
    )
    assert np.abs(batched.pagerank - sequential.pagerank).sum() < 1e-8
    assert np.abs(
        batched.core_pagerank - sequential.core_pagerank
    ).sum() < 1e-8
