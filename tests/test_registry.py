"""Tests for the experiment registry."""

import pytest

from repro.eval import (
    EXPERIMENTS,
    is_contextual,
    list_experiments,
    run_experiment,
)
from repro.eval.results import TableResult


def test_registry_covers_design_index():
    expected = {
        "T1", "F1", "F2", "S41", "S43", "T2", "F3", "F4", "F5", "F6",
        "S442", "S46", "A1", "A2", "A3", "A4", "A5", "A6", "A7",
        "A8A", "A8B", "FW1",
    }
    assert set(list_experiments()) == expected


def test_contextual_flags():
    assert not is_contextual("T1")
    assert not is_contextual("S41")
    assert not is_contextual("A6")
    assert is_contextual("F4")
    assert is_contextual("FW1")


def test_run_standalone_experiments():
    for exp_id in ("T1", "F1", "F2"):
        result = run_experiment(exp_id)
        assert isinstance(result, TableResult)
        assert result.experiment_id == exp_id


def test_run_contextual_with_shared_ctx(small_ctx):
    for exp_id in ("F4", "A8B"):
        result = run_experiment(exp_id, ctx=small_ctx)
        assert isinstance(result, TableResult)


def test_case_insensitive_and_unknown():
    assert run_experiment("t1").experiment_id == "T1"
    with pytest.raises(KeyError, match="unknown experiment"):
        run_experiment("Z9")
    with pytest.raises(KeyError):
        is_contextual("nope")


def test_entries_have_titles():
    for entry in EXPERIMENTS.values():
        assert entry.title
