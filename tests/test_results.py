"""Unit tests for TableResult and terminal reporting."""

import pytest

from repro.eval import (
    TableResult,
    render_curves,
    render_loglog,
    render_stacked_bars,
)


def make_table():
    return TableResult(
        "T9",
        "demo table",
        ["name", "value", "flag"],
        [["a", 1.5, True], ["b", float("nan"), False]],
        notes=["a note"],
    )


def test_column_extraction():
    t = make_table()
    assert t.column("value") == [1.5, float("nan")] or t.column("value")[0] == 1.5
    assert t.column("name") == ["a", "b"]
    with pytest.raises(KeyError):
        t.column("missing")


def test_row_length_validation():
    with pytest.raises(ValueError):
        TableResult("X", "bad", ["a", "b"], [[1]])


def test_ascii_rendering():
    text = make_table().to_ascii()
    assert "[T9] demo table" in text
    assert "a note" in text
    assert "n/a" in text  # NaN formatting
    assert "1.5" in text


def test_markdown_rendering():
    md = make_table().to_markdown()
    assert md.startswith("### T9: demo table")
    assert "| name | value | flag |" in md
    assert "|---|---|---|" in md
    assert "*a note*" in md


def test_cell_formatting_edge_cases():
    t = TableResult(
        "F", "fmt", ["v"], [[0.00001], [2.0], [1234567.0], [0.123456]]
    )
    text = t.to_ascii()
    assert "1.000e-05" in text
    assert "2" in text
    assert "1.235e+06" in text or "1234567" in text
    assert "0.1235" in text


def test_render_stacked_bars():
    art = render_stacked_bars(
        ["g1", "g2"],
        {"good": [3, 1], "spam": [1, 3]},
    )
    assert "#=good" in art and "+=spam" in art
    assert "g1" in art and "(4)" in art
    with pytest.raises(ValueError):
        render_stacked_bars(["g1"], {})
    with pytest.raises(ValueError):
        render_stacked_bars(["g1"], {"good": [1, 2]})


def test_render_curves():
    art = render_curves(
        [0.98, 0.5, 0.0],
        {"incl": [0.6, 0.5, 0.45], "excl": [1.0, 0.8, float("nan")]},
    )
    assert "o=incl" in art and "x=excl" in art
    assert "0.98" in art
    with pytest.raises(ValueError):
        render_curves([1, 2], {})
    with pytest.raises(ValueError):
        render_curves([1, 2], {"a": [1.0]})
    with pytest.raises(ValueError):
        render_curves([1.0], {"a": [float("nan")]})


def test_render_loglog():
    art = render_loglog([1.0, 10.0, 100.0], [0.1, 0.01, 0.001], title="mass")
    assert "mass" in art
    assert "*" in art
    assert render_loglog([], [], title="empty").startswith("empty")
