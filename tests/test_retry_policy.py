"""Property-based coverage of :class:`BackoffPolicy` / `with_retries`.

The policy's contract is deterministic arithmetic — the same policy
always yields the same schedule, jitter stays inside its band, and no
schedule ever sleeps past ``max_total`` — which is exactly the kind of
claim hypothesis checks better than examples do.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.retry import BackoffPolicy, with_retries

finite = dict(allow_nan=False, allow_infinity=False)

policies = st.builds(
    BackoffPolicy,
    retries=st.integers(min_value=0, max_value=12),
    base=st.floats(min_value=0.0, max_value=10.0, **finite),
    factor=st.floats(min_value=0.1, max_value=4.0, **finite),
    jitter=st.floats(min_value=0.0, max_value=0.999, **finite),
    max_delay=st.one_of(
        st.none(), st.floats(min_value=0.0, max_value=5.0, **finite)
    ),
    max_total=st.one_of(
        st.none(), st.floats(min_value=0.0, max_value=20.0, **finite)
    ),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)


@given(policy=policies)
@settings(max_examples=200)
def test_total_sleep_never_exceeds_the_cap(policy):
    schedule = policy.delays()
    assert len(schedule) == policy.retries
    assert all(d >= 0.0 for d in schedule)
    if policy.max_total is not None:
        assert sum(schedule) <= policy.max_total + 1e-9
    if policy.max_delay is not None:
        assert all(d <= policy.max_delay + 1e-12 for d in schedule)


@given(policy=policies)
@settings(max_examples=100)
def test_schedule_is_a_pure_function_of_the_policy(policy):
    assert policy.delays() == policy.delays()
    assert policy.total_sleep() == sum(policy.delays())


@given(
    policy=policies,
    rng_seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=100)
def test_injected_rng_overrides_the_seed_deterministically(policy, rng_seed):
    a = policy.delays(random.Random(rng_seed))
    b = policy.delays(random.Random(rng_seed))
    assert a == b


@given(
    retries=st.integers(min_value=1, max_value=8),
    base=st.floats(min_value=0.001, max_value=2.0, **finite),
    jitter=st.floats(min_value=0.0, max_value=0.999, **finite),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=150)
def test_jitter_stays_inside_its_band(retries, base, jitter, seed):
    """Each delay is the raw exponential delay stretched by at most
    ``1 + jitter`` (and never shrunk)."""
    jittered = BackoffPolicy(
        retries=retries, base=base, factor=2.0, jitter=jitter, seed=seed
    ).delays()
    raw = BackoffPolicy(retries=retries, base=base, factor=2.0).delays()
    for got, lo in zip(jittered, raw):
        assert lo - 1e-12 <= got <= lo * (1.0 + jitter) + 1e-9


@pytest.mark.parametrize(
    "kwargs",
    [
        {"retries": -1},
        {"base": -0.1},
        {"factor": 0.0},
        {"jitter": 1.0},
        {"jitter": -0.2},
        {"max_delay": -1.0},
        {"max_total": -1.0},
    ],
)
def test_policy_validates_its_fields(kwargs):
    with pytest.raises(ValueError):
        BackoffPolicy(**kwargs)


# ----------------------------------------------------------------------
# with_retries under a policy: observed sleep and telemetry
# ----------------------------------------------------------------------


class _FailsN:
    def __init__(self, failures, exc=OSError):
        self.failures = failures
        self.exc = exc
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc(f"transient #{self.calls}")
        return "ok"


@given(
    failures=st.integers(min_value=0, max_value=6),
    policy=policies.filter(lambda p: p.retries >= 6),
)
@settings(max_examples=80)
def test_with_retries_sleeps_exactly_the_schedule_prefix(failures, policy):
    slept = []
    result = with_retries(
        _FailsN(failures), policy=policy, sleep=slept.append
    )
    assert result == "ok"
    assert slept == policy.delays()[:failures]
    if policy.max_total is not None:
        assert sum(slept) <= policy.max_total + 1e-9


def test_with_retries_exhaustion_raises_the_last_error():
    fn = _FailsN(10)
    policy = BackoffPolicy(retries=2, base=0.0)
    with pytest.raises(OSError, match="transient #3"):
        with_retries(fn, policy=policy, sleep=lambda _: None)
    assert fn.calls == 3


def test_with_retries_emits_attempt_telemetry(telemetry):
    slept = []
    policy = BackoffPolicy(retries=3, base=0.125, factor=2.0)
    with_retries(
        _FailsN(2), policy=policy, sleep=slept.append, label="io.write"
    )
    events = telemetry.sink.named("retry.attempt")
    assert [e.attrs["attempt"] for e in events] == [1, 2]
    assert [e.attrs["delay"] for e in events] == [0.125, 0.25]
    assert all(e.attrs["label"] == "io.write" for e in events)
    assert all(e.attrs["error"] == "OSError" for e in events)
    assert telemetry.metrics.value("retry.attempts") == 2
    assert slept == [0.125, 0.25]


def test_with_retries_legacy_shorthand_still_works():
    slept = []
    result = with_retries(
        _FailsN(1), retries=2, backoff=0.5, factor=3.0, sleep=slept.append
    )
    assert result == "ok"
    assert slept == [0.5]
