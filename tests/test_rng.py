"""Unit tests for the deterministic RNG streams."""

import numpy as np
import pytest

from repro.synth import RngStreams


def test_same_name_same_stream():
    streams = RngStreams(42)
    assert streams.get("a") is streams.get("a")


def test_streams_reproducible_across_instances():
    a = RngStreams(42).get("base-web").random(5)
    b = RngStreams(42).get("base-web").random(5)
    assert np.array_equal(a, b)


def test_different_names_independent():
    streams = RngStreams(42)
    a = streams.get("x").random(5)
    b = streams.get("y").random(5)
    assert not np.array_equal(a, b)


def test_different_seeds_differ():
    a = RngStreams(1).get("x").random(5)
    b = RngStreams(2).get("x").random(5)
    assert not np.array_equal(a, b)


def test_fresh_replays_from_start():
    streams = RngStreams(7)
    first_draw = streams.get("s").random(3)
    replay = streams.fresh("s").random(3)
    assert np.array_equal(first_draw, replay)
    # while the cached stream has advanced
    assert not np.array_equal(streams.get("s").random(3), first_draw)


def test_adding_streams_does_not_shift_others():
    """The property the synthetic world relies on: adding one more farm
    must not change the base web."""
    only = RngStreams(9).get("base").random(10)
    streams = RngStreams(9)
    streams.get("farm-0").random(100)
    streams.get("farm-1").random(100)
    assert np.array_equal(streams.get("base").random(10), only)


def test_seed_type_checked():
    with pytest.raises(TypeError):
        RngStreams("not-an-int")
