"""Unit tests for the resilient runtime layer (repro.runtime)."""

import numpy as np
import pytest

from repro.errors import (
    BudgetExceeded,
    CheckpointError,
    ConvergenceError,
    SolverAbort,
)
from repro.graph import WebGraph, transition_matrix
from repro.runtime import (
    CheckpointManager,
    Deadline,
    ResidualMonitor,
    compose_callbacks,
    problem_fingerprint,
    with_retries,
)
from repro.runtime.chaos import FlakyCalls
from repro.runtime.resilient import (
    DEFAULT_CHAIN,
    FallbackSolver,
    RuntimePolicy,
    resilient_solve,
)


@pytest.fixture()
def system():
    graph = WebGraph.from_edges(
        6, [(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 5), (5, 0)]
    )
    tt = transition_matrix(graph).T.tocsr()
    v = np.full(6, 1.0 / 6.0)
    return tt, v


# ----------------------------------------------------------------------
# retry
# ----------------------------------------------------------------------


def test_with_retries_recovers_from_transient_failures():
    sleeps = []
    flaky = FlakyCalls(lambda: "ok", fail_first=2, exc=OSError)
    result = with_retries(
        flaky, retries=3, backoff=0.01, sleep=sleeps.append
    )
    assert result == "ok"
    assert flaky.calls == 3
    # exponential backoff
    assert sleeps == [0.01, 0.02]


def test_with_retries_exhausts_and_reraises():
    flaky = FlakyCalls(lambda: "ok", fail_first=5, exc=OSError)
    with pytest.raises(OSError):
        with_retries(flaky, retries=2, backoff=0.0, sleep=lambda _: None)
    assert flaky.calls == 3


def test_with_retries_does_not_catch_unlisted_exceptions():
    flaky = FlakyCalls(lambda: "ok", fail_first=1, exc=KeyError)
    with pytest.raises(KeyError):
        with_retries(flaky, retries=5, backoff=0.0, sleep=lambda _: None)
    assert flaky.calls == 1


# ----------------------------------------------------------------------
# checkpoints
# ----------------------------------------------------------------------


def test_checkpoint_roundtrip(tmp_path):
    manager = CheckpointManager(tmp_path, every=10)
    p = np.linspace(0.0, 1.0, 8)
    manager.save(p, 40, 1e-5, method="jacobi", residual_history=[1e-3, 1e-4])
    restored = manager.load_latest()
    assert restored is not None
    assert restored.iteration == 40
    assert restored.method == "jacobi"
    assert restored.residual == pytest.approx(1e-5)
    np.testing.assert_array_equal(restored.p, p)
    assert restored.residual_history == [1e-3, 1e-4]


def test_checkpoint_keeps_newest_and_prunes(tmp_path):
    manager = CheckpointManager(tmp_path, every=1, keep=2)
    for it in (10, 20, 30, 40):
        manager.save(np.full(4, it, dtype=float), it, 1.0 / it)
    names = sorted(p.name for p in tmp_path.iterdir())
    assert names == ["ckpt-000000030.npz", "ckpt-000000040.npz"]
    assert manager.load_latest().iteration == 40


def test_checkpoint_skips_corrupt_latest(tmp_path):
    manager = CheckpointManager(tmp_path, every=1, keep=3)
    manager.save(np.ones(4), 10, 1e-2)
    manager.save(np.ones(4), 20, 1e-3)
    # corrupt the newest snapshot in place (torn read, bad disk, ...)
    newest = sorted(tmp_path.iterdir())[-1]
    newest.write_bytes(b"not an npz archive")
    restored = manager.load_latest()
    assert restored is not None
    assert restored.iteration == 10


def test_checkpoint_fingerprint_mismatch_refuses_resume(tmp_path):
    manager = CheckpointManager(tmp_path, every=1)
    manager.save(np.ones(4), 10, 1e-2, fingerprint="problem-A")
    with pytest.raises(CheckpointError, match="different problem"):
        manager.load_latest(fingerprint="problem-B")
    # non-strict mode skips instead
    assert (
        manager.load_latest(fingerprint="problem-B", strict_fingerprint=False)
        is None
    )


def test_checkpoint_write_is_atomic_no_tmp_left(tmp_path):
    manager = CheckpointManager(tmp_path, every=1)
    manager.save(np.ones(16), 5, 1e-1)
    leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
    assert leftovers == []


def test_checkpoint_save_retries_transient_oserror(tmp_path, monkeypatch):
    import repro.runtime.checkpoint as ckpt_mod

    real_replace = ckpt_mod.os.replace
    flaky = FlakyCalls(real_replace, fail_first=2, exc=OSError)
    monkeypatch.setattr(ckpt_mod.os, "replace", flaky)
    manager = CheckpointManager(
        tmp_path, every=1, retries=3, backoff=0.0, sleep=lambda _: None
    )
    manager.save(np.ones(4), 10, 1e-2)
    monkeypatch.setattr(ckpt_mod.os, "replace", real_replace)
    assert manager.load_latest().iteration == 10
    assert flaky.calls == 3


def test_problem_fingerprint_distinguishes_problems(system):
    tt, v = system
    fp1 = problem_fingerprint(tt, v)
    assert fp1 == problem_fingerprint(tt, v.copy())
    assert fp1 != problem_fingerprint(tt, v * 0.5)


# ----------------------------------------------------------------------
# monitors
# ----------------------------------------------------------------------


def test_monitor_aborts_on_nan_residual():
    monitor = ResidualMonitor()
    with pytest.raises(SolverAbort) as excinfo:
        monitor(1, np.ones(4), float("nan"))
    assert excinfo.value.reason == "nan"


def test_monitor_aborts_on_poisoned_iterate():
    monitor = ResidualMonitor(check_every=1)
    p = np.ones(4)
    p[2] = np.nan
    with pytest.raises(SolverAbort) as excinfo:
        monitor(1, p, 0.5)
    assert excinfo.value.reason == "nan"


def test_monitor_aborts_on_divergence():
    monitor = ResidualMonitor(min_iterations=2, divergence_factor=10.0)
    p = np.ones(4)
    for it, r in enumerate([1.0, 0.5, 0.4], start=1):
        monitor(it, p, r)
    with pytest.raises(SolverAbort) as excinfo:
        monitor(4, p, 400.0)
    assert excinfo.value.reason == "diverged"


def test_monitor_aborts_on_stagnation():
    monitor = ResidualMonitor(
        tol=1e-12, stagnation_window=5, stagnation_ratio=0.999
    )
    p = np.ones(4)
    with pytest.raises(SolverAbort) as excinfo:
        for it in range(1, 50):
            monitor(it, p, 0.25)  # never improves, never meets tol
    assert excinfo.value.reason == "stagnated"


def test_monitor_allows_healthy_convergence():
    monitor = ResidualMonitor(tol=1e-12, stagnation_window=10)
    p = np.ones(4)
    for it in range(1, 200):
        monitor(it, p, 0.9**it)  # geometric decay, like a real solve


def test_deadline_expires_with_fake_clock():
    times = iter([0.0, 0.5, 2.0, 2.5])
    deadline = Deadline(1.0, clock=lambda: next(times))
    assert not deadline.expired()  # t=0.5
    with pytest.raises(BudgetExceeded):
        deadline.check()  # t=2.0


def test_compose_callbacks_order_and_none_skipping():
    seen = []
    cb = compose_callbacks(
        None, lambda i, p, r: seen.append(("a", i)), None,
        lambda i, p, r: seen.append(("b", i)),
    )
    cb(3, np.ones(2), 0.1)
    assert seen == [("a", 3), ("b", 3)]
    assert compose_callbacks(None, None) is None


# ----------------------------------------------------------------------
# fallback solver
# ----------------------------------------------------------------------


def test_fallback_healthy_input_single_attempt(system):
    tt, v = system
    result = FallbackSolver(DEFAULT_CHAIN, tol=1e-12).solve(tt, v)
    assert result.converged
    assert result.report.outcome == "converged"
    assert result.report.escalations() == ["gauss_seidel"]
    assert result.report.attempts[0].outcome == "converged"


def test_fallback_matches_direct_solution(system):
    tt, v = system
    from repro.core.solvers import direct

    expected = direct(tt, v).scores
    result = resilient_solve(tt, v, tol=1e-13)
    assert np.abs(result.scores - expected).max() < 1e-9


def test_fallback_skips_power_for_unnormalized_v(system):
    tt, v = system
    result = FallbackSolver(("power", "jacobi")).solve(tt, 0.5 * v)
    assert result.converged
    assert result.method == "jacobi"
    skipped = result.report.attempts[0]
    assert skipped.method == "power"
    assert skipped.outcome == "skipped:unnormalized-v"


def test_fallback_escalates_on_memoryerror(system):
    tt, v = system

    calls = {"n": 0}

    def oom_once(it, p, r):
        if calls["n"] == 0 and it == 3:
            calls["n"] += 1
            raise MemoryError("injected allocation failure")

    result = FallbackSolver(("gauss_seidel", "jacobi")).solve(
        tt, v, inject=oom_once
    )
    assert result.converged
    assert result.method == "jacobi"
    outcomes = [a.outcome for a in result.report.attempts]
    assert outcomes == ["error:MemoryError", "converged"]


def test_fallback_exhausted_chain_returns_best_effort(system):
    tt, v = system
    # max_iter far too small for tol: every method exhausts
    result = FallbackSolver(
        ("jacobi", "gauss_seidel"), tol=1e-15, max_iter=3
    ).solve(tt, v)
    assert not result.converged
    assert result.report.outcome == "best-effort"
    assert np.all(np.isfinite(result.scores))
    # the best-effort vector is the lowest-residual attempt
    residuals = [
        a.residual for a in result.report.attempts if np.isfinite(a.residual)
    ]
    assert result.residual == pytest.approx(min(residuals))


def test_fallback_time_budget_returns_best_effort(system):
    tt, v = system
    ticks = iter(float(i) for i in range(10_000))
    solver = FallbackSolver(
        ("jacobi", "gauss_seidel"),
        tol=1e-15,
        time_budget=5.0,
        clock=lambda: next(ticks),
    )
    result = solver.solve(tt, v)
    assert not result.converged
    assert result.report.attempts[0].outcome == "aborted:time-budget"
    # the budget is global: the chain stops instead of escalating
    assert len(result.report.escalations()) == 1
    assert np.all(np.isfinite(result.scores))


def test_fallback_rejects_unknown_method():
    with pytest.raises(ValueError, match="unknown solver"):
        FallbackSolver(("jacobi", "not-a-solver"))


def test_runtime_policy_builds_labeled_checkpoints(tmp_path, system):
    tt, v = system
    policy = RuntimePolicy(
        checkpoint_dir=tmp_path / "ck", checkpoint_every=10
    )
    solver = policy.make_solver("pagerank", tol=1e-12)
    result = solver.solve(tt, v)
    assert result.converged
    assert (tmp_path / "ck" / "pagerank").is_dir()
    assert result.report.checkpoints_written > 0


def test_runtime_policy_resume_requires_dir():
    with pytest.raises(ValueError, match="checkpoint_dir"):
        RuntimePolicy(resume=True)


def test_run_report_serializes(system):
    tt, v = system
    result = resilient_solve(tt, v)
    payload = result.report.to_dict()
    assert payload["outcome"] == "converged"
    assert payload["attempts"][0]["method"] == "gauss_seidel"
    text = result.report.render()
    assert "converged" in text
