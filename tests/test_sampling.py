"""Unit tests for evaluation sampling and the inspection oracle."""

import numpy as np
import pytest

from repro.eval import (
    LABEL_GOOD,
    LABEL_NONEXISTENT,
    LABEL_SPAM,
    LABEL_UNKNOWN,
    EvaluationSample,
    InspectionOracle,
    build_evaluation_sample,
    uniform_sample,
)


def test_uniform_sample_by_fraction(rng):
    nodes = np.arange(1_000)
    sample = uniform_sample(nodes, rng, fraction=0.1)
    assert len(sample) == 100
    assert len(np.unique(sample)) == 100
    assert np.array_equal(sample, np.sort(sample))


def test_uniform_sample_by_size(rng):
    sample = uniform_sample(np.arange(50), rng, size=10)
    assert len(sample) == 10


def test_uniform_sample_validation(rng):
    nodes = np.arange(10)
    with pytest.raises(ValueError):
        uniform_sample(nodes, rng)
    with pytest.raises(ValueError):
        uniform_sample(nodes, rng, fraction=0.5, size=3)
    with pytest.raises(ValueError):
        uniform_sample(nodes, rng, fraction=0.0)
    with pytest.raises(ValueError):
        uniform_sample(nodes, rng, size=11)


def test_oracle_truth_without_noise(tiny_world, rng):
    oracle = InspectionOracle(
        tiny_world, rng, frac_unknown=0.0, frac_nonexistent=0.0
    )
    spam = int(tiny_world.spam_nodes()[0])
    good = int(tiny_world.good_nodes()[0])
    assert oracle.inspect(spam) == LABEL_SPAM
    assert oracle.inspect(good) == LABEL_GOOD


def test_oracle_exclusion_rates(tiny_world, rng):
    oracle = InspectionOracle(
        tiny_world, rng, frac_unknown=0.2, frac_nonexistent=0.1
    )
    nodes = np.zeros(20_000, dtype=np.int64)  # same node, many draws
    labels = oracle.inspect_all(nodes)
    frac_unknown = labels.count(LABEL_UNKNOWN) / len(labels)
    frac_gone = labels.count(LABEL_NONEXISTENT) / len(labels)
    assert frac_unknown == pytest.approx(0.2, abs=0.02)
    assert frac_gone == pytest.approx(0.1, abs=0.02)


def test_oracle_validation(tiny_world, rng):
    with pytest.raises(ValueError):
        InspectionOracle(tiny_world, rng, frac_unknown=-0.1)
    with pytest.raises(ValueError):
        InspectionOracle(
            tiny_world, rng, frac_unknown=0.6, frac_nonexistent=0.5
        )


def test_evaluation_sample_masks():
    nodes = np.array([10, 20, 30, 40])
    labels = [LABEL_GOOD, LABEL_SPAM, LABEL_UNKNOWN, LABEL_NONEXISTENT]
    anomalous = np.array([True, False, False, False])
    sample = EvaluationSample(nodes, labels, anomalous)
    assert sample.usable_mask().tolist() == [True, True, False, False]
    assert sample.spam_sample_mask().tolist() == [False, True, False, False]
    assert sample.good_sample_mask().tolist() == [True, False, False, False]
    assert sample.composition() == {
        LABEL_GOOD: 1,
        LABEL_SPAM: 1,
        LABEL_UNKNOWN: 1,
        LABEL_NONEXISTENT: 1,
    }
    assert len(sample) == 4


def test_evaluation_sample_alignment_check():
    with pytest.raises(ValueError):
        EvaluationSample(np.array([1, 2]), ["good"], np.array([False]))


def test_build_evaluation_sample_full_population(tiny_world, rng):
    eligible = tiny_world.good_nodes()[:200]
    sample = build_evaluation_sample(tiny_world, eligible, rng)
    assert len(sample) == 200
    assert np.array_equal(sample.nodes, np.sort(eligible))


def test_build_evaluation_sample_fraction(tiny_world, rng):
    eligible = np.arange(500)
    sample = build_evaluation_sample(
        tiny_world, eligible, rng, fraction=0.1
    )
    assert len(sample) == 50


def test_build_evaluation_sample_marks_anomalous(tiny_world, rng):
    anomalous_nodes = tiny_world.anomalous_nodes()
    sample = build_evaluation_sample(
        tiny_world,
        anomalous_nodes[:10],
        rng,
        frac_unknown=0.0,
        frac_nonexistent=0.0,
    )
    assert sample.anomalous_mask.all()
    # paper-composition bookkeeping: anomalous hosts are good
    assert all(label == LABEL_GOOD for label in sample.labels)


def test_disputed_labels_flip_at_rate(tiny_world, rng):
    spam = int(tiny_world.spam_nodes()[0])
    oracle = InspectionOracle(
        tiny_world,
        rng,
        frac_unknown=0.0,
        frac_nonexistent=0.0,
        frac_disputed=0.25,
    )
    labels = oracle.inspect_all(np.full(8_000, spam, dtype=np.int64))
    flipped = labels.count(LABEL_GOOD) / len(labels)
    assert flipped == pytest.approx(0.25, abs=0.02)


def test_disputed_labels_blur_measured_precision(small_ctx, rng):
    """The paper's gray-area footnote, quantified: labeling
    disagreement pulls the measured precision toward 50/50 even though
    the detector did not change."""
    from repro.eval import precision_at

    eligible = np.flatnonzero(small_ctx.eligible_mask)
    clean = build_evaluation_sample(
        small_ctx.world, eligible, rng, frac_disputed=0.0
    )
    noisy = build_evaluation_sample(
        small_ctx.world, eligible, rng, frac_disputed=0.3
    )
    tau = 0.98
    clean_prec = precision_at(
        clean, small_ctx.estimates.relative, tau, exclude_anomalous=True
    ).precision
    noisy_prec = precision_at(
        noisy, small_ctx.estimates.relative, tau, exclude_anomalous=True
    ).precision
    assert noisy_prec < clean_prec


def test_disputed_validation(tiny_world, rng):
    with pytest.raises(ValueError):
        InspectionOracle(tiny_world, rng, frac_disputed=1.0)
