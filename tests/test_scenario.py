"""Integration-flavoured tests for the scenario composer."""

import numpy as np
import pytest

from repro.synth import (
    WorldConfig,
    build_world,
    default_good_core,
    true_gamma,
)


def test_world_is_deterministic(tiny_config):
    a = build_world(tiny_config)
    b = build_world(tiny_config)
    assert a.graph == b.graph
    assert np.array_equal(a.spam_mask, b.spam_mask)
    assert set(a.groups) == set(b.groups)


def test_different_seeds_differ(tiny_config):
    import copy

    a = build_world(tiny_config)
    other = WorldConfig(
        seed=tiny_config.seed + 1,
        num_base_hosts=tiny_config.num_base_hosts,
        num_farms=tiny_config.num_farms,
    )
    b = build_world(other)
    assert a.graph != b.graph


def test_world_has_all_expected_groups(tiny_world):
    expected = {
        "base:all",
        "base:active",
        "directory",
        "gov",
        "edu",
        "edu:us",
        "edu:pl",
        "edu:cz",
        "portal:megaportal.com",
        "portal:megaportal.com:hubs",
        "blogs",
        "country:pl",
        "country:cz",
        "cliques",
        "spam:targets",
        "spam:all",
        "expired:targets",
        "paid:customers",
        "anomalous",
    }
    assert expected <= set(tiny_world.groups)


def test_spam_composition(tiny_world, tiny_config):
    targets = tiny_world.group("spam:targets")
    # independent farms + alliance farms
    expected_targets = (
        tiny_config.num_farms
        + tiny_config.num_alliances * tiny_config.alliance_targets
    )
    assert len(targets) == expected_targets
    assert tiny_world.spam_mask[targets].all()
    expired = tiny_world.group("expired:targets")
    assert len(expired) == tiny_config.num_expired


def test_anomalous_are_good(tiny_world):
    anomalous = tiny_world.anomalous_nodes()
    assert len(anomalous) > 0
    assert not tiny_world.spam_mask[anomalous].any()


def test_paid_customers_are_spam(tiny_world):
    customers = tiny_world.group("paid:customers")
    assert tiny_world.spam_mask[customers].all()


def test_true_gamma(tiny_world):
    gamma = true_gamma(tiny_world)
    assert 0.5 < gamma < 1.0
    assert gamma == pytest.approx(
        (~tiny_world.spam_mask).sum() / tiny_world.num_nodes
    )


def test_default_good_core_undercovers_pl(tiny_world):
    core = default_good_core(tiny_world, uncovered_coverage=0.0)
    pl_edu = set(tiny_world.group("edu:pl").tolist())
    assert not (pl_edu & set(core.tolist()))
    cz_edu = set(tiny_world.group("edu:cz").tolist())
    assert cz_edu <= set(core.tolist())


def test_stock_configs_have_increasing_scale():
    small = WorldConfig.small()
    medium = WorldConfig.medium()
    large = WorldConfig.large()
    assert (
        small.num_base_hosts < medium.num_base_hosts < large.num_base_hosts
    )
    assert small.num_farms < medium.num_farms < large.num_farms


def test_farm_size_distribution_is_heavy_tailed(tiny_world, tiny_config):
    sizes = [
        len(tiny_world.group(f"farm:{i}:boosters"))
        for i in range(tiny_config.num_farms)
    ]
    lo, hi = tiny_config.farm_boosters_range
    assert min(sizes) >= lo - 1
    assert max(sizes) <= hi + 1
    # Pareto-ish: the median sits in the lower part of the range
    assert np.median(sizes) < (lo + hi) / 2


def test_names_are_unique(tiny_world):
    names = tiny_world.graph.names
    assert names is not None
    assert len(set(names)) == len(names)
