"""Seed-robustness tests: the reproduced shapes must not be artifacts
of the default seed.

Every headline shape assertion is re-checked across several world
seeds at the small scale; failures here would mean the calibration is
overfitted to one random draw.
"""

import numpy as np
import pytest

from repro.core import MassDetector
from repro.eval import ReproductionContext, precision_curve
from repro.synth import WorldConfig

SEEDS = (101, 202, 303)


@pytest.fixture(scope="module", params=SEEDS)
def seeded_ctx(request):
    return ReproductionContext.build(WorldConfig.small(seed=request.param))


def test_high_tau_precision_excluding_anomalies(seeded_ctx):
    point = precision_curve(
        seeded_ctx.sample,
        seeded_ctx.estimates.relative,
        (0.98,),
        exclude_anomalous=True,
    )[0]
    assert point.precision >= 0.85


def test_precision_decays_toward_base_rate(seeded_ctx):
    curve = precision_curve(
        seeded_ctx.sample,
        seeded_ctx.estimates.relative,
        (0.98, 0.0),
        exclude_anomalous=True,
    )
    assert curve[0].precision >= curve[1].precision - 0.05


def test_spam_good_separation(seeded_ctx):
    eligible = seeded_ctx.eligible_mask
    spam_mask = seeded_ctx.world.spam_mask
    anomalous = np.zeros(seeded_ctx.world.num_nodes, dtype=bool)
    anomalous[seeded_ctx.world.anomalous_nodes()] = True
    rel = seeded_ctx.estimates.relative
    spam_mean = rel[eligible & spam_mask].mean()
    good_mean = rel[eligible & ~spam_mask & ~anomalous].mean()
    assert spam_mean - good_mean > 0.5


def test_anomalous_communities_high_mass(seeded_ctx):
    eligible = seeded_ctx.eligible_mask
    anomalous = np.zeros(seeded_ctx.world.num_nodes, dtype=bool)
    anomalous[seeded_ctx.world.anomalous_nodes()] = True
    chosen = eligible & anomalous
    if not chosen.any():
        pytest.skip("no eligible anomalous hosts at this seed")
    assert seeded_ctx.estimates.relative[chosen].mean() > 0.5


def test_expired_domains_stay_negative(seeded_ctx):
    expired = seeded_ctx.world.group("expired:targets")
    assert seeded_ctx.estimates.relative[expired].max() < 0.5


def test_core_members_negative_mass(seeded_ctx):
    core_rel = seeded_ctx.estimates.relative[seeded_ctx.core]
    assert (core_rel < 0).mean() > 0.9


def test_detector_finds_targets(seeded_ctx):
    result = MassDetector(tau=0.9, rho=10.0).detect(seeded_ctx.estimates)
    targets = seeded_ctx.world.group("spam:targets")
    caught = result.candidate_mask[targets].sum()
    assert caught >= len(targets) * 0.25
