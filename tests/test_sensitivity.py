"""Tests for the γ/ρ sensitivity sweeps."""

import pytest

from repro.eval import run_gamma_sensitivity, run_rho_sensitivity


def test_gamma_sweep_precision_stable(small_ctx):
    result = run_gamma_sensitivity(small_ctx)
    precisions = result.column("precision (elig.)")
    # the detector is forgiving to gamma mis-estimation
    assert max(precisions) - min(precisions) < 0.1
    # the negative-mass share of the good web grows with gamma
    negatives = result.column("frac good w/ negative m~")
    assert negatives == sorted(negatives)
    assert negatives[-1] > negatives[0]


def test_gamma_sweep_reports_truth(small_ctx):
    result = run_gamma_sensitivity(small_ctx, gammas=(0.85,))
    truth_note = [n for n in result.notes if "true good fraction" in n][0]
    truth = float(truth_note.split(":")[1].split(";")[0])
    assert truth == pytest.approx(
        1 - small_ctx.world.spam_mask.mean(), abs=0.001
    )


def test_rho_sweep_eligibility_shrinks(small_ctx):
    result = run_rho_sensitivity(small_ctx)
    eligible = result.column("|T| eligible")
    candidates = result.column("candidates")
    assert eligible == sorted(eligible, reverse=True)
    assert candidates == sorted(candidates, reverse=True)


def test_rho_filter_beats_no_filter(small_ctx):
    """The paper's reason for the filter: with a permissive rho, noisy
    relative estimates on low-PageRank hosts flood the candidate set
    with false positives."""
    result = run_rho_sensitivity(small_ctx, rhos=(2.0, 10.0))
    loose, standard = result.rows
    assert standard[3] >= loose[3]
    # the loose filter lets through many times more candidates
    assert loose[2] > 5 * standard[2]
