"""Admission control and the guarded single-task ingest wrapper.

Overload must be a decision: bounded depth, explicit mode transitions
(full → degraded → reject), deadline drops at dequeue, and structured
rejections.  The guarded re-estimate wrapper must retry, degrade to
its fallback exactly when allowed, and bound hung work with a
deadline.
"""

import pytest

from repro.errors import InjectedFault, SupervisionError
from repro.serve.admission import (
    MODES,
    AdmissionController,
    AdmissionRejected,
)
from repro.serve.ingest import IngestPolicy, IngestTimeout, guarded_call


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


# ----------------------------------------------------------------------
# admission
# ----------------------------------------------------------------------


def test_validation():
    with pytest.raises(ValueError):
        AdmissionController(0)
    with pytest.raises(ValueError):
        AdmissionController(4, request_timeout=0)
    assert set(MODES) == {"full", "degraded", "reject"}


def test_full_mode_admits_and_releases():
    ctl = AdmissionController(2)
    assert ctl.mode == "full"
    t1 = ctl.admit("score")
    t2 = ctl.admit("ingest")
    assert ctl.depth == 2
    with pytest.raises(AdmissionRejected) as info:
        ctl.admit("score")
    assert info.value.reason == "overloaded"
    ctl.release(t1)
    ctl.release(t1)  # idempotent
    assert ctl.depth == 1
    ctl.admit("score")
    ctl.release(t2)
    assert ctl.shed == 1


def test_degraded_mode_refuses_only_mutations():
    ctl = AdmissionController(8)
    ctl.set_ingest_healthy(False)
    assert ctl.mode == "degraded"
    ticket = ctl.admit("score")  # reads still flow
    ctl.release(ticket)
    with pytest.raises(AdmissionRejected) as info:
        ctl.admit("ingest")
    assert info.value.reason == "degraded"
    assert info.value.mode == "degraded"
    ctl.set_ingest_healthy(True)
    ctl.release(ctl.admit("ingest"))


def test_drain_refuses_everything():
    ctl = AdmissionController(8)
    ctl.start_drain()
    assert ctl.mode == "reject"
    for op in ("score", "ingest", "health"):
        with pytest.raises(AdmissionRejected) as info:
            ctl.admit(op)
        assert info.value.reason == "shutting-down"


def test_deadline_dropped_at_dequeue_and_slot_freed():
    clock = FakeClock()
    ctl = AdmissionController(4, request_timeout=5.0, clock=clock)
    ticket = ctl.admit("score")
    clock.now += 4.0
    ctl.check_deadline(ticket)  # still within budget
    clock.now += 2.0
    with pytest.raises(AdmissionRejected) as info:
        ctl.check_deadline(ticket)
    assert info.value.reason == "deadline"
    assert ctl.depth == 0  # released by the drop
    assert ctl.deadline_drops == 1


def test_no_timeout_means_no_deadline():
    ctl = AdmissionController(4)
    ticket = ctl.admit("score")
    assert ticket.deadline is None
    ctl.check_deadline(ticket)


# ----------------------------------------------------------------------
# guarded_call
# ----------------------------------------------------------------------


def _policy(**kw):
    return IngestPolicy(**kw)


def test_success_is_direct_and_not_degraded():
    result, degraded = guarded_call(
        lambda: 42, lambda: 0, _policy(), sleep=lambda _s: None
    )
    assert (result, degraded) == (42, False)


def test_transient_failure_is_retried():
    calls = []

    def warm():
        calls.append(1)
        if len(calls) < 3:
            raise InjectedFault("transient")
        return "ok"

    result, degraded = guarded_call(
        warm, lambda: "cold", _policy(max_retries=3), sleep=lambda _s: None
    )
    assert (result, degraded) == ("ok", False)
    assert len(calls) == 3


def test_exhaustion_degrades_to_fallback():
    def warm():
        raise InjectedFault("always")

    result, degraded = guarded_call(
        warm, lambda: "cold", _policy(max_retries=1), sleep=lambda _s: None
    )
    assert (result, degraded) == ("cold", True)


def test_no_degrade_raises_supervision_error():
    def warm():
        raise InjectedFault("always")

    with pytest.raises(SupervisionError, match="disallowed"):
        guarded_call(
            warm,
            lambda: "cold",
            _policy(max_retries=0, allow_degrade=False),
            sleep=lambda _s: None,
        )


def test_missing_fallback_raises_supervision_error():
    def warm():
        raise InjectedFault("always")

    with pytest.raises(SupervisionError, match="unavailable"):
        guarded_call(warm, None, _policy(max_retries=0),
                     sleep=lambda _s: None)


def test_fallback_failure_is_reported_as_supervision_error():
    def warm():
        raise InjectedFault("warm down")

    def cold():
        raise InjectedFault("cold down too")

    with pytest.raises(SupervisionError, match="cold fallback failed"):
        guarded_call(warm, cold, _policy(max_retries=0),
                     sleep=lambda _s: None)


def test_deadline_abandons_hung_warm_path():
    import time

    def hung():
        time.sleep(5.0)
        return "too late"

    result, degraded = guarded_call(
        hung,
        lambda: "cold",
        _policy(max_retries=0, deadline=0.1),
        sleep=lambda _s: None,
    )
    assert (result, degraded) == ("cold", True)


def test_deadline_timeout_surfaces_without_fallback():
    import time

    with pytest.raises(SupervisionError, match="IngestTimeout"):
        guarded_call(
            lambda: time.sleep(5.0),
            None,
            _policy(max_retries=0, deadline=0.1),
            sleep=lambda _s: None,
        )


def test_policy_validation():
    with pytest.raises(ValueError):
        IngestPolicy(max_retries=-1)
    with pytest.raises(ValueError):
        IngestPolicy(deadline=0)
    assert issubclass(IngestTimeout, Exception)
