"""Daemon-level contracts: queries, guarded ingest, crash recovery.

The acceptance story under test, end to end but in-process: queries
answer from one immutable epoch; an accepted delta is durable before
it is acknowledged; a warm apply matches a cold re-solve; kill-mid-swap
leaves readers on the previous epoch; repeated ingest failure opens the
circuit and degrades to stale-reads-only (reads stay available); and a
restart replays the WAL to bitwise-identical scores — including after
a crash between apply and the watermark fsync.
"""

import threading
import time

import numpy as np
import pytest

from repro.core.mass import estimate_spam_mass
from repro.errors import InjectedFault, SnapshotMismatchError, WalError
from repro.graph import write_graph_bundle, write_host_list
from repro.perf import PagerankEngine
from repro.runtime import save_solution
from repro.runtime.chaos import ServeChaos, truncate_wal_tail
from repro.serve import (
    DaemonConfig,
    DeltaWAL,
    ScoringDaemon,
    ScoringServer,
    ServeClient,
)
from test_differential_solvers import _random_graph

GAMMA = 0.85
DELTAS = [
    ([(0, 5), (1, 7)], []),
    ([(2, 9)], [(0, 5)]),
    ([(3, 11), (4, 13)], []),
]


@pytest.fixture(scope="module")
def base():
    rng = np.random.default_rng(7)
    graph = _random_graph(11, 120, 500)
    core = np.sort(rng.choice(graph.num_nodes, size=12, replace=False))
    estimates = estimate_spam_mass(graph, core, gamma=GAMMA)
    return graph, core, estimates


@pytest.fixture(scope="module")
def world(base, tmp_path_factory):
    """A persisted bundle + core + converged solution snapshot."""
    graph, core, estimates = base
    root = tmp_path_factory.mktemp("serve-world")
    world_dir = root / "world"
    write_graph_bundle(graph, world_dir)
    write_host_list(
        [graph.name_of(int(i)) for i in core], world_dir / "core.hosts"
    )
    ckpt = root / "ckpt-template"
    save_solution(
        ckpt,
        np.stack([estimates.pagerank, estimates.core_pagerank], axis=1),
        fingerprint=graph.structural_fingerprint(),
        extra={"damping": estimates.damping, "gamma": estimates.gamma,
               "labels": ["pagerank", "core"]},
    )
    return world_dir, ckpt


def _fresh_ckpt(world, tmp_path):
    """Copy the template snapshot so tests can mutate it freely."""
    import shutil

    _, template = world
    ckpt = tmp_path / "ckpt"
    shutil.copytree(template, ckpt)
    return ckpt


def _daemon(base, tmp_path, **config_kw):
    graph, core, estimates = base
    return ScoringDaemon(
        graph,
        core,
        estimates,
        checkpoint_dir=tmp_path / "ckpt",
        wal=DeltaWAL(tmp_path / "wal"),
        config=DaemonConfig(**config_kw),
    )


# ----------------------------------------------------------------------
# read path
# ----------------------------------------------------------------------


def test_query_score_matches_estimates(base, tmp_path):
    graph, core, estimates = base
    d = _daemon(base, tmp_path)
    host = graph.name_of(3)
    got = d.query_score(host)
    assert got["host"] == host and got["node"] == 3
    assert got["pagerank"] == pytest.approx(float(estimates.pagerank[3]))
    assert got["relative_mass"] == pytest.approx(
        float(estimates.relative[3])
    )
    assert got["epoch"] == 0 and got["staleness"] == 0
    assert got["mode"] == "full"
    with pytest.raises(KeyError):
        d.query_score("no-such-host")


def test_query_top_applies_algorithm2_gates(base, tmp_path):
    _, _, estimates = base
    d = _daemon(base, tmp_path)
    everything = d.query_top(5, tau=0.0, rho=0.0)
    assert len(everything["candidates"]) == 5
    masses = [c["relative_mass"] for c in everything["candidates"]]
    assert masses == sorted(masses, reverse=True)
    strict = d.query_top(5, tau=0.99, rho=1e9)
    assert strict["candidates"] == []
    assert strict["total_eligible"] == 0
    with pytest.raises(ValueError):
        d.query_top(0)


def test_query_explain_renders(base, tmp_path):
    graph, _, _ = base
    d = _daemon(base, tmp_path)
    got = d.query_explain(graph.name_of(3), top=3)
    assert graph.name_of(3) in got["text"]
    assert got["epoch"] == 0


def test_health_reports_serving_state(base, tmp_path):
    d = _daemon(base, tmp_path)
    health = d.health()
    assert health["ready"] is True
    assert health["circuit"] == "closed"
    assert health["mode"] == "full"


# ----------------------------------------------------------------------
# ingest
# ----------------------------------------------------------------------


def test_applied_deltas_match_cold_resolve(base, tmp_path):
    graph, core, _ = base
    d = _daemon(base, tmp_path)
    for ins, dels in DELTAS:
        ack = d.submit_delta(ins, dels)
        assert ack["accepted"] is True
    assert d.staleness == 3
    assert d.apply_pending() == 3
    assert d.staleness == 0
    assert d.store.current.seq == 3
    cold = estimate_spam_mass(d.store.current.graph, core, gamma=GAMMA)
    assert np.abs(
        d.store.current.estimates.pagerank - cold.pagerank
    ).max() <= 1e-11
    assert np.abs(
        d.store.current.estimates.core_pagerank - cold.core_pagerank
    ).max() <= 1e-11


def test_batched_apply_coalesces_the_queue(base, tmp_path):
    """``batch_deltas=N`` drains N queued deltas per apply.

    One composed warm solve covers the whole batch: the epoch/WAL
    watermark jump to the last coalesced record, scores match a cold
    re-solve of the final graph, and the ``on_apply`` hook sees every
    record of the batch in one call (the replication segment must chain
    record-by-record to the shipped fingerprint).
    """
    graph, core, _ = base
    d = _daemon(base, tmp_path, batch_deltas=2)
    segments = []
    d.on_apply = lambda epoch, records: segments.append(
        (epoch.wal_seq, [r.seq for r in records])
    )
    for ins, dels in DELTAS:
        d.submit_delta(ins, dels)
    assert d.staleness == 3
    assert d.apply_pending() == 2  # batch of 2 + batch of 1
    assert d.applies == 2
    assert d.staleness == 0
    assert d.store.current.wal_seq == 3
    assert d.wal.applied_seq() == 3
    assert segments == [(2, [1, 2]), (3, [3])]
    cold = estimate_spam_mass(d.store.current.graph, core, gamma=GAMMA)
    assert np.abs(
        d.store.current.estimates.pagerank - cold.pagerank
    ).max() <= 1e-11


def test_batched_apply_scores_match_unbatched(base, tmp_path):
    """Coalescing changes epoch cadence, not where the scores land."""
    one = _daemon(base, tmp_path / "one")
    many = _daemon(base, tmp_path / "many", batch_deltas=3)
    for daemon in (one, many):
        for ins, dels in DELTAS:
            daemon.submit_delta(ins, dels)
        daemon.apply_pending()
    assert one.store.current.wal_seq == many.store.current.wal_seq
    assert (
        one.store.current.fingerprint == many.store.current.fingerprint
    )
    assert np.abs(
        one.store.current.estimates.pagerank
        - many.store.current.estimates.pagerank
    ).max() <= 1e-11


def test_config_rejects_nonpositive_batch(base, tmp_path):
    with pytest.raises(ValueError, match="batch_deltas"):
        DaemonConfig(batch_deltas=0)


def test_background_worker_applies(base, tmp_path):
    d = _daemon(base, tmp_path)
    d.start()
    try:
        d.submit_delta(*DELTAS[0])
        deadline = time.monotonic() + 30
        while d.staleness and time.monotonic() < deadline:
            time.sleep(0.02)
        assert d.staleness == 0
        assert d.store.current.seq == 1
        assert d.wal.applied_seq() == 1
    finally:
        d.close()


def test_ack_means_durable(base, tmp_path):
    d = _daemon(base, tmp_path)
    d.submit_delta(*DELTAS[0])
    records, dropped = DeltaWAL(tmp_path / "wal").recover()
    assert dropped == 0 and len(records) == 1
    assert records[0].after == d._tail.structural_fingerprint()


def test_staleness_bound_degrades_ingest_not_reads(base, tmp_path):
    graph, _, _ = base
    d = _daemon(base, tmp_path, max_staleness=1)
    d.submit_delta(*DELTAS[0])
    d.submit_delta(*DELTAS[1])
    assert d.degraded is True
    with pytest.raises(WalError, match="degraded"):
        d.submit_delta(*DELTAS[2])
    # reads keep flowing, with the staleness visible
    got = d.query_score(graph.name_of(3))
    assert got["mode"] == "degraded" and got["staleness"] == 2
    d.apply_pending()
    assert d.degraded is False
    d.submit_delta(*DELTAS[2])


# ----------------------------------------------------------------------
# chaos: kill-mid-swap, circuit breaker, degrade-to-cold
# ----------------------------------------------------------------------


def test_kill_mid_swap_keeps_previous_epoch(base, tmp_path):
    graph, _, _ = base
    d = _daemon(base, tmp_path)
    d.chaos = ServeChaos(kill_swap_on=(1,))
    d.submit_delta(*DELTAS[0])
    before = d.store.current
    assert d._apply_one() is False
    # readers still see the old epoch, the record is still pending
    assert d.store.current is before
    assert d.staleness == 1 and d.apply_failures == 1
    assert d.wal.applied_seq() == 0
    # the fault is spent; the retry lands the swap
    assert d._apply_one() is True
    assert d.store.current.seq == 1 and d.staleness == 0
    assert d.wal.applied_seq() == 1


def test_repeated_failure_opens_circuit_then_heals(base, tmp_path):
    graph, _, _ = base
    d = _daemon(base, tmp_path, circuit_threshold=2)
    d.chaos = ServeChaos(fail_apply_on=(1,), once=False)
    d.submit_delta(*DELTAS[0])
    assert d._apply_one() is False
    assert d.degraded is False  # one failure: breaker still closed
    assert d._apply_one() is False
    assert d.degraded is True
    assert d.health()["circuit"] == "open"
    with pytest.raises(WalError):
        d.submit_delta(*DELTAS[1])
    # reads survive the whole time
    assert d.query_score(graph.name_of(3))["mode"] == "degraded"
    # the operator fixes the fault; the next retry closes the circuit
    d.chaos = None
    assert d._apply_one() is True
    assert d.degraded is False
    assert d.health()["circuit"] == "closed"
    d.submit_delta(*DELTAS[1])


class _WarmPathDownEngine(PagerankEngine):
    """An engine whose incremental path always fails."""

    def update_many(self, *args, **kwargs):
        raise InjectedFault("warm path down")


def test_warm_failure_degrades_to_cold_resolve(base, tmp_path):
    graph, core, estimates = base
    d = ScoringDaemon(
        graph, core, estimates,
        checkpoint_dir=tmp_path / "ckpt",
        wal=DeltaWAL(tmp_path / "wal"),
        config=DaemonConfig(ingest_retries=0),
        engine=_WarmPathDownEngine(),
    )
    d.submit_delta(*DELTAS[0])
    assert d._apply_one() is True
    assert d.degraded_applies == 1
    cold = estimate_spam_mass(d.store.current.graph, core, gamma=GAMMA)
    assert np.abs(
        d.store.current.estimates.pagerank - cold.pagerank
    ).max() <= 1e-11


def test_no_degrade_forbids_cold_fallback(base, tmp_path):
    graph, core, estimates = base
    d = ScoringDaemon(
        graph, core, estimates,
        checkpoint_dir=tmp_path / "ckpt",
        wal=DeltaWAL(tmp_path / "wal"),
        config=DaemonConfig(ingest_retries=0, allow_degrade=False),
        engine=_WarmPathDownEngine(),
    )
    d.submit_delta(*DELTAS[0])
    assert d._apply_one() is False
    assert d.apply_failures == 1 and d.staleness == 1


def test_poisoned_epoch_rolls_back_on_health_probe(base, tmp_path):
    d = _daemon(base, tmp_path)
    d.submit_delta(*DELTAS[0])
    d.apply_pending()
    # simulate post-publish memory corruption of the live epoch
    d.store.current.estimates.pagerank[0] = np.nan
    health = d.health()
    assert health["poisoned_epoch_rolled_back"] is True
    assert health["epoch"] == 0
    assert d.store.rollbacks == 1


# ----------------------------------------------------------------------
# restart / replay
# ----------------------------------------------------------------------


def test_restart_replays_to_bitwise_identical_scores(base, world, tmp_path):
    _, core, _ = base
    ckpt = _fresh_ckpt(world, tmp_path)
    world_dir, _ = world

    # reference run: all three deltas applied in one life
    ref = ScoringDaemon.load(world_dir, ckpt, wal_dir=tmp_path / "ref-wal")
    for ins, dels in DELTAS:
        ref.submit_delta(ins, dels)
    ref.apply_pending()
    reference = ref.store.current.estimates.pagerank.copy()
    reference_core = ref.store.current.estimates.core_pagerank.copy()

    # crashing run: same deltas accepted, only two applied, and the
    # watermark is rolled back to simulate a crash between apply #2
    # and its watermark fsync
    ckpt2 = _fresh_ckpt(world, tmp_path / "b")
    d1 = ScoringDaemon.load(world_dir, ckpt2, wal_dir=tmp_path / "wal2")
    for ins, dels in DELTAS:
        d1.submit_delta(ins, dels)
    d1._apply_one()
    d1._apply_one()
    d1.wal.mark_applied(1)

    d2 = ScoringDaemon.load(world_dir, ckpt2, wal_dir=tmp_path / "wal2")
    # the applied prefix was deduped by fingerprint, not re-applied
    assert d2.staleness == 1
    assert d2.store.current.seq == 0  # epoch numbering restarts per life
    assert d2.wal.applied_seq() == 2  # watermark caught up
    # loaded scores are bitwise what the crashed instance had
    assert np.array_equal(
        d2.store.current.estimates.pagerank,
        d1.store.current.estimates.pagerank,
    )
    d2.apply_pending()
    assert np.array_equal(d2.store.current.estimates.pagerank, reference)
    assert np.array_equal(
        d2.store.current.estimates.core_pagerank, reference_core
    )

    # a third life replays nothing: double-apply is a no-op
    d3 = ScoringDaemon.load(world_dir, ckpt2, wal_dir=tmp_path / "wal2")
    assert d3.staleness == 0
    assert np.array_equal(d3.store.current.estimates.pagerank, reference)


def test_restart_repairs_torn_wal_tail(base, world, tmp_path):
    world_dir, _ = world
    ckpt = _fresh_ckpt(world, tmp_path)
    d1 = ScoringDaemon.load(world_dir, ckpt, wal_dir=tmp_path / "wal")
    d1.submit_delta(*DELTAS[0])
    d1.submit_delta(*DELTAS[1])
    truncate_wal_tail(d1.wal.segment_path, 9)
    d2 = ScoringDaemon.load(world_dir, ckpt, wal_dir=tmp_path / "wal")
    # the torn (never-acknowledged... from the client's view the crash
    # raced the ack) record is gone; the intact one replays
    assert d2.staleness == 1
    assert d2._pending[0].record.seq == 1


def test_load_rejects_wrong_world_with_both_fingerprints(
    base, world, tmp_path
):
    world_dir, _ = world
    other = _random_graph(23, 80, 300)
    ckpt = tmp_path / "ckpt"
    rng = np.random.default_rng(0)
    scores = rng.random((other.num_nodes, 2)) + 0.01
    save_solution(
        ckpt, scores, fingerprint=other.structural_fingerprint(),
        extra={"damping": 0.85, "gamma": GAMMA,
               "labels": ["pagerank", "core"]},
    )
    with pytest.raises(SnapshotMismatchError) as info:
        ScoringDaemon.load(world_dir, ckpt, wal_dir=tmp_path / "wal")
    assert info.value.expected and info.value.actual
    assert info.value.expected in str(info.value)
    assert info.value.actual in str(info.value)


# ----------------------------------------------------------------------
# socket server
# ----------------------------------------------------------------------


@pytest.fixture()
def server(base, tmp_path):
    d = _daemon(base, tmp_path)
    srv = ScoringServer(d, tmp_path / "serve.sock", max_queue=16,
                        workers=2)
    srv.start()
    try:
        yield srv
    finally:
        srv.stop()


def test_server_round_trip(base, server, tmp_path):
    graph, _, _ = base
    with ServeClient(server.socket_path) as client:
        health = client.health()
        assert health["ok"] is True and health["mode"] == "full"
        score = client.score(graph.name_of(3))
        assert score["ok"] is True
        assert score["staleness"] == 0
        top = client.top(3, tau=0.0, rho=0.0)
        assert top["ok"] is True and len(top["candidates"]) == 3
        explain = client.explain(graph.name_of(3), top=3)
        assert explain["ok"] is True and graph.name_of(3) in explain["text"]
        assert client.score("nope")["error"] == "unknown-host"
        assert client.request({"op": "wat"})["error"] == "bad-request"
        assert client.request({"op": "top", "k": -1})["error"] == (
            "bad-request"
        )


def test_server_ingest_applies_in_background(base, server):
    with ServeClient(server.socket_path) as client:
        ack = client.ingest([[0, 5], [1, 7]])
        assert ack["ok"] is True and ack["seq"] == 1
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            stats = client.stats()
            if stats["staleness"] == 0 and stats["applies"] >= 1:
                break
            time.sleep(0.05)
        assert stats["applies"] == 1
        assert stats["epoch"] == 1


def test_server_drain_rejects_then_closes(base, server):
    client = ServeClient(server.socket_path)
    assert client.health()["ok"] is True
    server.stop()
    assert not server.socket_path.exists()
    assert server.wait(1.0) is True
    client.close()


def test_concurrent_reads_never_tear(base, tmp_path):
    """Hammer reads from threads while deltas land; every response must
    be internally consistent (epoch fingerprint matches a published
    epoch, scores finite)."""
    graph, _, _ = base
    d = _daemon(base, tmp_path)
    d.start()
    seen = []
    stop = threading.Event()

    def _reader():
        while not stop.is_set():
            got = d.query_score(graph.name_of(7))
            seen.append((got["epoch"], got["fingerprint"],
                         got["pagerank"]))

    threads = [threading.Thread(target=_reader) for _ in range(4)]
    for t in threads:
        t.start()
    try:
        for ins, dels in DELTAS:
            d.submit_delta(ins, dels)
        deadline = time.monotonic() + 60
        while d.staleness and time.monotonic() < deadline:
            time.sleep(0.02)
    finally:
        stop.set()
        for t in threads:
            t.join()
        d.close()
    assert d.staleness == 0
    fingerprints = {}
    for epoch_seq, fingerprint, pagerank in seen:
        assert np.isfinite(pagerank)
        # one fingerprint per epoch, ever — a torn read would pair an
        # epoch seq with the wrong graph
        assert fingerprints.setdefault(epoch_seq, fingerprint) == (
            fingerprint
        )
    assert len(fingerprints) >= 1
