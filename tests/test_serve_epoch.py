"""Epoch-store contracts: atomic swap, guarded publish, rollback.

A reader holding an epoch must never observe mutation; a candidate
whose fingerprint disagrees with the delta chain, or whose scores are
non-finite, must be refused *before* the pointer swap; and a published
epoch later found bad must roll back to its predecessor.
"""

import numpy as np
import pytest

from repro.core.mass import MassEstimates
from repro.errors import InjectedFault, SnapshotMismatchError
from repro.graph import GraphDelta
from repro.serve.epoch import Epoch, EpochStore
from test_differential_solvers import _random_graph


@pytest.fixture(scope="module")
def graph():
    return _random_graph(13, 50, 180)


def _estimates(n, seed=0):
    rng = np.random.default_rng(seed)
    p = rng.random(n) + 0.01
    return MassEstimates(p, p * rng.random(n), 0.85, 0.85)


@pytest.fixture()
def store(graph):
    return EpochStore(Epoch(0, graph, _estimates(graph.num_nodes)))


def _mutate(graph, delta=None):
    delta = delta if delta is not None else GraphDelta([(0, 7)], [])
    return delta.apply(graph).after


def test_publish_swaps_and_old_epoch_stays_usable(store, graph):
    old = store.current
    old_scores = old.estimates.pagerank.copy()
    after = _mutate(graph)
    candidate = old.successor(after, _estimates(graph.num_nodes, 1),
                              wal_seq=1)
    store.publish(candidate,
                  expected_fingerprint=after.structural_fingerprint())
    assert store.current is candidate
    assert store.current.seq == 1
    # a reader that grabbed the old pointer is entirely unaffected
    assert np.array_equal(old.estimates.pagerank, old_scores)
    assert old.graph.num_edges == graph.num_edges


def test_fingerprint_guard_reports_both_fingerprints(store, graph):
    after = _mutate(graph)
    candidate = store.current.successor(
        after, _estimates(graph.num_nodes, 1), wal_seq=1
    )
    with pytest.raises(SnapshotMismatchError) as info:
        store.publish(candidate, expected_fingerprint="g:expected-other")
    assert info.value.expected == "g:expected-other"
    assert info.value.actual == after.structural_fingerprint()
    assert "g:expected-other" in str(info.value)
    assert after.structural_fingerprint() in str(info.value)
    assert store.current.seq == 0  # refused before the swap


def test_non_finite_scores_are_refused(store, graph):
    after = _mutate(graph)
    bad = _estimates(graph.num_nodes, 1)
    bad.pagerank[3] = np.nan
    candidate = store.current.successor(after, bad, wal_seq=1)
    with pytest.raises(SnapshotMismatchError, match="non-finite"):
        store.publish(candidate)
    assert store.current.seq == 0


def test_pre_publish_fault_leaves_readers_on_old_epoch(store, graph):
    after = _mutate(graph)
    candidate = store.current.successor(
        after, _estimates(graph.num_nodes, 1), wal_seq=1
    )

    def _kill(_epoch):
        raise InjectedFault("kill mid-swap")

    with pytest.raises(InjectedFault):
        store.publish(
            candidate,
            expected_fingerprint=after.structural_fingerprint(),
            pre_publish=_kill,
        )
    assert store.current.seq == 0
    assert store.swaps == 0


def test_rollback_restores_previous_once(store, graph):
    first = store.current
    after = _mutate(graph)
    store.publish(first.successor(after, _estimates(graph.num_nodes, 1),
                                  wal_seq=1))
    restored = store.rollback()
    assert restored is first
    assert store.current is first
    assert store.rollbacks == 1
    # single-level on purpose: the WAL is the durable history
    assert store.rollback() is None


def test_successor_shares_name_lookup(store, graph):
    after = _mutate(graph)
    candidate = store.current.successor(
        after, _estimates(graph.num_nodes, 1), wal_seq=1
    )
    assert candidate.lookup is store.current.lookup
    assert candidate.wal_seq == 1
    assert candidate.seq == store.current.seq + 1


def test_epoch_is_slotted_and_immutable_shaped(graph):
    epoch = Epoch(0, graph, _estimates(graph.num_nodes))
    with pytest.raises(AttributeError):
        epoch.new_field = 1
