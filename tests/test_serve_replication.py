"""Differential replica battery: replication must change nothing.

The claim under test is absolute: pushing the same delta stream through
a single-process daemon and through a replicated topology (writer +
1/2/4 snapshot-shipped read replicas) yields **bitwise-identical**
score vectors and fingerprint chains at every watermark — through a
replica killed mid-ship, a delayed ship that forces a composed
multi-record catch-up segment, a ship crash that leaves a manifest-less
directory, and a writer restart that replays its WAL.

Alongside the differential sweep: hypothesis round-trip/corruption
properties for the snapshot manifest (a replica must *never* hold a
partially-loaded epoch — typed errors, state untouched), and the
slow-op lane regression (an ``explain`` storm must not move ``score``
latency, because slow ops have their own workers and shed first).

``REPRO_TEST_REPLICAS`` pins the replica counts of the sweep (the CI
chaos-matrix job runs one count per leg).
"""

import json
import os
import threading
import time
import zlib
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.mass import estimate_spam_mass
from repro.errors import (
    InjectedFault,
    ReplicaGapError,
    ReplicationError,
    SnapshotIntegrityError,
    SnapshotMismatchError,
)
from repro.graph import write_graph_bundle, write_host_list
from repro.runtime import save_solution
from repro.runtime.chaos import ServeChaos
from repro.serve import (
    AdmissionController,
    AdmissionRejected,
    DaemonConfig,
    DeltaWAL,
    ReadReplica,
    ReplicaRouter,
    ReplicaSet,
    ReplicatedWriter,
    ScoringDaemon,
    ScoringServer,
    ServeClient,
    SnapshotManifest,
)
from repro.serve.replication import (
    CURRENT_FILENAME,
    MANIFEST_FILENAME,
    read_current,
    read_manifest,
    snap_dirname,
)
from repro.serve.wal import WalRecord
from test_differential_solvers import _random_graph

GAMMA = 0.85
DELTAS = [
    ([(0, 5), (1, 7)], []),
    ([(2, 9)], [(0, 5)]),
    ([(3, 11), (4, 13)], []),
    ([(6, 2)], [(2, 9)]),
]

#: Replica counts of the differential sweep; the CI chaos-matrix job
#: pins one count per leg via ``REPRO_TEST_REPLICAS``.
REPLICA_COUNTS = [
    int(part)
    for part in os.environ.get("REPRO_TEST_REPLICAS", "1,2,4").split(",")
    if part.strip()
]


@pytest.fixture(autouse=True)
def replica_telemetry(telemetry, request):
    """Capturing telemetry for every test in the battery.

    With ``REPRO_REPLICA_TELEMETRY_DIR`` set, the captured event
    stream is written as ``<dir>/<test-name>.jsonl`` after the test —
    the CI replica-matrix job uploads these as its artifact, so a
    failing leg ships its ``replica.*`` timeline along with the
    traceback.
    """
    yield telemetry
    out_dir = os.environ.get("REPRO_REPLICA_TELEMETRY_DIR")
    if not out_dir:
        return
    path = Path(out_dir) / f"{request.node.name}.jsonl"
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        for event in telemetry.sink.events:
            fh.write(
                json.dumps(
                    {"event": event.name, "attrs": dict(event.attrs)},
                    sort_keys=True,
                )
                + "\n"
            )


@pytest.fixture(scope="module")
def base():
    rng = np.random.default_rng(7)
    graph = _random_graph(11, 120, 500)
    core = np.sort(rng.choice(graph.num_nodes, size=12, replace=False))
    estimates = estimate_spam_mass(graph, core, gamma=GAMMA)
    return graph, core, estimates


def _daemon(base, root, **config_kw):
    graph, core, estimates = base
    return ScoringDaemon(
        graph,
        core,
        estimates,
        checkpoint_dir=root / "ckpt",
        wal=DeltaWAL(root / "wal"),
        config=DaemonConfig(**config_kw),
    )


def _replicated(base, root, count, *, chaos=None, with_explain=False):
    """A writer + ``count`` read replicas + router over one ship dir."""
    graph, core, _ = base
    daemon = _daemon(base, root)
    writer = ReplicatedWriter(daemon, root / "ship", chaos=chaos)
    rset = ReplicaSet(root / "ship", graph, core=core, chaos=chaos)
    replicas = rset.spawn(count)
    explain = (
        rset.spawn(1, names=["explain-0"], with_core=True)[0]
        if with_explain
        else None
    )
    router = ReplicaRouter(
        replicas, explain_replica=explain, replica_set=rset
    )
    return daemon, writer, router


def _assert_bitwise(replica: ReadReplica, reference: ScoringDaemon):
    """Replica epoch == reference daemon epoch, bit for bit."""
    got, want = replica.epoch, reference.store.current
    assert got.fingerprint == want.fingerprint
    assert got.wal_seq == want.wal_seq
    assert np.array_equal(got.estimates.pagerank, want.estimates.pagerank)
    assert np.array_equal(
        got.estimates.core_pagerank, want.estimates.core_pagerank
    )


# ----------------------------------------------------------------------
# the differential parity sweep
# ----------------------------------------------------------------------


@pytest.mark.parametrize("count", REPLICA_COUNTS)
def test_parity_sweep_bitwise_at_every_watermark(base, tmp_path, count):
    """{single daemon, N replicas} × same deltas → identical everything.

    The single-process daemon (no replication at all) is the reference;
    every replica must match it bitwise at every watermark, which also
    proves the replicated writer matches it (replicas load the writer's
    bytes)."""
    reference = _daemon(base, tmp_path / "ref")
    daemon, writer, router = _replicated(base, tmp_path / "rep", count)
    for ins, dels in DELTAS:
        reference.submit_delta(ins, dels)
        assert reference.apply_pending() == 1
        daemon.submit_delta(ins, dels)
        assert daemon.apply_pending() == 1
        router.refresh(shipped_seq=writer.shipped_seq)
        assert writer.pending == 0
        for replica in router.replicas:
            _assert_bitwise(replica, reference)
            _assert_bitwise(replica, daemon)
    # the shipped fingerprint chain equals the WAL chain end to end
    manifests = [
        read_manifest(writer.ship_dir / snap_dirname(seq))
        for seq in range(len(DELTAS) + 1)
    ]
    fps = [m.fingerprint for m in manifests]
    assert fps[-1] == reference.store.current.fingerprint
    for prev, cur in zip(manifests, manifests[1:]):
        assert cur.parent == prev.fingerprint
        assert [r.seq for r in cur.segment] == [cur.wal_seq]


def test_replica_queries_match_writer_payloads(base, tmp_path):
    graph, _, _ = base
    daemon, writer, router = _replicated(
        base, tmp_path, 2, with_explain=True
    )
    daemon.submit_delta(*DELTAS[0])
    daemon.apply_pending()
    router.refresh(shipped_seq=writer.shipped_seq)
    host = graph.name_of(3)
    want = daemon.query_score(host)
    for replica in router.replicas:
        got = replica.query_score(host)
        for key in ("pagerank", "core_pagerank", "absolute_mass",
                    "relative_mass", "scaled_pagerank", "node"):
            assert got[key] == want[key]
        assert got["fingerprint"] == want["fingerprint"]
        assert got["replica"] == replica.name
    want_top = daemon.query_top(5, tau=0.0, rho=0.0)
    got_top = router.replicas[0].query_top(5, tau=0.0, rho=0.0)
    assert got_top["candidates"] == want_top["candidates"]
    # explain answers from the pinned replica's own graph + core
    want_explain = daemon.query_explain(host)
    got_explain = router.explain_replica.query_explain(host)
    assert got_explain["text"] == want_explain["text"]


# ----------------------------------------------------------------------
# chaos: kill a replica mid-ship
# ----------------------------------------------------------------------


def test_kill_replica_mid_load_routes_around_then_restarts(base, tmp_path):
    chaos = ServeChaos(kill_replica_on=(("replica-1", 2),))
    daemon, writer, router = _replicated(
        base, tmp_path, 2, chaos=chaos
    )
    daemon.submit_delta(*DELTAS[0])
    daemon.apply_pending()
    router.refresh(shipped_seq=writer.shipped_seq)
    victim = router.replicas[1]
    assert victim.ready

    daemon.submit_delta(*DELTAS[1])
    daemon.apply_pending()
    summary = router.refresh(shipped_seq=writer.shipped_seq)
    # the injected fault killed replica-1; the sweep contained it
    assert summary["errors"] == 1
    assert not router.replicas[1].alive
    assert router.replicas[0].ready

    # shard-affine routing routes around the corpse: every node lands
    # on the surviving replica
    graph, _, _ = base
    for node in range(0, graph.num_nodes, 7):
        assert router.replica_for_node(node) is router.replicas[0]
    with pytest.raises(ReplicationError):
        victim.query_score(graph.name_of(0))

    # next sweep: the set's supervisor restarts it from the shipped
    # chain and it reconverges bitwise
    summary = router.refresh(shipped_seq=writer.shipped_seq)
    assert summary["restarted"] == 1
    reborn = router.replicas[1]
    assert reborn is not victim and reborn.ready
    _assert_bitwise(reborn, daemon)
    # and it owns shard traffic again
    owned = {
        router.replica_for_node(n).name
        for n in range(graph.num_nodes)
    }
    assert owned == {"replica-0", "replica-1"}


# ----------------------------------------------------------------------
# chaos: delayed ship → lag → composed catch-up segment
# ----------------------------------------------------------------------


def test_delayed_ship_lags_then_catches_up_with_composed_segment(
    base, tmp_path
):
    chaos = ServeChaos(delay_ship_on=(1, 2))
    daemon, writer, router = _replicated(base, tmp_path, 2, chaos=chaos)
    for ins, dels in DELTAS[:2]:
        daemon.submit_delta(ins, dels)
        daemon.apply_pending()
    # both ships were delayed: tip still at the base, two records queued
    assert writer.shipped_seq == 0 and writer.pending == 2
    router.refresh(shipped_seq=daemon.store.current.wal_seq)
    assert router.replicas[0].wal_seq == 0
    # measured against the writer's applied epoch, that is real lag
    assert router.lag(daemon.store.current.wal_seq) == 2
    assert not router.lagging(daemon.store.current.wal_seq)  # max_lag=4

    tight = ReplicaRouter(router.replicas, max_lag=1)
    assert tight.lagging(daemon.store.current.wal_seq)

    # the retry ships ONE snapshot whose segment composes both records
    assert writer.ship_pending()
    assert writer.shipped_seq == 2 and writer.pending == 0
    manifest = read_manifest(writer.ship_dir / snap_dirname(2))
    assert [r.seq for r in manifest.segment] == [1, 2]
    router.refresh(shipped_seq=daemon.store.current.wal_seq)
    for replica in router.replicas:
        _assert_bitwise(replica, daemon)


def test_delayed_ship_feeds_admission_degraded(base, tmp_path):
    """Replica lag past the bound → server reports/refuses degraded."""
    chaos = ServeChaos(delay_ship_on=(1, 2))
    daemon, writer, router = _replicated(base, tmp_path, 1, chaos=chaos)
    router.max_lag = 1
    server = ScoringServer.__new__(ScoringServer)  # wiring-only check
    server.daemon, server.router, server.writer = daemon, router, writer
    assert server._healthy()
    daemon.submit_delta(*DELTAS[0])
    daemon.apply_pending()
    daemon.submit_delta(*DELTAS[1])
    daemon.apply_pending()
    router.refresh(shipped_seq=daemon.store.current.wal_seq)
    # replicas pinned at 0 while the writer applied 2 → lag 2 > 1
    assert not server._healthy()
    writer.ship_pending()
    router.refresh(shipped_seq=daemon.store.current.wal_seq)
    assert server._healthy()


# ----------------------------------------------------------------------
# chaos: ship crash before the manifest (torn snapshot directory)
# ----------------------------------------------------------------------


def test_failed_ship_is_invisible_and_repaired_by_reship(base, tmp_path):
    chaos = ServeChaos(fail_ship_on=(1,))
    daemon, writer, router = _replicated(base, tmp_path, 2, chaos=chaos)
    daemon.submit_delta(*DELTAS[0])
    daemon.apply_pending()
    # the ship crashed after solution.npz, before manifest.json
    assert writer.ship_failures == 1 and writer.pending == 1
    torn = writer.ship_dir / snap_dirname(1)
    assert torn.exists() and not (torn / MANIFEST_FILENAME).exists()
    # replicas ignore the manifest-less directory and stay on base
    assert read_current(writer.ship_dir) == 0
    assert router.refresh(shipped_seq=writer.shipped_seq)["errors"] == 0
    assert all(r.wal_seq == 0 for r in router.replicas)
    # the retry re-ships over the torn directory and repairs it
    assert writer.ship_pending()
    assert (torn / MANIFEST_FILENAME).exists()
    router.refresh(shipped_seq=writer.shipped_seq)
    for replica in router.replicas:
        _assert_bitwise(replica, daemon)


# ----------------------------------------------------------------------
# writer restart: WAL replay + ship-directory adoption
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def world(base, tmp_path_factory):
    graph, core, estimates = base
    root = tmp_path_factory.mktemp("replication-world")
    world_dir = root / "world"
    write_graph_bundle(graph, world_dir)
    write_host_list(
        [graph.name_of(int(i)) for i in core], world_dir / "core.hosts"
    )
    ckpt = root / "ckpt-template"
    save_solution(
        ckpt,
        np.stack([estimates.pagerank, estimates.core_pagerank], axis=1),
        fingerprint=graph.structural_fingerprint(),
        extra={"damping": estimates.damping, "gamma": estimates.gamma,
               "labels": ["pagerank", "core"]},
    )
    return world_dir, ckpt


def test_writer_restart_replays_wal_and_reships_bitwise(
    base, world, tmp_path
):
    import shutil

    graph, core, _ = base
    world_dir, template = world
    ckpt = tmp_path / "ckpt"
    shutil.copytree(template, ckpt)

    # first life: apply two deltas, accept two more, die
    first = ScoringDaemon.load(world_dir, ckpt)
    writer = ReplicatedWriter(first, tmp_path / "ship")
    rset = ReplicaSet(tmp_path / "ship", graph, core=core)
    replicas = rset.spawn(2)
    router = ReplicaRouter(replicas, replica_set=rset)
    for ins, dels in DELTAS[:2]:
        first.submit_delta(ins, dels)
    assert first.apply_pending() == 2
    for ins, dels in DELTAS[2:]:
        first.submit_delta(ins, dels)  # durable, never applied
    assert writer.shipped_seq == 2
    first.close()

    # second life: WAL replays the accepted suffix; the new writer
    # adopts the ship directory at the matching tip and ships onward
    second = ScoringDaemon.load(world_dir, ckpt)
    writer2 = ReplicatedWriter(second, tmp_path / "ship")
    assert writer2.shipped_seq == 2
    assert second.store.current.wal_seq == 2
    assert second.apply_pending() == 2
    assert writer2.shipped_seq == 4

    # the uninterrupted reference over the same stream
    reference = _daemon(base, tmp_path / "ref")
    for ins, dels in DELTAS:
        reference.submit_delta(ins, dels)
    reference.apply_pending()
    _assert_bitwise_daemons(second, reference)

    # replicas spawned in the first life follow across the restart
    router.refresh(shipped_seq=writer2.shipped_seq)
    for replica in router.replicas:
        _assert_bitwise(replica, reference)
    # and a replica born *after* the restart walks the whole retained
    # manifest chain from the base graph to the same state
    late = rset.spawn(1, names=["late"])[0]
    _assert_bitwise(late, reference)


def _assert_bitwise_daemons(a: ScoringDaemon, b: ScoringDaemon):
    ea, eb = a.store.current, b.store.current
    assert ea.fingerprint == eb.fingerprint
    assert np.array_equal(ea.estimates.pagerank, eb.estimates.pagerank)
    assert np.array_equal(
        ea.estimates.core_pagerank, eb.estimates.core_pagerank
    )


def test_writer_reconciles_ship_gap_from_wal(base, tmp_path):
    """Crash between apply and ship: the gap re-composes from the WAL."""
    daemon = _daemon(base, tmp_path)
    writer = ReplicatedWriter(daemon, tmp_path / "ship")
    daemon.submit_delta(*DELTAS[0])
    daemon.apply_pending()
    assert writer.shipped_seq == 1
    # simulate the crash window: the next apply never reaches the hook
    daemon.on_apply = None
    daemon.submit_delta(*DELTAS[1])
    daemon.apply_pending()
    assert read_current(tmp_path / "ship") == 1

    writer2 = ReplicatedWriter(daemon, tmp_path / "ship")
    assert writer2.shipped_seq == 2
    manifest = read_manifest(tmp_path / "ship" / snap_dirname(2))
    assert [r.seq for r in manifest.segment] == [2]
    replica = ReadReplica("r", tmp_path / "ship", base[0])
    replica.refresh()
    _assert_bitwise(replica, daemon)


def test_writer_refuses_foreign_or_futuristic_ship_dir(base, tmp_path):
    daemon = _daemon(base, tmp_path / "a")
    ReplicatedWriter(daemon, tmp_path / "ship")
    # a second history in the same directory: fingerprints disagree
    other_graph = _random_graph(23, 120, 480)
    rng = np.random.default_rng(3)
    core = np.sort(rng.choice(120, size=12, replace=False))
    other = ScoringDaemon(
        other_graph, core, estimate_spam_mass(other_graph, core, gamma=GAMMA)
    )
    with pytest.raises(SnapshotMismatchError):
        ReplicatedWriter(other, tmp_path / "ship")
    # a tip ahead of the daemon: someone else owns the directory
    daemon2 = _daemon(base, tmp_path / "b")
    writer2 = ReplicatedWriter(daemon2, tmp_path / "ship2")
    daemon2.submit_delta(*DELTAS[0])
    daemon2.apply_pending()
    assert writer2.shipped_seq == 1
    stale = _daemon(base, tmp_path / "c")
    with pytest.raises(ReplicationError):
        ReplicatedWriter(stale, tmp_path / "ship2")


# ----------------------------------------------------------------------
# snapshot integrity: corruption must be typed, never partial
# ----------------------------------------------------------------------


@pytest.fixture()
def shipped(base, tmp_path):
    """A ship dir with two applied epochs and one refreshed replica."""
    daemon, writer, router = _replicated(base, tmp_path, 1)
    daemon.submit_delta(*DELTAS[0])
    daemon.apply_pending()
    router.refresh(shipped_seq=writer.shipped_seq)
    replica = router.replicas[0]
    assert replica.wal_seq == 1
    daemon.submit_delta(*DELTAS[1])
    daemon.apply_pending()
    return daemon, writer, replica, writer.ship_dir / snap_dirname(2)


def _assert_refresh_fails_state_unchanged(replica, exc_type):
    before = (replica.wal_seq, replica.fingerprint)
    scores = replica.epoch.estimates.pagerank.copy()
    with pytest.raises(exc_type):
        replica.refresh()
    assert replica.alive  # corruption must NOT kill the replica
    assert (replica.wal_seq, replica.fingerprint) == before
    assert np.array_equal(replica.epoch.estimates.pagerank, scores)


def test_corrupt_solution_bytes_rejected_typed(shipped):
    _, _, replica, snap = shipped
    path = snap / "solution.npz"
    raw = bytearray(path.read_bytes())
    raw[len(raw) // 2] ^= 0xFF
    path.write_bytes(bytes(raw))
    _assert_refresh_fails_state_unchanged(replica, SnapshotIntegrityError)


def test_truncated_solution_rejected_typed(shipped):
    _, _, replica, snap = shipped
    path = snap / "solution.npz"
    path.write_bytes(path.read_bytes()[:-64])
    _assert_refresh_fails_state_unchanged(replica, SnapshotIntegrityError)


def test_missing_solution_rejected_typed(shipped):
    _, _, replica, snap = shipped
    (snap / "solution.npz").unlink()
    _assert_refresh_fails_state_unchanged(replica, SnapshotIntegrityError)


def test_missing_manifest_rejected_typed(shipped):
    _, _, replica, snap = shipped
    (snap / MANIFEST_FILENAME).unlink()
    _assert_refresh_fails_state_unchanged(replica, SnapshotIntegrityError)


def test_manifest_bitflip_rejected_typed(shipped):
    _, _, replica, snap = shipped
    path = snap / MANIFEST_FILENAME
    payload = json.loads(path.read_text())
    payload["wal_seq"] = 999  # content change, stale crc
    path.write_text(json.dumps(payload))
    with pytest.raises(SnapshotIntegrityError):
        read_manifest(snap)
    _assert_refresh_fails_state_unchanged(replica, SnapshotIntegrityError)


def test_garbage_current_falls_back_to_newest_manifest(shipped):
    daemon, writer, replica, _snap = shipped
    (writer.ship_dir / CURRENT_FILENAME).write_text("not json at all")
    assert read_current(writer.ship_dir) == 2
    replica.refresh()
    _assert_bitwise(replica, daemon)


def test_pruned_interior_manifest_is_a_gap(base, tmp_path):
    """A hole in the manifest chain is ReplicaGapError, never a skip."""
    daemon, writer, router = _replicated(base, tmp_path, 1)
    for ins, dels in DELTAS[:2]:
        daemon.submit_delta(ins, dels)
        daemon.apply_pending()
    interior = writer.ship_dir / snap_dirname(1)
    (interior / MANIFEST_FILENAME).unlink()
    (interior / "solution.npz").unlink()
    interior.rmdir()
    fresh = ReadReplica("fresh", writer.ship_dir, base[0])
    with pytest.raises(ReplicaGapError):
        fresh.refresh()
    assert fresh.epoch is None and fresh.alive


# ----------------------------------------------------------------------
# hypothesis: manifest round-trip properties
# ----------------------------------------------------------------------

_fps = st.text(
    alphabet="0123456789abcdef", min_size=8, max_size=16
)
_edges = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=10_000),
    ),
    max_size=5,
)


@st.composite
def _manifests(draw):
    seqs = draw(
        st.lists(
            st.integers(min_value=1, max_value=1_000_000),
            min_size=0,
            max_size=4,
            unique=True,
        )
    )
    fps = draw(
        st.lists(_fps, min_size=len(seqs) + 1, max_size=len(seqs) + 1)
    )
    segment = [
        WalRecord(
            seq, fps[i], fps[i + 1], draw(_edges), draw(_edges)
        )
        for i, seq in enumerate(sorted(seqs))
    ]
    return SnapshotManifest(
        wal_seq=draw(st.integers(min_value=0, max_value=10**9)),
        epoch=draw(st.integers(min_value=0, max_value=10**6)),
        fingerprint=fps[-1],
        parent=fps[0],
        segment=segment,
        damping=draw(
            st.floats(min_value=0.01, max_value=0.99,
                      allow_nan=False, allow_infinity=False)
        ),
        gamma=draw(
            st.one_of(
                st.none(),
                st.floats(min_value=0.0, max_value=1.0,
                          allow_nan=False, allow_infinity=False),
            )
        ),
        solution_crc=draw(st.integers(min_value=0, max_value=2**32 - 1)),
        solution_bytes=draw(st.integers(min_value=0, max_value=2**40)),
    )


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.function_scoped_fixture])
@given(manifest=_manifests())
def test_manifest_payload_roundtrip(manifest):
    back = SnapshotManifest.from_payload(
        manifest.to_payload(), source="rt"
    )
    assert back.wal_seq == manifest.wal_seq
    assert back.epoch == manifest.epoch
    assert back.fingerprint == manifest.fingerprint
    assert back.parent == manifest.parent
    assert back.damping == manifest.damping
    assert back.gamma == manifest.gamma
    assert back.solution_crc == manifest.solution_crc
    assert back.solution_bytes == manifest.solution_bytes
    assert len(back.segment) == len(manifest.segment)
    for got, want in zip(back.segment, manifest.segment):
        assert (got.seq, got.parent, got.after) == (
            want.seq, want.parent, want.after
        )
        assert got.insertions == want.insertions
        assert got.deletions == want.deletions


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.function_scoped_fixture])
@given(manifest=_manifests(), data=st.data())
def test_manifest_tamper_always_detected(manifest, data):
    """Any single-field mutation of the payload fails the checksum."""
    payload = manifest.to_payload()
    field = data.draw(
        st.sampled_from(
            ["wal_seq", "epoch", "fingerprint", "parent",
             "solution_crc", "solution_bytes"]
        )
    )
    tampered = dict(payload)
    if isinstance(tampered[field], str):
        tampered[field] = tampered[field] + "x"
    else:
        tampered[field] = tampered[field] + 1
    with pytest.raises(SnapshotIntegrityError):
        SnapshotManifest.from_payload(tampered, source="tampered")


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.function_scoped_fixture])
@given(manifest=_manifests(), cut=st.integers(min_value=1, max_value=200))
def test_manifest_truncation_always_detected(tmp_path_factory, manifest, cut):
    raw = json.dumps(manifest.to_payload()).encode()
    cut = min(cut, len(raw) - 1)
    try:
        payload = json.loads(raw[:-cut].decode(errors="ignore"))
    except ValueError:
        return  # unparsable == rejected before from_payload
    if not isinstance(payload, dict):
        return
    with pytest.raises(SnapshotIntegrityError):
        SnapshotManifest.from_payload(payload, source="cut")


# ----------------------------------------------------------------------
# slow-op lane: an explain storm must not move score latency
# ----------------------------------------------------------------------


def test_admission_sheds_slow_ops_in_degraded_mode():
    ctrl = AdmissionController(16)
    ctrl.set_ingest_healthy(False)
    with pytest.raises(AdmissionRejected) as err:
        ctrl.admit("explain")
    assert err.value.reason == "slow-op" and err.value.mode == "degraded"
    assert ctrl.slow_shed == 1
    ctrl.admit("score").released  # cheap reads still flow
    ctrl.set_ingest_healthy(True)
    ticket = ctrl.admit("explain")
    assert ticket.slow and ctrl.slow_depth == 1
    ctrl.release(ticket)
    assert ctrl.slow_depth == 0


def test_admission_bounds_slow_lane_independently():
    ctrl = AdmissionController(16, max_slow=2)
    tickets = [ctrl.admit("explain") for _ in range(2)]
    with pytest.raises(AdmissionRejected) as err:
        ctrl.admit("explain")
    assert err.value.reason == "overloaded"
    # the fast lane is untouched by a saturated slow lane
    fast = ctrl.admit("score")
    for t in tickets + [fast]:
        ctrl.release(t)


def test_score_p99_unmoved_by_explain_storm(base, tmp_path, monkeypatch):
    """Regression: slow explains get their own lane, score stays fast."""
    daemon = _daemon(base, tmp_path)
    slow = threading.Event()

    real_explain = daemon.query_explain

    def glacial_explain(host, *, top=10):
        slow.set()
        time.sleep(0.5)
        return real_explain(host, top=top)

    monkeypatch.setattr(daemon, "query_explain", glacial_explain)
    server = ScoringServer(
        daemon, tmp_path / "sock", workers=2, slow_workers=1
    )
    server.start()
    try:
        graph, _, _ = base
        host = graph.name_of(3)

        def storm():
            with ServeClient(tmp_path / "sock") as client:
                client.explain(host)

        stormers = [
            threading.Thread(target=storm, daemon=True) for _ in range(3)
        ]
        for t in stormers:
            t.start()
        assert slow.wait(5.0)  # an explain is occupying the slow lane
        with ServeClient(tmp_path / "sock") as client:
            started = time.monotonic()
            for _ in range(10):
                assert client.score(host)["ok"]
            elapsed = time.monotonic() - started
        # 10 score round-trips complete while the first explain is
        # still sleeping — far under one explain's 0.5 s
        assert elapsed < 0.45, f"score latency moved: {elapsed:.3f}s"
        for t in stormers:
            t.join(10.0)
        stats = server.stats()
        assert stats["slow_shed"] == 0
    finally:
        server.stop()


def test_server_routes_reads_to_replicas(base, tmp_path):
    """Socket round-trip: score/top carry served_by, stats carry the
    replication block, explain pins to the explain replica."""
    graph, _, _ = base
    daemon, writer, router = _replicated(
        base, tmp_path, 2, with_explain=True
    )
    server = ScoringServer(
        daemon,
        tmp_path / "sock",
        router=router,
        writer=writer,
        replica_poll=0.02,
    )
    server.start()
    try:
        with ServeClient(tmp_path / "sock") as client:
            host = graph.name_of(3)
            got = client.score(host)
            assert got["ok"] and got["served_by"].startswith("replica-")
            top = client.top(3, tau=0.0, rho=0.0)
            assert top["ok"] and top["served_by"].startswith("replica-")
            exp = client.explain(host)
            assert exp["ok"] and exp["served_by"] == "explain-0"
            assert client.ingest([(0, 9)], [])["accepted"]
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                stats = client.stats()
                rep = stats["replication"]
                if rep["writer"]["shipped_seq"] == 1 and rep["lag"] == 0:
                    break
                time.sleep(0.02)
            assert rep["writer"]["ships"] >= 2
            assert rep["lag"] == 0
            assert len(rep["replicas"]) == 2
            got = client.score(host)
            assert got["ok"]
        for replica in router.replicas:
            _assert_bitwise(replica, daemon)
    finally:
        server.stop()


def test_shard_affinity_is_deterministic(base, tmp_path):
    """The same host always routes to the same replica (ready set
    unchanged), and the boundary split covers every node."""
    graph, _, _ = base
    _daemon_, writer, router = _replicated(base, tmp_path, 4)
    router.refresh(shipped_seq=writer.shipped_seq)
    assignment = {
        n: router.replica_for_node(n).name for n in range(graph.num_nodes)
    }
    for n, name in assignment.items():
        for _ in range(3):
            assert router.replica_for_node(n).name == name
    assert set(assignment.values()) == {
        f"replica-{i}" for i in range(4)
    }
