"""Bounded chaos soak of the full serving stack.

An in-process :class:`ScoringServer` is hammered by reader threads
(score/top/health/stats) while an ingest thread feeds delta batches and
:class:`ServeChaos` injects kill-mid-swap and slow-apply faults into
the ingest worker.  The invariants the ISSUE's CI job gates on:

* **zero torn reads** — every response pairs an epoch sequence with
  exactly one graph fingerprint, and every score is finite;
* **bounded staleness** — no response ever reports more accepted-but-
  unapplied batches than ``max_staleness + 1`` (the one slot the
  degraded check races for);
* **structured refusals only** — under overload or a degraded ingest
  path the server says ``rejected`` with a reason, never an
  ``internal`` error, and never closes a healthy connection;
* **clean drain** — stop() unlinks the socket and the WAL chain still
  replays exactly the pending suffix.

The default run is a few seconds so the tier-1 suite stays fast; CI
sets ``REPRO_SOAK=1`` for the ~60 s version.  All loops carry their
own wall-clock deadline — the test self-bounds even where
pytest-timeout is not installed.
"""

import itertools
import json
import os
import threading
import time

import numpy as np
import pytest

from repro.core.mass import estimate_spam_mass
from repro.runtime.chaos import ServeChaos
from repro.serve import (
    DaemonConfig,
    DeltaWAL,
    ScoringDaemon,
    ScoringServer,
    ServeClient,
    plan_replay,
)
from test_differential_solvers import _random_graph

SOAK = bool(os.environ.get("REPRO_SOAK"))
#: Wall-clock budget of the load phase.
DURATION = 60.0 if SOAK else 3.0
#: Hard safety deadline: if the soak wedges, fail instead of hanging.
HARD_DEADLINE = DURATION + 120.0
READERS = 4
EDGES_PER_DELTA = 2
MAX_DELTAS = 4000 if SOAK else 400


@pytest.fixture(scope="module")
def base():
    rng = np.random.default_rng(29)
    graph = _random_graph(17, 150, 600)
    core = np.sort(rng.choice(graph.num_nodes, size=15, replace=False))
    estimates = estimate_spam_mass(graph, core, gamma=0.85)
    return graph, core, estimates


def _fresh_deltas(graph, count, rng):
    """Insertion-only batches of edges absent from ``graph`` and from
    each other — valid to submit in any order, so the ingest thread
    never has to coordinate with the apply worker."""
    existing = set()
    for u in range(graph.num_nodes):
        for v in graph.indices[graph.indptr[u]:graph.indptr[u + 1]]:
            existing.add((u, int(v)))
    deltas, used = [], set()
    while len(deltas) < count:
        batch = []
        while len(batch) < EDGES_PER_DELTA:
            u = int(rng.integers(graph.num_nodes))
            v = int(rng.integers(graph.num_nodes))
            if u == v or (u, v) in existing or (u, v) in used:
                continue
            used.add((u, v))
            batch.append((u, v))
        deltas.append(batch)
    return deltas


def test_soak_chaos_never_tears_reads(base, tmp_path):
    graph, core, estimates = base
    config = DaemonConfig(max_staleness=4, retry_interval=0.01)
    daemon = ScoringDaemon(
        graph,
        core,
        estimates,
        checkpoint_dir=tmp_path / "ckpt",
        wal=DeltaWAL(tmp_path / "wal"),
        config=config,
    )
    # scripted faults: two kill-mid-swap crashes and one slow apply,
    # each spent after one firing so the worker recovers on retry
    daemon.chaos = ServeChaos(
        kill_swap_on=(2, 9), slow_apply_on=(5,), slow_seconds=0.05
    )
    server = ScoringServer(
        daemon, tmp_path / "soak.sock", max_queue=32, workers=3
    )
    server.start()

    stop = threading.Event()
    hard_deadline = time.monotonic() + HARD_DEADLINE
    errors = []          # unexpected responses / exceptions, any thread
    observations = []    # (epoch, fingerprint, staleness, pagerank)
    modes = set()
    rejections = {"reader": 0, "ingest": 0}
    hosts = [graph.name_of(i) for i in range(0, graph.num_nodes, 7)]

    def _note_meta(response, kind):
        if response.get("ok"):
            if "staleness" in response:
                if response["staleness"] > config.max_staleness + 1:
                    errors.append(
                        f"{kind}: staleness {response['staleness']} "
                        f"exceeds bound {config.max_staleness + 1}"
                    )
                modes.add(response.get("mode"))
            return True
        if response.get("error") == "rejected":
            rejections[kind] += 1
            if not response.get("reason"):
                errors.append(f"{kind}: rejection without a reason")
            return False
        errors.append(f"{kind}: unexpected response {response!r}")
        return False

    def _reader(idx):
        try:
            client = ServeClient(server.socket_path, timeout=30.0)
        except OSError as exc:  # pragma: no cover - startup race
            errors.append(f"reader-{idx}: connect failed: {exc}")
            return
        try:
            for tick in itertools.count():
                if stop.is_set() or time.monotonic() > hard_deadline:
                    return
                kind = tick % 4
                if kind == 0:
                    response = client.health()
                elif kind == 1:
                    response = client.top(3, tau=0.0, rho=0.0)
                elif kind == 2:
                    response = client.stats()
                else:
                    response = client.score(hosts[tick % len(hosts)])
                    if _note_meta(response, "reader") and (
                        "pagerank" in response
                    ):
                        observations.append((
                            response["epoch"],
                            response["fingerprint"],
                            response["staleness"],
                            response["pagerank"],
                        ))
                        continue
                _note_meta(response, "reader")
        except Exception as exc:  # noqa: BLE001 - soak boundary
            errors.append(f"reader-{idx}: {type(exc).__name__}: {exc}")
        finally:
            client.close()

    deltas = _fresh_deltas(graph, MAX_DELTAS, np.random.default_rng(31))

    def _ingester():
        try:
            client = ServeClient(server.socket_path, timeout=30.0)
        except OSError as exc:  # pragma: no cover - startup race
            errors.append(f"ingest: connect failed: {exc}")
            return
        try:
            for batch in deltas:
                if stop.is_set() or time.monotonic() > hard_deadline:
                    return
                _note_meta(client.ingest(batch), "ingest")
                time.sleep(0.002)
        except Exception as exc:  # noqa: BLE001 - soak boundary
            errors.append(f"ingest: {type(exc).__name__}: {exc}")
        finally:
            client.close()

    threads = [
        threading.Thread(target=_reader, args=(i,), daemon=True)
        for i in range(READERS)
    ]
    threads.append(threading.Thread(target=_ingester, daemon=True))
    for t in threads:
        t.start()
    time.sleep(DURATION)
    stop.set()
    for t in threads:
        t.join(timeout=60.0)
        assert not t.is_alive(), "soak thread failed to stop"

    # let the worker absorb what it can, then drain
    settle_deadline = time.monotonic() + (30.0 if SOAK else 10.0)
    while daemon.staleness and time.monotonic() < settle_deadline:
        time.sleep(0.05)
    final_fp = daemon.store.current.fingerprint
    final_staleness = daemon.staleness
    stats = server.stats()
    server.stop()

    assert errors == [], "\n".join(errors[:20])
    assert not server.socket_path.exists()
    assert server.wait(5.0) is True

    # actual load went through, including successful applies despite
    # the injected kill-mid-swap crashes
    assert len(observations) > 50
    assert stats["applies"] >= 1
    assert stats["apply_failures"] >= 1  # chaos did fire
    assert "full" in modes

    # zero torn reads: an epoch seq maps to exactly one fingerprint
    fingerprints = {}
    for epoch_seq, fingerprint, staleness, pagerank in observations:
        assert np.isfinite(pagerank)
        assert staleness <= config.max_staleness + 1
        assert fingerprints.setdefault(epoch_seq, fingerprint) == (
            fingerprint
        ), f"torn read: epoch {epoch_seq} served two fingerprints"
    assert len(fingerprints) >= 2, "soak never advanced an epoch"

    # the WAL survived the chaos: a fresh recovery replays exactly the
    # unapplied suffix on top of the final epoch's fingerprint
    records, dropped = DeltaWAL(tmp_path / "wal").recover()
    assert dropped == 0
    assert len(plan_replay(records, final_fp)) == final_staleness

    report = {
        "duration_seconds": DURATION,
        "observations": len(observations),
        "epochs": len(fingerprints),
        "applies": stats["applies"],
        "apply_failures": stats["apply_failures"],
        "reader_rejections": rejections["reader"],
        "ingest_rejections": rejections["ingest"],
        "requests": stats["requests"],
    }
    print("soak:", json.dumps(report))
