"""WAL durability and replay-idempotence contracts.

The load-bearing claims under test: an acknowledged delta survives any
crash (fsync-before-ack), a torn tail is repaired and never invents
history, interior corruption refuses to replay, and — the ISSUE's
satellite — applying the same WAL segment twice is a no-op, including
after a simulated crash *between* applying a record and advancing the
durable watermark.
"""

import json

import numpy as np
import pytest

from repro.errors import WalError
from repro.graph import GraphDelta
from repro.runtime.chaos import truncate_wal_tail
from repro.serve.wal import DeltaWAL, WalRecord, plan_replay
from test_differential_solvers import _random_graph


@pytest.fixture()
def wal(tmp_path):
    return DeltaWAL(tmp_path / "wal")


def _chain(graph, deltas):
    """Apply ``deltas`` in sequence; returns [(delta, parent, after)]."""
    out = []
    current = graph
    for delta in deltas:
        parent = current.structural_fingerprint()
        current = delta.apply(current).after
        out.append((delta, parent, current.structural_fingerprint()))
    return out


@pytest.fixture(scope="module")
def graph():
    return _random_graph(11, 60, 200)


@pytest.fixture(scope="module")
def chain(graph):
    return _chain(graph, [
        GraphDelta([(0, 5), (2, 9)], []),
        GraphDelta([(3, 11)], [(0, 5)]),
        GraphDelta([(4, 13)], []),
    ])


def _fill(wal, chain):
    return [
        wal.append(delta, parent=parent, after=after)
        for delta, parent, after in chain
    ]


def test_append_recover_round_trip(wal, chain):
    appended = _fill(wal, chain)
    assert [r.seq for r in appended] == [1, 2, 3]
    records, dropped = wal.recover()
    assert dropped == 0
    assert len(records) == 3
    for got, (delta, parent, after) in zip(records, chain):
        assert got.parent == parent
        assert got.after == after
        assert [tuple(map(int, e)) for e in got.delta().insertions] == [
            tuple(map(int, e)) for e in delta.insertions
        ]


def test_seq_continues_across_reopen(wal, chain):
    _fill(wal, chain[:2])
    reopened = DeltaWAL(wal.directory)
    delta, parent, after = chain[2]
    record = reopened.append(delta, parent=parent, after=after)
    assert record.seq == 3


def test_replay_plan_full_and_empty(graph, chain):
    records = [
        WalRecord(i + 1, parent, after,
                  list(delta.insertions), list(delta.deletions))
        for i, (delta, parent, after) in enumerate(chain)
    ]
    base = graph.structural_fingerprint()
    # snapshot at the base: everything replays
    assert [r.seq for r in plan_replay(records, base)] == [1, 2, 3]
    # snapshot at the final record: double-apply is a no-op
    assert plan_replay(records, records[-1].after) == []
    # snapshot mid-chain (crash between apply and watermark): the
    # applied prefix is skipped by fingerprint
    assert [r.seq for r in plan_replay(records, records[0].after)] == [2, 3]


def test_replay_plan_rejects_divergent_history(chain):
    records = [
        WalRecord(i + 1, parent, after,
                  list(delta.insertions), list(delta.deletions))
        for i, (delta, parent, after) in enumerate(chain)
    ]
    with pytest.raises(WalError, match="different history"):
        plan_replay(records, "g:not-in-this-chain")
    broken = [records[0], records[2]]
    with pytest.raises(WalError, match="chain broken"):
        plan_replay(broken, records[0].parent)


def test_torn_tail_is_truncated_and_never_invents_records(wal, chain):
    _fill(wal, chain)
    intact = wal.segment_path.read_bytes()
    truncate_wal_tail(wal.segment_path, 9)
    records, dropped = wal.recover()
    assert [r.seq for r in records] == [1, 2]
    assert dropped > 0
    # the file itself was repaired back to the last good record
    first_two = b"".join(intact.splitlines(keepends=True)[:2])
    assert wal.segment_path.read_bytes() == first_two
    # idempotent: a second recovery sees a clean log
    records2, dropped2 = wal.recover()
    assert [r.seq for r in records2] == [1, 2]
    assert dropped2 == 0


def test_interior_corruption_refuses_to_replay(wal, chain):
    _fill(wal, chain)
    lines = wal.segment_path.read_bytes().splitlines(keepends=True)
    lines[1] = b'{"seq":2,"garbage":true}\n'
    wal.segment_path.write_bytes(b"".join(lines))
    with pytest.raises(WalError, match="corrupt record"):
        wal.recover()


def test_crc_catches_bit_flip(wal, chain):
    _fill(wal, chain[:1])
    raw = wal.segment_path.read_bytes()
    flipped = raw.replace(b'"ins":[[0,5]', b'"ins":[[0,6]')
    assert flipped != raw
    wal.segment_path.write_bytes(flipped)
    records, dropped = wal.recover()
    assert records == [] and dropped > 0


def test_sequence_gap_refuses_to_replay(wal, chain):
    _fill(wal, chain)
    lines = wal.segment_path.read_bytes().splitlines(keepends=True)
    wal.segment_path.write_bytes(lines[0] + lines[2])
    with pytest.raises(WalError, match="sequence gap"):
        wal.recover()


def test_watermark_round_trip_and_torn_watermark(wal, chain):
    _fill(wal, chain)
    assert wal.applied_seq() == 0
    wal.mark_applied(2)
    assert wal.applied_seq() == 2
    # a torn watermark degrades to 0 — replay dedupes by fingerprint,
    # so this only costs a fast re-plan, never correctness
    wal.watermark_path.write_text('{"se')
    assert wal.applied_seq() == 0


def test_prune_drops_exactly_the_applied_prefix(wal, chain):
    _fill(wal, chain)
    wal.mark_applied(2)
    assert wal.prune() == 2
    records, _ = wal.recover()
    assert [r.seq for r in records] == [3]
    # pruning again is a no-op
    assert wal.prune() == 0
    # appends continue the original numbering
    delta, parent, after = chain[0]
    assert wal.append(delta, parent=parent, after=after).seq == 4


def test_fsync_off_still_round_trips(tmp_path, chain):
    wal = DeltaWAL(tmp_path / "wal", fsync=False)
    _fill(wal, chain)
    assert len(wal.recover()[0]) == 3


def test_records_are_plain_json_lines(wal, chain):
    _fill(wal, chain)
    for line in wal.segment_path.read_text().splitlines():
        record = json.loads(line)
        assert set(record) == {"seq", "parent", "after", "ins", "dels",
                               "crc"}
