"""The sharded out-of-core backend: round-trip, corruption, deltas.

Companion to the bitwise solver-parity sweep in
``test_differential_solvers.py``.  This file owns everything about the
*store* itself: the external bucket-sort builder, manifest/digest
integrity (corruption must surface as typed
:class:`~repro.errors.GraphIOError` subclasses, never as a partially
loaded graph), the bounded shard LRU, memory-mapped loading,
hypothesis-generated partition boundaries (uneven and zero-width
shards included), copy-on-write delta overlays, the per-shard operator
cache, and the ``repro-spam shard`` CLI.
"""

import json
import shutil
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cli import EXIT_DATA, EXIT_OK, main
from repro.errors import (
    DeltaError,
    EmptyGraphError,
    GraphIOError,
    ManifestVersionError,
    ShardDigestMismatchError,
    ShardIntegrityError,
    ShardMissingError,
    ShardTruncatedError,
)
from repro.graph.delta import GraphDelta
from repro.graph.sharded import (
    MANIFEST_NAME,
    MANIFEST_VERSION,
    ShardedWebGraph,
    default_boundaries,
    iter_edge_chunks,
    partition_graph,
    sharded_from_edges,
    verify_store,
)
from repro.graph.webgraph import WebGraph
from repro.perf import OperatorCache, PagerankEngine, sharded_operator_for
from repro.runtime.supervisor import SupervisorPolicy, TaskSupervisor

TOL = 1e-12


def _random_graph(seed: int, n: int, num_edges: int) -> WebGraph:
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=num_edges)
    dst = rng.integers(0, n, size=num_edges)
    keep = src != dst
    return WebGraph.from_edges(n, list(zip(src[keep], dst[keep])))


@pytest.fixture(scope="module")
def graph():
    return _random_graph(23, 97, 600)


@pytest.fixture(scope="module")
def store_dir(graph, tmp_path_factory):
    out = tmp_path_factory.mktemp("store") / "k5"
    partition_graph(graph, out, num_shards=5)
    return out


@pytest.fixture()
def store(store_dir):
    return ShardedWebGraph.open(store_dir)


def _manifest(directory: Path) -> dict:
    return json.loads((directory / MANIFEST_NAME).read_text())


def _shard_files(directory: Path):
    return [directory / s["file"] for s in _manifest(directory)["shards"]]


def _copy_store(src: Path, tmp_path: Path) -> Path:
    dst = tmp_path / src.name
    shutil.copytree(src, dst)
    return dst


# ---------------------------------------------------------------------------
# round trip
# ---------------------------------------------------------------------------


def test_round_trip_bitwise(graph, store):
    assert store.backend_name == "sharded"
    assert store.num_nodes == graph.num_nodes
    assert store.num_edges == graph.num_edges
    assert store.structural_fingerprint() == graph.structural_fingerprint()
    back = store.to_webgraph()
    assert np.array_equal(back.indptr, graph.indptr)
    assert np.array_equal(back.indices, graph.indices)
    # to_webgraph does not stamp the fingerprint: recomputation is the check
    assert back.structural_fingerprint() == graph.structural_fingerprint()
    assert np.array_equal(store.out_degree(), graph.out_degree())
    assert np.array_equal(store.dangling_mask(), graph.dangling_mask())


def test_shard_edges_union_is_the_graph(graph, store):
    srcs, dsts = [], []
    for k in range(store.num_shards):
        s, d = store.iter_shard_edges(k)
        srcs.append(s)
        dsts.append(d)
    rebuilt = WebGraph.from_edges(
        graph.num_nodes,
        list(zip(np.concatenate(srcs), np.concatenate(dsts))),
    )
    assert np.array_equal(rebuilt.indptr, graph.indptr)
    assert np.array_equal(rebuilt.indices, graph.indices)


def test_builder_dedups_and_drops_self_links(tmp_path):
    # from_edges semantics: duplicates collapse, self-links vanish —
    # the out-of-core bucket sort must agree exactly
    edges = [(0, 1), (0, 1), (2, 2), (3, 1), (1, 0), (3, 1)]
    reference = WebGraph.from_edges(5, edges)
    chunks = [np.array(edges[:3]), np.array(edges[3:])]
    built = sharded_from_edges(5, iter(chunks), tmp_path / "s", num_shards=3)
    assert built.structural_fingerprint() == reference.structural_fingerprint()
    assert built.num_edges == reference.num_edges
    back = built.to_webgraph()
    assert np.array_equal(back.indptr, reference.indptr)
    assert np.array_equal(back.indices, reference.indices)


def test_zero_node_store_rejected(tmp_path):
    with pytest.raises(EmptyGraphError):
        sharded_from_edges(0, iter([]), tmp_path / "s", num_shards=1)


def test_out_of_range_edge_rejected_and_no_store_left(tmp_path):
    out = tmp_path / "s"
    with pytest.raises(Exception):
        sharded_from_edges(
            4, iter([np.array([[0, 9]])]), out, num_shards=2
        )
    # a failed build must not leave a readable (partial) store behind
    with pytest.raises(ShardMissingError):
        ShardedWebGraph.open(out)


def test_iter_edge_chunks_recovers_edges(graph):
    chunks = list(iter_edge_chunks(graph, chunk_edges=100))
    stacked = np.concatenate(chunks)
    assert len(stacked) == graph.num_edges
    rebuilt = WebGraph.from_edges(graph.num_nodes, list(map(tuple, stacked)))
    assert rebuilt.structural_fingerprint() == graph.structural_fingerprint()


def test_boundaries_validation(graph, tmp_path):
    with pytest.raises(ValueError):
        default_boundaries(10, 0)
    with pytest.raises(ValueError):
        partition_graph(
            graph, tmp_path / "a", num_shards=2, boundaries=[0, 5, 9]
        )  # does not end at num_nodes
    with pytest.raises(ValueError):
        partition_graph(
            graph, tmp_path / "b", num_shards=3, boundaries=[0, 97]
        )  # count disagreement


# ---------------------------------------------------------------------------
# hypothesis: arbitrary partition boundaries
# ---------------------------------------------------------------------------

_HYPO_GRAPH = _random_graph(31, 57, 260)


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    cuts=st.lists(
        st.integers(min_value=0, max_value=57), min_size=0, max_size=6
    )
)
def test_arbitrary_boundaries_round_trip(cuts):
    # includes uneven partitions, duplicate cuts (zero-width shards),
    # and the trivial single-shard partition
    boundaries = [0] + sorted(cuts) + [57]
    with tempfile.TemporaryDirectory() as tmp:
        store = partition_graph(
            _HYPO_GRAPH, Path(tmp) / "s", boundaries=boundaries
        )
        assert store.num_shards == len(boundaries) - 1
        assert (
            store.structural_fingerprint()
            == _HYPO_GRAPH.structural_fingerprint()
        )
        back = store.to_webgraph()
        assert np.array_equal(back.indptr, _HYPO_GRAPH.indptr)
        assert np.array_equal(back.indices, _HYPO_GRAPH.indices)
        report = verify_store(Path(tmp) / "s", deep=True)
        assert report["ok"], report["problems"]


@settings(max_examples=20, deadline=None)
@given(
    node=st.integers(min_value=0, max_value=56),
    cuts=st.lists(
        st.integers(min_value=0, max_value=57), min_size=0, max_size=4
    ),
)
def test_shard_of_matches_shard_ranges(node, cuts):
    boundaries = np.array([0] + sorted(cuts) + [57], dtype=np.int64)
    with tempfile.TemporaryDirectory() as tmp:
        store = partition_graph(
            _HYPO_GRAPH, Path(tmp) / "s", boundaries=boundaries
        )
        k = int(store.shard_of(np.array([node]))[0])
        a, b = store.shard_range(k)
        assert a <= node < b


# ---------------------------------------------------------------------------
# corruption injection: typed errors, never partial graphs
# ---------------------------------------------------------------------------


def test_missing_manifest(tmp_path):
    with pytest.raises(ShardMissingError):
        ShardedWebGraph.open(tmp_path)


def test_garbage_manifest(store_dir, tmp_path):
    bad = _copy_store(store_dir, tmp_path)
    (bad / MANIFEST_NAME).write_text("{not json")
    with pytest.raises(ShardIntegrityError):
        ShardedWebGraph.open(bad)


def test_stale_manifest_version(store_dir, tmp_path):
    bad = _copy_store(store_dir, tmp_path)
    manifest = _manifest(bad)
    manifest["version"] = MANIFEST_VERSION + 1
    (bad / MANIFEST_NAME).write_text(json.dumps(manifest))
    with pytest.raises(ManifestVersionError) as exc_info:
        ShardedWebGraph.open(bad)
    assert exc_info.value.found == MANIFEST_VERSION + 1
    assert exc_info.value.supported == MANIFEST_VERSION


def test_missing_shard_file_fails_at_open(store_dir, tmp_path):
    bad = _copy_store(store_dir, tmp_path)
    _shard_files(bad)[2].unlink()
    # eagerly at open(), not at first touch of shard 2
    with pytest.raises(ShardMissingError):
        ShardedWebGraph.open(bad)


def test_truncated_shard_file(store_dir, tmp_path):
    bad = _copy_store(store_dir, tmp_path)
    target = _shard_files(bad)[1]
    blob = target.read_bytes()
    target.write_bytes(blob[: len(blob) // 2])
    store = ShardedWebGraph.open(bad)  # manifest still consistent
    with pytest.raises(ShardTruncatedError):
        store.shard(1)
    report = verify_store(bad)
    assert not report["ok"]
    assert any("shard 1" in p or "truncat" in p.lower() for p in report["problems"])


def test_manifest_digest_tampering(store_dir, tmp_path):
    bad = _copy_store(store_dir, tmp_path)
    manifest = _manifest(bad)
    manifest["shards"][0]["digest"] = f"{0xDEADBEEF:016x}"
    (bad / MANIFEST_NAME).write_text(json.dumps(manifest))
    # per-shard digests no longer compose to the manifest fingerprint
    with pytest.raises(ShardDigestMismatchError):
        ShardedWebGraph.open(bad)


def test_perturbed_shard_contents_fail_digest(graph, store_dir, tmp_path):
    # a *structurally valid* shard file with one wrong destination:
    # counts and ranges all pass, only the digest check can catch this
    bad = _copy_store(store_dir, tmp_path)
    target = _shard_files(bad)[1]
    with np.load(target) as npz:
        arrays = {name: npz[name].copy() for name in npz.files}
    assert len(arrays["indices"]), "shard 1 unexpectedly edgeless"
    arrays["indices"][0] = (arrays["indices"][0] + 1) % graph.num_nodes
    np.savez(target, **arrays)
    store = ShardedWebGraph.open(bad)
    with pytest.raises(ShardDigestMismatchError):
        store.shard(1)
    # digest verification is gated by verify=; an unverified open loads
    lenient = ShardedWebGraph.open(bad, verify=False)
    lenient.shard(1)
    # deep verification still reports the problem
    report = verify_store(bad, deep=True)
    assert not report["ok"]


def test_typed_errors_are_graph_io_errors():
    for exc in (
        ShardMissingError,
        ShardIntegrityError,
        ShardTruncatedError,
        ShardDigestMismatchError,
        ManifestVersionError,
    ):
        assert issubclass(exc, GraphIOError)
    assert issubclass(ShardMissingError, FileNotFoundError)
    assert issubclass(GraphIOError, OSError)


# ---------------------------------------------------------------------------
# shard LRU + memory mapping
# ---------------------------------------------------------------------------


def test_lru_counters_and_eviction(store_dir):
    store = ShardedWebGraph.open(store_dir, cache_shards=2)
    for k in range(store.num_shards):
        store.shard(k)
    info = store.cache_info()
    assert info["maxsize"] == 2
    assert info["loads"] == store.num_shards
    assert info["resident"] == 2
    assert info["evictions"] == store.num_shards - 2
    # most-recently-used shards hit without a reload
    store.shard(store.num_shards - 1)
    assert store.cache_info()["hits"] == 1
    assert store.cache_info()["loads"] == store.num_shards


def test_shards_are_memory_mapped(store):
    shard = next(
        store.shard(k)
        for k in range(store.num_shards)
        if store.shard_meta(k).num_edges
    )
    mapped = lambda a: isinstance(a, np.memmap) or isinstance(
        getattr(a, "base", None), np.memmap
    )
    assert mapped(shard.indices)
    assert mapped(shard.indptr)


# ---------------------------------------------------------------------------
# deltas: copy-on-write overlays, exact in-memory parity
# ---------------------------------------------------------------------------


def _pick_delta(graph):
    # delete two existing edges, insert two absent ones
    srcs, dsts = [], []
    for u in range(graph.num_nodes):
        row = graph.indices[graph.indptr[u] : graph.indptr[u + 1]]
        for v in row[:1]:
            srcs.append((u, int(v)))
        if len(srcs) >= 2:
            break
    present = {
        (u, int(v))
        for u in range(graph.num_nodes)
        for v in graph.indices[graph.indptr[u] : graph.indptr[u + 1]]
    }
    inserts = []
    for u in range(graph.num_nodes):
        for v in range(graph.num_nodes):
            if u != v and (u, v) not in present:
                inserts.append((u, v))
                if len(inserts) == 2:
                    return GraphDelta(insertions=inserts, deletions=srcs[:2])
    raise AssertionError("graph too dense for the test delta")


def test_delta_matches_in_memory_bitwise(graph, store):
    delta = _pick_delta(graph)
    mem_app = delta.apply(graph)
    shard_app = store.apply_delta(delta)
    after = shard_app.after
    assert (
        after.structural_fingerprint()
        == mem_app.after.structural_fingerprint()
    )
    assert after.num_edges == mem_app.after.num_edges
    back = after.to_webgraph()
    assert np.array_equal(back.indptr, mem_app.after.indptr)
    assert np.array_equal(back.indices, mem_app.after.indices)
    # copy-on-write: only owning shards were overridden
    touched = set(
        after.shard_of(np.asarray(delta.touched_nodes())).tolist()
    )
    assert after.delta_touched_shards <= touched
    # the base graph and the on-disk store are untouched
    assert store.structural_fingerprint() == graph.structural_fingerprint()
    assert verify_store(store.directory, deep=True)["ok"]


def test_chained_deltas(graph, store):
    delta = _pick_delta(graph)
    inverse = GraphDelta(
        insertions=[tuple(e) for e in delta.deletions],
        deletions=[tuple(e) for e in delta.insertions],
    )
    once = store.apply_delta(delta).after
    back = once.apply_delta(inverse).after
    assert back.structural_fingerprint() == graph.structural_fingerprint()
    assembled = back.to_webgraph()
    assert np.array_equal(assembled.indptr, graph.indptr)
    assert np.array_equal(assembled.indices, graph.indices)


def test_delta_error_messages_match_in_memory(graph, store):
    cases = [
        GraphDelta(insertions=[(0, graph.num_nodes + 5)]),
        GraphDelta(deletions=[(0, graph.num_nodes + 5)]),
    ]
    # a definitely-absent edge and a definitely-present edge
    delta = _pick_delta(graph)
    absent = tuple(int(x) for x in delta.insertions[0])
    present = tuple(int(x) for x in delta.deletions[0])
    cases.append(GraphDelta(deletions=[absent]))
    cases.append(GraphDelta(insertions=[present]))
    for bad in cases:
        with pytest.raises(DeltaError) as mem_exc:
            bad.apply(graph)
        with pytest.raises(DeltaError) as shard_exc:
            store.apply_delta(bad)
        assert str(shard_exc.value) == str(mem_exc.value)


# ---------------------------------------------------------------------------
# per-shard operator cache + derived operators
# ---------------------------------------------------------------------------


def test_partition_key_distinguishes_partitions(graph, store, tmp_path):
    other = partition_graph(graph, tmp_path / "k2", num_shards=2)
    assert store.structural_fingerprint() == other.structural_fingerprint()
    assert store.partition_key != other.partition_key


def test_operator_cache_reuses_shard_operator(store):
    cache = OperatorCache(maxsize=64)
    first = sharded_operator_for(cache, store)
    second = sharded_operator_for(cache, store)
    assert first is second


def test_derived_operator_reuses_untouched_blocks(tmp_path):
    # five independent 20-node chains, one per shard — a delta confined
    # to shard 0 leaves the other shards' operator blocks reusable
    n, block = 100, 20
    edges = [
        (u, u + 1)
        for start in range(0, n, block)
        for u in range(start, start + block - 1)
    ]
    local = WebGraph.from_edges(n, edges)
    store = partition_graph(local, tmp_path / "s", num_shards=5)
    engine = PagerankEngine()
    vectors = np.full((n, 2), 1.0 / n)
    base_batch = engine.solve_many(store, vectors, tol=TOL)
    # insertion only: out-degrees stay positive, dangling set unchanged
    delta = GraphDelta(insertions=[(0, 2)])
    shard_app = store.apply_delta(delta)
    op = engine.shard_cache.derive_for(shard_app)
    derived_batch = engine.solve_many(shard_app.after, vectors, tol=TOL)
    assert engine.shard_cache.derives == 1
    # the solve found the derived operator under the after-graph's key
    assert sharded_operator_for(engine.shard_cache, shard_app.after) is op
    assert op.block_reuses > 0
    assert op.block_builds > 0
    # and the derived solve is still bitwise-identical to in-memory
    mem_batch = engine.solve_many(delta.apply(local).after, vectors, tol=TOL)
    assert np.array_equal(derived_batch.scores, mem_batch.scores)
    assert np.array_equal(derived_batch.iterations, mem_batch.iterations)
    assert np.array_equal(base_batch.converged, derived_batch.converged)


def test_supervised_shard_sweep_is_bitwise_identical(graph, store):
    engine = PagerankEngine()
    vectors = np.stack(
        [
            np.full(graph.num_nodes, 1.0 / graph.num_nodes),
            np.linspace(0.1, 0.9, graph.num_nodes)
            / np.linspace(0.1, 0.9, graph.num_nodes).sum(),
        ],
        axis=1,
    )
    plain = engine.solve_many(store, vectors, tol=TOL)
    supervised = engine.solve_many(
        store,
        vectors,
        tol=TOL,
        supervisor=TaskSupervisor(SupervisorPolicy()),
    )
    assert np.array_equal(plain.scores, supervised.scores)
    assert np.array_equal(plain.iterations, supervised.iterations)
    assert np.array_equal(plain.residuals, supervised.residuals)


def test_sharded_rejects_non_jacobi_and_policies(store):
    engine = PagerankEngine()
    with pytest.raises(ValueError, match="sharded"):
        engine.solve(store, method="power")
    with pytest.raises(TypeError, match="sharded"):
        engine.bundle(store)


# ---------------------------------------------------------------------------
# CLI: repro-spam shard partition / inspect / verify
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def world_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("world") / "bundle"
    assert main(
        ["generate", "--scale", "small", "--seed", "3", "--out", str(out)]
    ) == EXIT_OK
    return out


@pytest.fixture(scope="module")
def cli_store(world_dir, tmp_path_factory):
    out = tmp_path_factory.mktemp("cli") / "store"
    code = main(
        [
            "shard",
            "partition",
            "--world",
            str(world_dir),
            "--out",
            str(out),
            "--shards",
            "4",
        ]
    )
    assert code == EXIT_OK
    return out


def test_cli_partition_produces_valid_store(cli_store):
    store = ShardedWebGraph.open(cli_store)
    assert store.num_shards == 4
    assert verify_store(cli_store, deep=True)["ok"]


def test_cli_partition_with_boundaries(world_dir, tmp_path):
    from repro.graph import read_graph_bundle

    bundle_graph, _, _ = read_graph_bundle(world_dir)
    n = bundle_graph.num_nodes
    out = tmp_path / "store"
    code = main(
        [
            "shard",
            "partition",
            "--world",
            str(world_dir),
            "--out",
            str(out),
            "--boundaries",
            f"0,{n // 3},{n // 3},{n}",
        ]
    )
    assert code == EXIT_OK
    assert ShardedWebGraph.open(out).num_shards == 3


def test_cli_inspect(cli_store, capsys):
    assert main(["shard", "inspect", "--store", str(cli_store)]) == EXIT_OK
    human = capsys.readouterr().out
    assert "fingerprint" in human
    assert main(
        ["shard", "inspect", "--store", str(cli_store), "--json"]
    ) == EXIT_OK
    payload = json.loads(capsys.readouterr().out)
    assert payload["num_shards"] == 4
    assert len(payload["shards"]) == 4


def test_cli_verify_ok(cli_store, capsys):
    assert main(["shard", "verify", "--store", str(cli_store)]) == EXIT_OK
    capsys.readouterr()
    assert main(
        ["shard", "verify", "--store", str(cli_store), "--deep", "--json"]
    ) == EXIT_OK
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] and payload["deep"]


def test_cli_verify_catches_corruption(cli_store, tmp_path, capsys):
    bad = _copy_store(cli_store, tmp_path)
    target = _shard_files(bad)[0]
    target.write_bytes(target.read_bytes()[:40])
    assert main(["shard", "verify", "--store", str(bad)]) == EXIT_DATA
    err = capsys.readouterr().err
    assert err.strip()


def test_cli_inspect_missing_store(tmp_path):
    assert main(
        ["shard", "inspect", "--store", str(tmp_path / "nope")]
    ) == EXIT_DATA
