"""Unit tests for the linear PageRank solvers."""

import numpy as np
import pytest

from repro.core.solvers import (
    SOLVERS,
    bicgstab,
    direct,
    gauss_seidel,
    jacobi,
    power_iteration,
    solve,
)
from repro.graph import WebGraph, transition_matrix


@pytest.fixture()
def small_system():
    # 0 -> 1 -> 2 -> 0 cycle plus dangling 3 fed by 0
    graph = WebGraph.from_edges(4, [(0, 1), (1, 2), (2, 0), (0, 3)])
    tt = transition_matrix(graph).T.tocsr()
    v = np.full(4, 0.25)
    return graph, tt, v


def test_jacobi_satisfies_linear_system(small_system):
    _, tt, v = small_system
    result = jacobi(tt, v, damping=0.85, tol=1e-14)
    assert result.converged
    residual = result.scores - 0.85 * (tt @ result.scores) - 0.15 * v
    assert np.abs(residual).max() < 1e-12


def test_all_solvers_agree(small_system):
    _, tt, v = small_system
    reference = direct(tt, v).scores
    for name in ("jacobi", "gauss_seidel", "bicgstab"):
        scores = solve(name, tt, v, tol=1e-13).scores
        assert np.abs(scores - reference).max() < 1e-9, name


def test_power_iteration_is_normalized_linear_solution(small_system):
    _, tt, v = small_system
    linear = jacobi(tt, v, tol=1e-14).scores
    power = power_iteration(tt, v, tol=1e-14).scores
    assert power.sum() == pytest.approx(1.0)
    assert np.abs(power - linear / linear.sum()).max() < 1e-10


def test_power_iteration_requires_normalized_v(small_system):
    _, tt, v = small_system
    with pytest.raises(ValueError, match="normalized"):
        power_iteration(tt, v * 0.5)


def test_unnormalized_v_allowed_for_linear_solvers(small_system):
    _, tt, v = small_system
    half = jacobi(tt, 0.5 * v, tol=1e-14).scores
    full = jacobi(tt, v, tol=1e-14).scores
    # linearity: PR(v/2) = PR(v)/2
    assert np.abs(half - full / 2).max() < 1e-12


def test_gauss_seidel_converges_in_fewer_iterations(small_system):
    """The paper notes Gauss-Seidel is 'regularly faster' than Jacobi."""
    _, tt, v = small_system
    assert (
        gauss_seidel(tt, v, tol=1e-12).iterations
        < jacobi(tt, v, tol=1e-12).iterations
    )


def test_divergence_reported_not_hidden(small_system):
    _, tt, v = small_system
    result = jacobi(tt, v, tol=1e-15, max_iter=2)
    assert not result.converged
    assert result.iterations == 2
    assert result.residual > 0


def test_invalid_inputs_rejected(small_system):
    _, tt, v = small_system
    with pytest.raises(ValueError):
        jacobi(tt, v, damping=1.0)
    with pytest.raises(ValueError):
        jacobi(tt, v, damping=0.0)
    with pytest.raises(ValueError):
        jacobi(tt, v, tol=0.0)
    with pytest.raises(ValueError):
        jacobi(tt, -v)
    with pytest.raises(ValueError):
        jacobi(tt, np.zeros(4))
    with pytest.raises(ValueError):
        jacobi(tt, v * 5)  # norm > 1
    with pytest.raises(ValueError):
        jacobi(tt, v[:2])


def test_unknown_solver_name(small_system):
    _, tt, v = small_system
    with pytest.raises(ValueError, match="unknown solver"):
        solve("newton", tt, v)


def test_solver_registry_complete():
    assert set(SOLVERS) == {
        "jacobi",
        "gauss_seidel",
        "power",
        "direct",
        "bicgstab",
    }


def test_dangling_mass_leaks_in_linear_formulation(small_system):
    """In the linear formulation ||p|| <= ||v||: dangling nodes absorb
    rank (no dangling patch), which is why core-based norms need the
    Section 3.5 gamma treatment."""
    _, tt, v = small_system
    scores = jacobi(tt, v, tol=1e-14).scores
    assert scores.sum() < 1.0


def test_no_dangling_norm_preserved():
    graph = WebGraph.from_edges(3, [(0, 1), (1, 2), (2, 0)])
    tt = transition_matrix(graph).T.tocsr()
    v = np.full(3, 1 / 3)
    scores = jacobi(tt, v, tol=1e-14).scores
    assert scores.sum() == pytest.approx(1.0, abs=1e-12)


def test_bicgstab_matches_direct_on_larger_random_graph(rng):
    n = 200
    edges = [
        (int(u), int(v))
        for u, v in zip(rng.integers(0, n, 800), rng.integers(0, n, 800))
        if u != v
    ]
    graph = WebGraph.from_edges(n, edges)
    tt = transition_matrix(graph).T.tocsr()
    v = np.full(n, 1.0 / n)
    assert (
        np.abs(bicgstab(tt, v, tol=1e-13).scores - direct(tt, v).scores).max()
        < 1e-8
    )


def test_residual_tracking_and_convergence_rate(rng):
    """The Jacobi residual contracts geometrically at rate ~c, and
    Gauss-Seidel strictly faster — the classical convergence theory."""
    n = 120
    # a pure directed ring is a permutation chain: the Jacobi error
    # contracts at exactly c per iteration
    ring = WebGraph.from_edges(n, [(i, (i + 1) % n) for i in range(n)])
    tt_ring = transition_matrix(ring).T.tocsr()
    v = np.full(n, 1.0 / n)
    # a point jump breaks the ring's symmetry (the uniform jump is the
    # ring's fixed point and converges in one step)
    point = np.zeros(n)
    point[0] = 1.0
    jac_ring = jacobi(
        tt_ring, point, damping=0.85, tol=1e-12, track_residuals=True
    )
    assert jac_ring.residual_history is not None
    assert len(jac_ring.residual_history) == jac_ring.iterations
    assert jac_ring.convergence_rate() == pytest.approx(0.85, abs=0.02)

    # with random chords the chain mixes faster (rate < c), and
    # Gauss-Seidel contracts faster than Jacobi on the same system
    edges = [(i, (i + 1) % n) for i in range(n)]
    edges += [
        (int(u), int(v))
        for u, v in zip(rng.integers(0, n, 200), rng.integers(0, n, 200))
        if u != v
    ]
    graph = WebGraph.from_edges(n, edges)
    tt = transition_matrix(graph).T.tocsr()
    jac = jacobi(tt, v, damping=0.85, tol=1e-12, track_residuals=True)
    assert jac.convergence_rate() <= 0.86
    gs = gauss_seidel(tt, v, damping=0.85, tol=1e-12, track_residuals=True)
    assert gs.convergence_rate() < jac.convergence_rate()
    # without tracking, the rate is NaN and no history is stored
    untracked = jacobi(tt, v, tol=1e-12)
    assert untracked.residual_history is None
    assert untracked.convergence_rate() != untracked.convergence_rate()


# ----------------------------------------------------------------------
# robustness extensions: check=, warm starts, iteration callbacks
# ----------------------------------------------------------------------


def test_check_true_raises_convergence_error(small_system):
    from repro.errors import ConvergenceError

    _, tt, v = small_system
    with pytest.raises(ConvergenceError) as excinfo:
        solve("jacobi", tt, v, tol=1e-15, max_iter=3, check=True)
    # the best-effort result rides on the exception
    partial = excinfo.value.result
    assert partial is not None
    assert not partial.converged
    assert partial.iterations == 3
    # backward compatible: still a RuntimeError
    assert isinstance(excinfo.value, RuntimeError)


def test_check_false_keeps_silent_exhaust_path(small_system):
    _, tt, v = small_system
    result = solve("jacobi", tt, v, tol=1e-15, max_iter=3)
    assert not result.converged  # no exception


def test_warm_start_matches_cold_run(small_system):
    """Stopping at iteration k and restarting from (p_k, k) reproduces
    the uninterrupted trajectory exactly — the solvers are memoryless."""
    _, tt, v = small_system
    for method in (jacobi, gauss_seidel):
        cold = method(tt, v, tol=1e-13)
        partial = method(tt, v, tol=1e-13, max_iter=10)
        assert not partial.converged
        resumed = method(
            tt, v, tol=1e-13, x0=partial.scores, start_iteration=10
        )
        assert resumed.converged
        assert resumed.iterations == cold.iterations
        np.testing.assert_allclose(resumed.scores, cold.scores, atol=1e-15)


def test_warm_start_requires_x0(small_system):
    _, tt, v = small_system
    with pytest.raises(ValueError):
        jacobi(tt, v, start_iteration=5)


def test_warm_start_rejects_bad_shape(small_system):
    _, tt, v = small_system
    with pytest.raises(ValueError):
        jacobi(tt, v, x0=np.ones(7), start_iteration=1)


def test_iteration_callback_sees_every_iteration(small_system):
    _, tt, v = small_system
    seen = []
    result = jacobi(
        tt, v, tol=1e-10, callback=lambda it, p, r: seen.append((it, r))
    )
    assert result.converged
    iterations = [it for it, _ in seen]
    assert iterations == list(range(1, result.iterations + 1))
    assert seen[-1][1] == pytest.approx(result.residual)


def test_callback_numbering_continues_after_warm_start(small_system):
    _, tt, v = small_system
    partial = jacobi(tt, v, tol=1e-13, max_iter=5)
    seen = []
    jacobi(
        tt,
        v,
        tol=1e-13,
        x0=partial.scores,
        start_iteration=5,
        callback=lambda it, p, r: seen.append(it),
    )
    assert seen[0] == 6  # not 1: iteration numbering is global
