"""Unit tests for the spam-farm generators (Section 2.3 structures)."""

import numpy as np
import pytest

from repro.synth import (
    BaseWebConfig,
    WorldAssembler,
    add_expired_domain_spam,
    add_farm_alliance,
    add_spam_farm,
    generate_base_web,
)
from repro.synth.spamfarm import add_paid_links


@pytest.fixture()
def base_pair(rng):
    asm = WorldAssembler()
    base = generate_base_web(asm, rng, BaseWebConfig(2_000, mean_outdegree=8.0))
    return asm, base


def test_basic_farm_structure(base_pair, rng):
    asm, base = base_pair
    farm = add_spam_farm(asm, rng, base, 30, tag="farm:0")
    world = asm.build()
    g = world.graph
    assert farm.size == 31
    for booster in farm.boosters:
        assert g.has_edge(int(booster), farm.target)
        assert g.has_edge(farm.target, int(booster))  # links back by default
    # all farm nodes are ground-truth spam
    assert world.spam_mask[farm.target]
    assert world.spam_mask[farm.boosters].all()
    assert world.group("farm:0:target").tolist() == [farm.target]
    assert farm.target in world.group("spam:targets")


def test_farm_without_linkback(base_pair, rng):
    asm, base = base_pair
    farm = add_spam_farm(
        asm, rng, base, 10, tag="farm:0", target_links_back=False
    )
    g = asm.build().graph
    assert g.out_degree(farm.target) == 0


def test_hijacked_links_from_good_hosts(base_pair, rng):
    asm, base = base_pair
    farm = add_spam_farm(
        asm, rng, base, 20, tag="farm:0", hijacked_links=6
    )
    world = asm.build()
    assert len(farm.hijacked_sources) >= 1
    for src in farm.hijacked_sources:
        assert world.graph.has_edge(int(src), farm.target)
        assert not world.spam_mask[src]  # hijacked hosts stay good


def test_honeypots_attract_good_links(base_pair, rng):
    asm, base = base_pair
    farm = add_spam_farm(
        asm, rng, base, 15, tag="farm:0", num_honeypots=2, honeypot_inlinks=4
    )
    world = asm.build()
    assert len(farm.honeypots) == 2
    for pot in farm.honeypots:
        in_neighbors = world.graph.in_neighbors(int(pot))
        good_fans = [
            j for j in in_neighbors if not world.spam_mask[int(j)]
        ]
        assert len(good_fans) >= 3  # dedup may collapse a duplicate fan
    with pytest.raises(ValueError):
        add_spam_farm(asm, rng, base, 5, num_honeypots=6)


def test_two_tier_relay_farm(base_pair, rng):
    asm, base = base_pair
    farm = add_spam_farm(
        asm,
        rng,
        base,
        40,
        tag="farm:0",
        relay_nodes=3,
        target_links_back=False,
    )
    world = asm.build()
    g = world.graph
    relays = world.group("farm:0:relays")
    assert len(relays) == 3
    # only relays link the target; ordinary boosters do not
    in_neighbors = set(g.in_neighbors(farm.target).tolist())
    assert in_neighbors == set(relays.tolist())
    # feeders link relays
    feeders = [b for b in farm.boosters if b not in set(relays.tolist())]
    for f in feeders:
        outs = set(g.out_neighbors(int(f)).tolist())
        assert outs <= set(relays.tolist())
    with pytest.raises(ValueError):
        add_spam_farm(asm, rng, base, 3, relay_nodes=3)


def test_regular_interlinked_farm_has_uniform_degree(base_pair, rng):
    asm, base = base_pair
    farm = add_spam_farm(
        asm,
        rng,
        base,
        25,
        tag="farm:0",
        booster_interlinks=4,
        target_links_back=False,
    )
    g = asm.build().graph
    degrees = {g.out_degree(int(b)) for b in farm.boosters}
    assert degrees == {5}  # 1 target link + 4 ring links, all identical


def test_leak_links_point_at_good_hosts(base_pair, rng):
    asm, base = base_pair
    farm = add_spam_farm(
        asm, rng, base, 20, tag="farm:0", leak_links=10
    )
    world = asm.build()
    g = world.graph
    farm_nodes = set(farm.boosters.tolist()) | {farm.target}
    leaked = [
        (int(b), int(j))
        for b in farm.boosters
        for j in g.out_neighbors(int(b))
        if int(j) not in farm_nodes
    ]
    assert leaked
    for _, dest in leaked:
        assert not world.spam_mask[dest]


def test_alliance_cross_boosting(base_pair, rng):
    asm, base = base_pair
    farms = add_farm_alliance(
        asm, rng, base, num_targets=3, boosters_per_target=10,
        tag="alliance:0", share_fraction=1.0,
    )
    world = asm.build()
    g = world.graph
    targets = [f.target for f in farms]
    assert world.group("alliance:0:targets").tolist() == sorted(targets)
    # ring of targets
    for a, b in zip(targets, targets[1:] + targets[:1]):
        assert g.has_edge(a, b)
    # with share_fraction=1 every booster links every target
    for farm in farms:
        for booster in farm.boosters:
            for t in targets:
                if t != farm.target:
                    assert g.has_edge(int(booster), t)
    with pytest.raises(ValueError):
        add_farm_alliance(asm, rng, base, 1, 5)
    with pytest.raises(ValueError):
        add_farm_alliance(asm, rng, base, 2, 5, share_fraction=1.5)


def test_expired_domain(base_pair, rng):
    asm, base = base_pair
    target = add_expired_domain_spam(asm, rng, base, lingering_links=10)
    world = asm.build()
    g = world.graph
    assert world.spam_mask[target]
    in_neighbors = g.in_neighbors(target)
    assert len(in_neighbors) >= 2
    # every lingering link is from a good host; no boosting structure
    for j in in_neighbors:
        assert not world.spam_mask[int(j)]
    assert g.out_degree(target) == 0
    assert target in world.group("expired:targets")
    with pytest.raises(ValueError):
        add_expired_domain_spam(asm, rng, base, lingering_links=0)


def test_paid_links_relabel_customer(base_pair, rng):
    asm, base = base_pair
    farm = add_spam_farm(asm, rng, base, 20, tag="farm:0")
    customer = int(base.connected[0])
    sellers = add_paid_links(asm, rng, farm, customer, num_links=8)
    world = asm.build()
    assert world.spam_mask[customer]  # buying links makes it spam
    assert customer in world.group("paid:customers")
    for s in sellers:
        assert world.graph.has_edge(int(s), customer)
    with pytest.raises(ValueError):
        add_paid_links(asm, rng, farm, customer, num_links=0)


def test_farm_validation(base_pair, rng):
    asm, base = base_pair
    with pytest.raises(ValueError):
        add_spam_farm(asm, rng, base, 0)
