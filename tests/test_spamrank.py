"""Unit tests for the SpamRank-style supporter-deviation baseline."""

import numpy as np
import pytest

from repro.baselines import SupporterDeviationDetector, supporter_deviation_scores
from repro.graph import WebGraph
from repro.synth import (
    BaseWebConfig,
    WorldAssembler,
    add_spam_farm,
    generate_base_web,
)


def test_uniform_supporters_deviate(rng):
    """A rank-recycling farm's boosters share one distinctive PageRank
    bucket, so the target's supporter histogram deviates sharply from
    the global supporter distribution."""
    assembler = WorldAssembler()
    base = generate_base_web(
        assembler, rng, BaseWebConfig(3_000, mean_outdegree=8.0)
    )
    farm = add_spam_farm(
        assembler, rng, base, 300, tag="farm:0", target_links_back=True
    )
    world = assembler.build()
    scores = supporter_deviation_scores(world.graph, min_supporters=8)
    # the farm target sticks out far above the typical organic host
    organic = scores[base.connected]
    assert scores[farm.target] > np.percentile(organic[organic > 0], 95)


def test_leaf_pagerank_boosters_are_camouflaged(rng):
    """Boosters with no inlinks share the global minimum PageRank — the
    single most common supporter score on the web — so a farm built
    from them hides inside the global mode.  A real limitation of the
    supporter-distribution family the paper contrasts against."""
    assembler = WorldAssembler()
    base = generate_base_web(
        assembler, rng, BaseWebConfig(3_000, mean_outdegree=8.0)
    )
    farm = add_spam_farm(
        assembler, rng, base, 300, tag="farm:0", target_links_back=False
    )
    world = assembler.build()
    scores = supporter_deviation_scores(world.graph, min_supporters=8)
    assert scores[farm.target] < 0.5


def test_detector_flags_farm_not_organic(rng):
    assembler = WorldAssembler()
    base = generate_base_web(
        assembler, rng, BaseWebConfig(3_000, mean_outdegree=8.0)
    )
    farm = add_spam_farm(
        assembler, rng, base, 400, tag="farm:0", target_links_back=True
    )
    world = assembler.build()
    mask = SupporterDeviationDetector(threshold=0.85).detect(world.graph)
    assert mask[farm.target]
    # false-positive rate among connected organic hosts stays small
    assert mask[base.connected].mean() < 0.05


def test_min_supporters_gate(rng):
    # below the evidence bar nodes score exactly 0; lowering the bar
    # can only add scored nodes, never remove them
    g = WebGraph.from_edges(4, [(1, 0), (2, 0), (3, 0)])
    assert supporter_deviation_scores(g, min_supporters=8)[0] == 0.0
    assembler = WorldAssembler()
    base = generate_base_web(
        assembler, rng, BaseWebConfig(2_000, mean_outdegree=8.0)
    )
    world = assembler.build()
    high_bar = supporter_deviation_scores(world.graph, min_supporters=12)
    low_bar = supporter_deviation_scores(world.graph, min_supporters=4)
    assert ((high_bar > 0) <= (low_bar > 0)).all()
    assert (low_bar > 0).sum() > (high_bar > 0).sum()


def test_validation():
    g = WebGraph.from_edges(2, [(0, 1)])
    with pytest.raises(ValueError):
        supporter_deviation_scores(g, num_buckets=1)
    with pytest.raises(ValueError):
        supporter_deviation_scores(g, np.ones(5))
    with pytest.raises(ValueError):
        SupporterDeviationDetector(threshold=0.0)


def test_edgeless_graph_all_zero():
    g = WebGraph.empty(10)
    assert not supporter_deviation_scores(g).any()
