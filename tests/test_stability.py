"""Tests for the temporal-stability experiment (Section 3.4's claim)."""

import numpy as np
import pytest

from repro.eval import (
    resolve_hosts,
    run_stability_experiment,
    world_at_epoch,
)
from repro.synth import WorldConfig, default_good_core


@pytest.fixture(scope="module")
def config(tiny_config_module=None):
    return WorldConfig(
        seed=5,
        num_base_hosts=1_500,
        mean_outdegree=6.0,
        directory_size=40,
        gov_size=60,
        edu_countries={"us": (5, 4), "it": (4, 3)},
        portal_hosts=60,
        blog_hosts=70,
        uncovered_country_hosts=120,
        uncovered_country_edu=15,
        covered_country_hosts=100,
        covered_country_edu=15,
        num_cliques=2,
        clique_size_range=(5, 12),
        num_farms=12,
        farm_boosters_range=(10, 60),
        num_alliances=1,
        alliance_targets=2,
        alliance_boosters=15,
        num_expired=2,
        expired_links_range=(6, 15),
        num_paid_customers=3,
        paid_links_range=(3, 12),
    )


def test_epoch_zero_is_the_configured_world(config):
    a = world_at_epoch(config, 0)
    b = world_at_epoch(config, 0)
    assert a.graph == b.graph
    with pytest.raises(ValueError):
        world_at_epoch(config, -1)


def test_good_web_is_stable_across_epochs(config):
    """Good hosts keep their ids and names; only the spam layer moves."""
    w0 = world_at_epoch(config, 0)
    w1 = world_at_epoch(config, 1)
    assert w0.num_nodes == w1.num_nodes or True  # farm sizes may differ
    good0 = {w0.graph.name_of(int(i)) for i in w0.good_nodes()}
    good1 = {w1.graph.name_of(int(i)) for i in w1.good_nodes()}
    # base + community hosts persist (paid-link customers may differ,
    # as different good hosts get bought each epoch)
    overlap = len(good0 & good1) / len(good0)
    assert overlap > 0.98
    # communities are bit-identical
    assert np.array_equal(w0.group("directory"), w1.group("directory"))
    assert np.array_equal(w0.group("gov"), w1.group("gov"))


def test_spam_layer_churns(config):
    w0 = world_at_epoch(config, 0)
    w1 = world_at_epoch(config, 1)
    spam0 = {w0.graph.name_of(int(i)) for i in w0.spam_nodes()}
    spam1 = {w1.graph.name_of(int(i)) for i in w1.spam_nodes()}
    # essentially disjoint spam host populations (paid customers are
    # repurposed good hosts and may overlap)
    overlap = len(spam0 & spam1) / len(spam0)
    assert overlap < 0.05
    # epochs differ from each other too
    w2 = world_at_epoch(config, 2)
    spam2 = {w2.graph.name_of(int(i)) for i in w2.spam_nodes()}
    assert len(spam1 & spam2) / len(spam1) < 0.05


def test_core_carries_over_by_name(config):
    w0 = world_at_epoch(config, 0)
    w1 = world_at_epoch(config, 1)
    core0 = default_good_core(w0)
    names = [w0.graph.name_of(int(i)) for i in core0]
    resolved = resolve_hosts(w1, names)
    assert len(resolved) == len(core0)
    assert not w1.spam_mask[resolved].any()


def test_resolve_drops_gone_hosts(config):
    w1 = world_at_epoch(config, 1)
    resolved = resolve_hosts(
        w1, ["www.farm-0-beefed-d0.biz", w1.graph.name_of(0)]
    )
    assert len(resolved) == 1


def test_stability_experiment_shape(config):
    result = run_stability_experiment(config, epochs=3)
    core_resolved = result.column("core resolved %")
    black_resolved = result.column("blacklist resolved %")
    white_prec = result.column("white prec")
    black_recall = result.column("blacklist recall")
    # the good core persists fully; the black-list evaporates
    assert all(v == 100.0 for v in core_resolved)
    assert black_resolved[0] == 100.0
    assert all(v < 10.0 for v in black_resolved[1:])
    # white-list detection quality is stable across epochs
    assert max(white_prec) - min(white_prec) < 0.25
    # black-list detection collapses after epoch 0
    assert black_recall[0] > 0.2
    assert all(v < 0.15 for v in black_recall[1:])


def test_experiment_validation(config):
    with pytest.raises(ValueError):
        run_stability_experiment(config, epochs=0)
