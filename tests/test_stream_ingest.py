"""Streaming ingestion contracts: the differential battery.

The acceptance story, end to end but in-process: a chaos-mangled
stream — torn lines with retransmits, duplicates, bounded reordering,
late stragglers, one poisoned window, and a crash mid-ingest — must
produce **bitwise-identical** scores to the clean sequence, with the
poison quarantined to the DLQ under a typed reason while the daemon
keeps serving.  Re-ingesting a quarantined window is a no-op on
scores; a flood degrades the window size under backpressure and still
converges to the same graph; a concurrent WAL prune never perturbs a
batched apply; and the latency probe catches all three scripted
temporal attacks.
"""

import threading

import numpy as np
import pytest

from repro.core import estimate_spam_mass
from repro.eval import LatencyProbe
from repro.graph import WebGraph, write_graph_bundle, write_host_list
from repro.runtime.chaos import (
    ServeChaos,
    duplicate_stream_events,
    late_straggler_events,
    poison_stream_window,
    reorder_stream_events,
    torn_resend_stream,
)
from repro.runtime.checkpoint import save_solution
from repro.serve import (
    DaemonConfig,
    DeadLetterQueue,
    ScoringDaemon,
    StreamConfig,
    StreamIngestor,
)
from repro.synth import read_stream, synthesize_stream

N, ACTIVE = 100, 40
GAMMA = 0.85


def _daemon_config(**kw):
    return DaemonConfig(max_staleness=16, **kw)


def _stream_config(**kw):
    kw.setdefault("window", 16)
    kw.setdefault("max_lateness", 8)
    return StreamConfig(**kw)


@pytest.fixture(scope="module")
def base():
    rng = np.random.default_rng(7)
    edges = set()
    while len(edges) < 200:
        u, v = rng.integers(0, ACTIVE, 2)
        if u != v:
            edges.add((int(u), int(v)))
    graph = WebGraph.from_edges(N, sorted(edges))
    core = np.arange(0, 10, dtype=np.int64)
    estimates = estimate_spam_mass(graph, core, gamma=GAMMA)
    stream = synthesize_stream(
        graph,
        core=core,
        seed=3,
        num_events=300,
        boosters_per_attack=8,
        attack_stride=3,
    )
    return graph, core, estimates, sorted(edges), stream


@pytest.fixture(scope="module")
def world(base, tmp_path_factory):
    graph, core, estimates, _, stream = base
    root = tmp_path_factory.mktemp("stream-world")
    world_dir = root / "world"
    write_graph_bundle(graph, world_dir)
    write_host_list(
        [graph.name_of(int(i)) for i in core], world_dir / "core.hosts"
    )
    ckpt = root / "ckpt-template"
    save_solution(
        ckpt,
        np.stack([estimates.pagerank, estimates.core_pagerank], axis=1),
        fingerprint=graph.structural_fingerprint(),
        extra={"damping": 0.85, "gamma": GAMMA,
               "labels": ["pagerank", "core"]},
    )
    stream_path = root / "events.jsonl"
    stream.write(stream_path)
    return world_dir, ckpt, stream_path


def _fresh_ckpt(world, tmp_path):
    import shutil

    _, template, _ = world
    ckpt = tmp_path / "ckpt"
    shutil.copytree(template, ckpt)
    return ckpt


def _load(world, tmp_path, *, chaos=None, config=None, **stream_kw):
    """A daemon + ingestor pair on a fresh checkpoint copy."""
    world_dir, _, _ = world
    daemon = ScoringDaemon.load(
        world_dir,
        _fresh_ckpt(world, tmp_path),
        config=config or _daemon_config(),
        chaos=chaos,
    )
    ingestor = StreamIngestor(
        daemon, tmp_path / "state", config=_stream_config(), **stream_kw
    )
    return daemon, ingestor


@pytest.fixture(scope="module")
def clean(base, world, tmp_path_factory):
    """The reference run: the untouched stream, no faults, one pass."""
    tmp = tmp_path_factory.mktemp("clean-run")
    daemon, ingestor = _load(world, tmp)
    _, _, stream_path = world
    ingestor.ingest_file(stream_path)
    ingestor.flush()
    epoch = daemon.store.current
    return {
        "fingerprint": epoch.graph.structural_fingerprint(),
        "pagerank": epoch.estimates.pagerank.copy(),
        "core_pagerank": epoch.estimates.core_pagerank.copy(),
        "stats": ingestor.stats(),
    }


def _chaos_lines(base):
    """The full injector battery over the stream's wire lines."""
    graph, _, _, edges, stream = base
    touched = {(e.src, e.dst) for e in stream.events}
    surviving = [e for e in edges if e not in touched]
    lines = stream.lines()
    lines = torn_resend_stream(lines, seed=1, count=3, displacement=2)
    lines = duplicate_stream_events(lines, seed=2, count=4, displacement=3)
    lines = reorder_stream_events(lines, seed=3, count=6, max_shift=2)
    last_ts = max(e.ts for e in stream.events)
    lines = late_straggler_events(
        lines, seed=4, count=2, num_nodes=N, next_id=1000, ts=0
    )
    lines = poison_stream_window(
        lines, surviving, next_id=1100, ts=last_ts + 16 + 8 + 2, count=3
    )
    return lines


# ----------------------------------------------------------------------
# clean path
# ----------------------------------------------------------------------


def test_clean_ingest_matches_cold_solve(base, world, clean):
    """The streamed graph equals the replayed live set, scores match a
    cold estimate of it."""
    graph, core, _, edges, stream = base
    live = set(edges)
    for event in stream.events:
        (live.add if event.op == "+" else live.remove)(event.edge())
    final = WebGraph.from_edges(N, sorted(live))
    assert clean["fingerprint"] == final.structural_fingerprint()
    cold = estimate_spam_mass(final, core, gamma=GAMMA)
    np.testing.assert_allclose(
        clean["pagerank"], cold.pagerank, rtol=0, atol=1e-8
    )
    assert clean["stats"]["windows_quarantined"] == 0
    assert clean["stats"]["dlq_entries"] == 0
    assert clean["stats"]["events_consumed"] == len(stream.events)


def test_reingest_is_idempotent(world, tmp_path, clean):
    """A second pass over the same file resumes at EOF: pure no-op."""
    daemon, ingestor = _load(world, tmp_path)
    _, _, stream_path = world
    ingestor.ingest_file(stream_path)
    ingestor.flush()
    before = ingestor.stats()
    ingestor.ingest_file(stream_path)
    ingestor.flush()
    after = ingestor.stats()
    assert after == before
    assert np.array_equal(
        daemon.store.current.estimates.pagerank, clean["pagerank"]
    )


# ----------------------------------------------------------------------
# the differential battery
# ----------------------------------------------------------------------


def test_chaos_crash_resume_bitwise(base, world, tmp_path, clean):
    """Torn/dup/reorder/late/poison + a crash: bitwise-identical."""
    lines = _chaos_lines(base)
    chaos_path = tmp_path / "chaos.jsonl"
    chaos_path.write_text("\n".join(lines) + "\n")

    daemon, ingestor = _load(world, tmp_path)
    # first incarnation: ingest ~60% of the bytes, then crash (no
    # flush, no close — the journal and WAL are all that survives)
    raw = chaos_path.read_bytes()
    cut = len(raw) * 6 // 10
    with open(chaos_path, "rb") as fh:
        while fh.tell() < cut:
            start = fh.tell()
            line = fh.readline()
            if not line:
                break
            ingestor._position = fh.tell()
            ingestor.ingest_line(line.decode(), offset=start)
    del daemon, ingestor

    # second incarnation: same state dir, same file, runs to the end
    world_dir, _, _ = world
    daemon = ScoringDaemon.load(
        world_dir, tmp_path / "ckpt", config=_daemon_config()
    )
    ingestor = StreamIngestor(
        daemon, tmp_path / "state", config=_stream_config()
    )
    ingestor.ingest_file(chaos_path)
    ingestor.flush()

    epoch = daemon.store.current
    assert epoch.graph.structural_fingerprint() == clean["fingerprint"]
    assert np.array_equal(epoch.estimates.pagerank, clean["pagerank"])
    assert np.array_equal(
        epoch.estimates.core_pagerank, clean["core_pagerank"]
    )
    reasons = [e["reason"] for e in DeadLetterQueue(tmp_path / "state").entries()]
    assert reasons.count("bad-json") == 3  # the torn halves
    assert reasons.count("late") == 2  # the stragglers
    assert reasons.count("poison-delta") == 1  # the poisoned window
    stats = ingestor.stats()
    assert stats["windows_quarantined"] == 1
    assert stats["duplicates"] >= 4


def test_dlq_replay_is_noop_on_scores(base, world, tmp_path, clean):
    """Re-ingesting a quarantined window changes nothing: its event
    ids are consumed, so every line is a duplicate."""
    lines = _chaos_lines(base)
    chaos_path = tmp_path / "chaos.jsonl"
    chaos_path.write_text("\n".join(lines) + "\n")
    daemon, ingestor = _load(world, tmp_path)
    ingestor.ingest_file(chaos_path)
    ingestor.flush()
    epoch_before = daemon.store.current
    dlq = DeadLetterQueue(tmp_path / "state")
    windows = [e for e in dlq.entries() if e["reason"] == "poison-delta"]
    assert len(windows) == 1 and windows[0]["lines"]

    # replay through the *same* ingestor state (a new incarnation of
    # it): the quarantined ids are consumed, so every line is a
    # duplicate — the defining property that makes DLQ re-ingestion
    # after an operator inspection safe by default
    replayer = StreamIngestor(
        daemon, tmp_path / "state", config=_stream_config()
    )
    before = replayer.stats()
    for line in windows[0]["lines"]:
        replayer.ingest_line(line)
    replayer.flush()
    after = replayer.stats()
    epoch_after = daemon.store.current
    assert epoch_after.seq == epoch_before.seq
    assert np.array_equal(
        epoch_after.estimates.pagerank, clean["pagerank"]
    )
    assert after["duplicates"] - before["duplicates"] == len(
        windows[0]["lines"]
    )
    assert after["windows_committed"] == before["windows_committed"]
    assert after["events_consumed"] == before["events_consumed"]


def test_poison_window_quarantined_daemon_keeps_serving(
    base, world, tmp_path, clean
):
    """The poisoned window lands in the DLQ; queries stay available
    and later windows still commit."""
    graph, _, _, edges, stream = base
    touched = {(e.src, e.dst) for e in stream.events}
    surviving = [e for e in edges if e not in touched]
    lines = stream.lines()
    # poison the *middle* of the stream, then let it keep going: a
    # window re-inserting edges that already exist fails validation
    mid_ts = stream.events[len(stream.events) // 2].ts
    poison = poison_stream_window(
        [], surviving, next_id=1100, ts=mid_ts, count=3
    )
    cutoff = next(
        i for i, e in enumerate(stream.events) if e.ts > mid_ts
    )
    lines = lines[:cutoff] + poison + lines[cutoff:]
    chaos_path = tmp_path / "poisoned.jsonl"
    chaos_path.write_text("\n".join(lines) + "\n")

    daemon, ingestor = _load(world, tmp_path)
    ingestor.ingest_file(chaos_path)
    ingestor.flush()
    stats = ingestor.stats()
    assert stats["windows_quarantined"] >= 1
    entries = DeadLetterQueue(tmp_path / "state").entries()
    assert any(e["reason"] == "poison-delta" for e in entries)
    # serving never stopped: the current epoch answers queries and
    # carries windows committed *after* the quarantine
    assert stats["windows_committed"] > 0
    got = daemon.query_score(graph.name_of(3))
    assert got["mode"] == "full"
    assert daemon.store.current.seq == stats["windows_committed"]


def test_apply_failure_quarantines_and_serving_survives(
    base, world, tmp_path
):
    """Both warm and cold solves rejecting a durable window must not
    wedge the stream: the window is dead-lettered as 'apply-failed'
    and the daemon keeps answering from the last good epoch."""
    graph, _, _, _, stream = base
    chaos = ServeChaos(fail_apply_on=(1,), once=False)
    daemon, ingestor = _load(
        world,
        tmp_path,
        chaos=chaos,
        config=_daemon_config(allow_degrade=False, ingest_retries=1),
    )
    _, _, stream_path = world
    ingestor.ingest_file(stream_path)
    ingestor.flush()
    entries = DeadLetterQueue(tmp_path / "state").entries()
    assert any(e["reason"] == "apply-failed" for e in entries)
    assert ingestor.stats()["windows_quarantined"] >= 1
    got = daemon.query_score(graph.name_of(3))
    assert got["host"] == graph.name_of(3)


# ----------------------------------------------------------------------
# backpressure
# ----------------------------------------------------------------------


def test_flood_degrades_window_and_recovers(base, world, tmp_path):
    """A same-instant burst trips the flow control: the effective
    window shrinks under load, recovers after the flood drains, and
    the final graph still matches the clean replay."""
    graph, core, _, edges, _ = base
    flood_stream = synthesize_stream(
        graph,
        core=core,
        seed=5,
        num_events=260,
        attacks=(),
        burst=(80, 120),
    )
    path = tmp_path / "flood.jsonl"
    flood_stream.write(path)

    world_dir, _, _ = world
    daemon = ScoringDaemon.load(
        world_dir, _fresh_ckpt(world, tmp_path), config=_daemon_config()
    )
    ingestor = StreamIngestor(
        daemon,
        tmp_path / "state",
        config=StreamConfig(
            window=16, max_lateness=8, min_window=2, flood_threshold=48
        ),
    )
    min_cw = ingestor.config.window
    with open(path, "rb") as fh:
        offset = 0
        for line in fh:
            ingestor.ingest_line(line.decode(), offset=offset)
            offset += len(line)
            min_cw = min(min_cw, ingestor.stats()["effective_window"])
    ingestor.flush()
    assert min_cw < ingestor.config.window, "flood never degraded"
    assert ingestor.stats()["effective_window"] > min_cw, "never recovered"

    # windowing changed under pressure, so scores are not bitwise
    # against a fixed-window run — but the final graph must be, and
    # the scores must match a cold solve of it
    live = set(edges)
    for event in flood_stream.events:
        (live.add if event.op == "+" else live.remove)(event.edge())
    final = WebGraph.from_edges(N, sorted(live))
    epoch = daemon.store.current
    assert epoch.graph.structural_fingerprint() == final.structural_fingerprint()
    cold = estimate_spam_mass(final, core, gamma=GAMMA)
    np.testing.assert_allclose(
        epoch.estimates.pagerank, cold.pagerank, rtol=0, atol=1e-8
    )
    assert ingestor.stats()["windows_quarantined"] == 0


# ----------------------------------------------------------------------
# WAL interplay
# ----------------------------------------------------------------------


def test_concurrent_wal_prune_during_batched_apply(
    base, world, tmp_path, clean
):
    """An aggressive pruner racing the batched stream apply never
    perturbs the result: prune only drops records at or below the
    applied watermark.

    Batching changes the warm-start trajectory, so the reference is
    the *same* batched configuration without the pruner — those two
    must be bitwise-identical (and both reach the clean final graph).
    """
    world_dir, _, stream_path = world

    def _batched_run(tag, with_pruner):
        root = tmp_path / tag
        root.mkdir()
        daemon = ScoringDaemon.load(
            world_dir,
            _fresh_ckpt(world, root),
            config=_daemon_config(batch_deltas=4),
        )
        ingestor = StreamIngestor(
            daemon,
            root / "state",
            config=StreamConfig(window=16, max_lateness=8, apply_every=3),
        )
        stop = threading.Event()
        errors = []

        def _pruner():
            while not stop.is_set():
                try:
                    daemon.wal.prune()
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)
                    return

        thread = None
        if with_pruner:
            thread = threading.Thread(target=_pruner)
            thread.start()
        try:
            ingestor.ingest_file(stream_path)
            ingestor.flush()
        finally:
            if thread is not None:
                stop.set()
                thread.join(timeout=10)
        assert not errors
        return daemon

    racy = _batched_run("racy", with_pruner=True)
    quiet = _batched_run("quiet", with_pruner=False)
    a, b = racy.store.current, quiet.store.current
    assert a.graph.structural_fingerprint() == clean["fingerprint"]
    assert (
        a.graph.structural_fingerprint() == b.graph.structural_fingerprint()
    )
    assert np.array_equal(a.estimates.pagerank, b.estimates.pagerank)
    assert np.array_equal(
        a.estimates.core_pagerank, b.estimates.core_pagerank
    )
    # everything applied: a final prune empties the racy log entirely
    racy.wal.prune()
    records, _ = racy.wal.recover(repair=False)
    assert records == []


# ----------------------------------------------------------------------
# detection latency
# ----------------------------------------------------------------------


def test_latency_probe_catches_all_three_attacks(base, world, tmp_path):
    graph, core, _, _, _ = base
    stream = synthesize_stream(
        graph,
        core=core,
        seed=3,
        num_events=400,
        boosters_per_attack=12,
        attack_stride=3,
    )
    path = tmp_path / "attacks.jsonl"
    stream.write(path)
    probe = LatencyProbe(read_stream(path).attacks, rho=1.5, tau=0.9)

    world_dir, _, _ = world
    daemon = ScoringDaemon.load(
        world_dir, _fresh_ckpt(world, tmp_path), config=_daemon_config()
    )
    ingestor = StreamIngestor(
        daemon,
        tmp_path / "state",
        config=_stream_config(),
        on_commit=probe.observe,
    )
    ingestor.ingest_file(path)
    ingestor.flush()
    report = {v["kind"]: v for v in probe.report()}
    assert probe.all_caught(), report
    for verdict in report.values():
        assert verdict["events_until_caught"] >= 0
        assert verdict["caught_at_id"] >= verdict["onset_id"]
    # the gradual farm stays under the radar for a while by design:
    # onset alone must not trigger the gate in the same window
    assert report["gradual-farm"]["windows_until_caught"] >= 1
