"""Supervised fan-out under chaos: the acceptance suite for ISSUE 5.

Every scenario asserts two things at once:

1. **numbers are untouched** — the supervised Monte-Carlo estimate (or
   batched solve) is *bitwise* identical to the fault-free serial run,
   because the chunk plan and RNG streams are fixed before execution;
2. **the telemetry tells the truth** — each fault produces exactly the
   supervision events it should (``supervisor.retry``,
   ``supervisor.task_timeout``, ``supervisor.circuit_open``,
   ``supervisor.degraded``, ``supervisor.salvaged_chunks``) and a
   clean run produces none.

The worker count is taken from ``REPRO_TEST_WORKERS`` (default 2) so
the CI chaos matrix can sweep it; when
``REPRO_SUPERVISION_TELEMETRY_DIR`` is set, each test dumps its
captured event stream as JSON lines for artifact upload.
"""

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.errors import InjectedFault, SupervisionError
from repro.perf.engine import PagerankEngine
from repro.perf.parallel import _simulate_chunk, pagerank_montecarlo_parallel
from repro.runtime.chaos import ChaosWorker, FlakyCalls
from repro.runtime.retry import BackoffPolicy
from repro.runtime.supervisor import (
    CIRCUIT_STATES,
    CircuitBreaker,
    SupervisorPolicy,
    TaskSupervisor,
)

WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "2"))
WALKS = 400
SEED = 11

#: zero-sleep backoff so fault storms retry instantly in tests
FAST = BackoffPolicy(retries=4, base=0.0)


@pytest.fixture()
def supervision_telemetry(telemetry, request):
    """The standard telemetry fixture, plus a JSONL dump for CI.

    With ``REPRO_SUPERVISION_TELEMETRY_DIR`` set, the captured event
    stream is written as ``<dir>/<test-name>.jsonl`` after the test —
    the chaos-matrix CI job uploads these as its artifact.
    """
    yield telemetry
    out_dir = os.environ.get("REPRO_SUPERVISION_TELEMETRY_DIR")
    if not out_dir:
        return
    path = Path(out_dir) / f"{request.node.name}.jsonl"
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        for event in telemetry.sink.events:
            fh.write(
                json.dumps(
                    {"event": event.name, "attrs": dict(event.attrs)},
                    sort_keys=True,
                )
                + "\n"
            )


@pytest.fixture(scope="module")
def baseline(tiny_world):
    """The fault-free serial reference estimate."""
    return pagerank_montecarlo_parallel(
        tiny_world.graph, num_walks=WALKS, workers=None, seed=SEED
    )


def _supervisor_events(sink):
    return [e for e in sink.events if e.name.startswith("supervisor.")]


def _run(graph, chunk_fn=None, supervisor=None, workers=WORKERS):
    return pagerank_montecarlo_parallel(
        graph,
        num_walks=WALKS,
        workers=workers,
        seed=SEED,
        supervisor=supervisor,
        _chunk_fn=chunk_fn,
    )


# ----------------------------------------------------------------------
# clean paths: supervision must be invisible
# ----------------------------------------------------------------------


def test_clean_serial_run_emits_no_supervisor_events(
    supervision_telemetry, tiny_world, baseline
):
    result = _run(tiny_world.graph, workers=None)
    assert np.array_equal(result.scores, baseline.scores)
    assert _supervisor_events(supervision_telemetry.sink) == []


def test_clean_pool_run_is_bitwise_identical_and_silent(
    supervision_telemetry, tiny_world, baseline
):
    result = _run(tiny_world.graph)
    assert np.array_equal(result.scores, baseline.scores)
    assert _supervisor_events(supervision_telemetry.sink) == []


# ----------------------------------------------------------------------
# worker-kill mid-plan: salvage completed chunks, re-execute the rest
# ----------------------------------------------------------------------


def test_worker_kill_mid_plan_salvages_completed_chunks(
    supervision_telemetry, tiny_world, baseline, tmp_path
):
    chaos = ChaosWorker(_simulate_chunk, kill_on=(2,), once_dir=tmp_path)
    sup = TaskSupervisor(SupervisorPolicy(max_task_retries=3, backoff=FAST))
    result = _run(tiny_world.graph, chunk_fn=chaos, supervisor=sup)
    assert np.array_equal(result.scores, baseline.scores)

    sink = supervision_telemetry.sink
    salvaged = sink.named("supervisor.salvaged_chunks")
    assert len(salvaged) == 1
    attrs = salvaged[0].attrs
    assert attrs["tasks"] == 8
    assert attrs["salvaged"] + attrs["reexecuted"] == attrs["tasks"]
    # the kill cost the plan something, but never everything: completed
    # chunks are salvaged, only in-flight/killed ones re-execute
    assert 1 <= attrs["reexecuted"] < attrs["tasks"]
    assert attrs["salvaged"] >= 1


# ----------------------------------------------------------------------
# worker-hang: the watchdog abandons the task at its deadline
# ----------------------------------------------------------------------


def test_worker_hang_is_abandoned_at_deadline(
    supervision_telemetry, tiny_world, baseline
):
    # hang fires only inside a pool worker, so the in-process
    # re-execution after abandonment completes the chunk normally
    chaos = ChaosWorker(_simulate_chunk, hang_on=(1,), hang_seconds=60.0)
    sup = TaskSupervisor(
        SupervisorPolicy(
            max_task_retries=3,
            task_timeout=1.5,
            backoff=FAST,
            poll_interval=0.02,
        )
    )
    result = _run(tiny_world.graph, chunk_fn=chaos, supervisor=sup)
    assert np.array_equal(result.scores, baseline.scores)

    sink = supervision_telemetry.sink
    timeouts = sink.named("supervisor.task_timeout")
    assert [e.attrs["task"] for e in timeouts] == [1]
    assert timeouts[0].attrs["deadline"] == pytest.approx(1.5)
    salvaged = sink.named("supervisor.salvaged_chunks")
    assert len(salvaged) == 1
    assert salvaged[0].attrs["reexecuted"] >= 1
    assert salvaged[0].attrs["salvaged"] >= 1


# ----------------------------------------------------------------------
# slow worker within its deadline: tolerated, never retried
# ----------------------------------------------------------------------


def test_slow_worker_within_deadline_is_tolerated(
    supervision_telemetry, tiny_world, baseline
):
    chaos = ChaosWorker(_simulate_chunk, slow_on=(3,), slow_seconds=0.05)
    sup = TaskSupervisor(
        SupervisorPolicy(max_task_retries=3, task_timeout=30.0, backoff=FAST)
    )
    result = _run(tiny_world.graph, chunk_fn=chaos, supervisor=sup)
    assert np.array_equal(result.scores, baseline.scores)
    assert _supervisor_events(supervision_telemetry.sink) == []


# ----------------------------------------------------------------------
# circuit breaker: repeated pool deaths degrade pool -> serial
# ----------------------------------------------------------------------


def test_circuit_trip_degrades_to_serial_without_changing_results(
    supervision_telemetry, tiny_world, baseline
):
    # no once_dir: chunk 0 kills its worker on *every* pool execution,
    # so each rebuilt pool dies again until the breaker opens; the
    # kill injector is a no-op in-process, so serial execution finishes
    chaos = ChaosWorker(_simulate_chunk, kill_on=(0,))
    sup = TaskSupervisor(
        SupervisorPolicy(
            max_task_retries=5, circuit_threshold=3, backoff=FAST
        )
    )
    with pytest.warns(RuntimeWarning, match="sequentially"):
        result = _run(tiny_world.graph, chunk_fn=chaos, supervisor=sup)
    assert np.array_equal(result.scores, baseline.scores)

    sink = supervision_telemetry.sink
    opened = sink.named("supervisor.circuit_open")
    assert len(opened) == 1
    assert opened[0].attrs["consecutive_failures"] == 3
    degraded = sink.named("supervisor.degraded")
    assert len(degraded) == 1
    assert degraded[0].attrs["reason"] == "circuit-open"
    salvaged = sink.named("supervisor.salvaged_chunks")
    assert len(salvaged) == 1
    assert salvaged[0].attrs["tasks"] == 8
    # the event stream tells the degradation story in order
    names = [e.name for e in _supervisor_events(sink)]
    assert names.index("supervisor.circuit_open") < names.index(
        "supervisor.degraded"
    )
    assert names[-1] == "supervisor.salvaged_chunks"


def test_circuit_state_gauge_tracks_transitions(
    supervision_telemetry, tiny_world, baseline
):
    """``supervisor.circuit_state`` is a dashboard gauge, not an event
    stream: it must read ``closed`` after a clean run and land on
    ``degraded`` once a trip forced the serial fallback."""
    metrics = supervision_telemetry.metrics
    _run(tiny_world.graph, supervisor=TaskSupervisor())
    assert metrics.value("supervisor.circuit_state") == (
        CIRCUIT_STATES["closed"]
    )

    chaos = ChaosWorker(_simulate_chunk, kill_on=(0,))
    sup = TaskSupervisor(
        SupervisorPolicy(
            max_task_retries=5, circuit_threshold=3, backoff=FAST
        )
    )
    with pytest.warns(RuntimeWarning, match="sequentially"):
        _run(tiny_world.graph, chunk_fn=chaos, supervisor=sup)
    assert metrics.value("supervisor.circuit_state") == (
        CIRCUIT_STATES["degraded"]
    )
    assert set(CIRCUIT_STATES.values()) == {0, 1, 2}


def test_no_degrade_turns_circuit_trip_into_an_error(
    supervision_telemetry, tiny_world
):
    chaos = ChaosWorker(_simulate_chunk, kill_on=(0,))
    sup = TaskSupervisor(
        SupervisorPolicy(
            max_task_retries=5,
            circuit_threshold=2,
            allow_degrade=False,
            backoff=FAST,
        )
    )
    # fail-fast semantics: the *first* pool break already requires
    # degradation to make progress, so it raises immediately
    with pytest.raises(SupervisionError, match="disallowed") as excinfo:
        _run(tiny_world.graph, chunk_fn=chaos, supervisor=sup)
    # the partial report rides on the exception for postmortems
    assert excinfo.value.report is not None
    assert excinfo.value.report.pool_failures >= 1


# ----------------------------------------------------------------------
# plain task faults: retry with backoff, fail only on budget exhaustion
# ----------------------------------------------------------------------


def test_transient_task_fault_is_retried_and_salvage_reported(
    supervision_telemetry, tiny_world, baseline, tmp_path
):
    # fail_on fires everywhere; once_dir makes it a one-shot transient
    chaos = ChaosWorker(
        _simulate_chunk, fail_on=(4,), once_dir=tmp_path
    )
    sup = TaskSupervisor(SupervisorPolicy(max_task_retries=2, backoff=FAST))
    result = _run(tiny_world.graph, chunk_fn=chaos, supervisor=sup)
    assert np.array_equal(result.scores, baseline.scores)

    sink = supervision_telemetry.sink
    retries = sink.named("supervisor.retry")
    assert [e.attrs["task"] for e in retries] == [4]
    assert retries[0].attrs["error"] == "InjectedFault"
    salvaged = sink.named("supervisor.salvaged_chunks")
    assert len(salvaged) == 1
    assert salvaged[0].attrs["reexecuted"] == 1
    assert salvaged[0].attrs["salvaged"] == 7


def test_retry_budget_exhaustion_raises_supervision_error(
    supervision_telemetry, tiny_world
):
    # no once_dir: chunk 5 fails every execution, pool and serial alike
    chaos = ChaosWorker(_simulate_chunk, fail_on=(5,))
    sup = TaskSupervisor(SupervisorPolicy(max_task_retries=1, backoff=FAST))
    with pytest.raises(SupervisionError, match="retry budget"):
        _run(tiny_world.graph, chunk_fn=chaos, supervisor=sup, workers=None)
    retries = supervision_telemetry.sink.named("supervisor.retry")
    assert len(retries) == 1  # one retry allowed, then the budget is gone


# ----------------------------------------------------------------------
# supervised solve_many: column batches under the same supervision
# ----------------------------------------------------------------------


def test_supervised_solve_many_is_bitwise_identical(
    supervision_telemetry, tiny_world
):
    graph = tiny_world.graph
    vs = [None, np.ones(graph.num_nodes) / graph.num_nodes]
    engine = PagerankEngine(cache_size=4)
    plain = engine.solve_many(graph, vs, tol=1e-10)
    supervised = engine.solve_many(
        graph, vs, tol=1e-10, supervisor=TaskSupervisor()
    )
    assert np.array_equal(plain.scores, supervised.scores)
    assert supervised.converged.all()
    assert _supervisor_events(supervision_telemetry.sink) == []


def test_supervised_solve_many_retries_flaky_column(
    supervision_telemetry, tiny_world, monkeypatch
):
    import repro.perf.engine as engine_mod

    graph = tiny_world.graph
    vs = [None, np.ones(graph.num_nodes) / graph.num_nodes]
    engine = PagerankEngine(cache_size=4)
    plain = engine.solve_many(graph, vs, tol=1e-10)

    flaky = FlakyCalls(
        engine_mod._solve_column_task, plan={1: InjectedFault}
    )
    monkeypatch.setattr(engine_mod, "_solve_column_task", flaky)
    sup = TaskSupervisor(SupervisorPolicy(max_task_retries=2, backoff=FAST))
    supervised = engine.solve_many(graph, vs, tol=1e-10, supervisor=sup)
    assert np.array_equal(plain.scores, supervised.scores)

    sink = supervision_telemetry.sink
    retries = sink.named("supervisor.retry")
    assert len(retries) == 1
    assert retries[0].attrs["label"] == "solve_many"
    assert len(sink.named("supervisor.salvaged_chunks")) == 1


def test_solve_many_rejects_supervisor_with_runtime_policy(tiny_world):
    from repro.runtime.resilient import RuntimePolicy

    engine = PagerankEngine(cache_size=4)
    with pytest.raises(ValueError, match="supervisor"):
        engine.solve_many(
            tiny_world.graph,
            [None],
            policy=RuntimePolicy(),
            supervisor=TaskSupervisor(),
        )


# ----------------------------------------------------------------------
# unit coverage: breaker and policy validation
# ----------------------------------------------------------------------


def test_circuit_breaker_opens_once_and_resets_on_success():
    breaker = CircuitBreaker(3)
    assert not breaker.record_failure()
    assert not breaker.record_failure()
    breaker.record_success()  # consecutive counting: success resets
    assert not breaker.record_failure()
    assert not breaker.record_failure()
    assert breaker.record_failure()  # third consecutive opens it
    assert breaker.is_open
    assert not breaker.record_failure()  # opens exactly once


@pytest.mark.parametrize(
    "kwargs",
    [
        {"max_task_retries": -1},
        {"task_timeout": 0.0},
        {"task_timeout": -2.0},
        {"circuit_threshold": 0},
        {"poll_interval": 0.0},
    ],
)
def test_supervisor_policy_validates_its_knobs(kwargs):
    with pytest.raises(ValueError):
        SupervisorPolicy(**kwargs)


def test_empty_plan_is_a_noop(supervision_telemetry):
    report = TaskSupervisor().run(lambda: None, [])
    assert report.results == []
    assert report.salvaged == 0
    assert _supervisor_events(supervision_telemetry.sink) == []
