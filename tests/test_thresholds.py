"""Tests for threshold selection and bootstrap uncertainty."""

import numpy as np
import pytest

from repro.eval import EvaluationSample, LABEL_GOOD, LABEL_SPAM
from repro.eval.thresholds import (
    BootstrapInterval,
    bootstrap_precision,
    choose_tau,
    detection_volume,
)


def make_sample():
    """20 hosts: top mass decile pure spam, middle mixed, bottom good."""
    nodes = np.arange(20)
    mass = np.linspace(-1.0, 1.0, 20)
    labels = []
    for m in mass:
        if m > 0.6:
            labels.append(LABEL_SPAM)
        elif m > 0.0:
            labels.append(LABEL_SPAM if int(m * 100) % 2 else LABEL_GOOD)
        else:
            labels.append(LABEL_GOOD)
    anomalous = np.zeros(20, dtype=bool)
    return EvaluationSample(nodes, labels, anomalous), mass


def test_choose_tau_meets_target():
    sample, mass = make_sample()
    chosen = choose_tau(sample, mass, target_precision=1.0, min_evidence=3)
    assert chosen is not None
    tau, point = chosen
    assert point.precision == 1.0
    # the loosest qualifying threshold is returned (max recall)
    looser = [t for t in (0.0, 0.1, 0.23) if t < tau]
    for t in looser:
        from repro.eval import precision_at

        assert precision_at(sample, mass, t).precision < 1.0


def test_choose_tau_none_when_unreachable():
    sample, mass = make_sample()
    # demand perfect precision with overwhelming evidence
    assert choose_tau(sample, mass, 1.0, min_evidence=15) is None


def test_choose_tau_validation():
    sample, mass = make_sample()
    with pytest.raises(ValueError):
        choose_tau(sample, mass, 0.0)


def test_bootstrap_interval_contains_point(rng):
    sample, mass = make_sample()
    interval = bootstrap_precision(
        sample, mass, tau=0.3, num_resamples=500, rng=rng
    )
    assert isinstance(interval, BootstrapInterval)
    assert interval.contains(interval.point)
    assert 0.0 <= interval.lower <= interval.upper <= 1.0
    assert interval.width > 0  # finite evidence -> real uncertainty


def test_bootstrap_narrows_with_more_evidence(rng):
    """A sample 10x the size yields a much tighter interval."""

    def big_sample(copies):
        nodes = np.arange(20 * copies)
        base_sample, base_mass = make_sample()
        labels = list(base_sample.labels) * copies
        mass = np.tile(base_mass, copies)
        return (
            EvaluationSample(
                nodes, labels, np.zeros(20 * copies, dtype=bool)
            ),
            mass,
        )

    s1, m1 = big_sample(1)
    s10, m10 = big_sample(10)
    w1 = bootstrap_precision(s1, m1, 0.3, num_resamples=400, rng=rng).width
    w10 = bootstrap_precision(s10, m10, 0.3, num_resamples=400, rng=rng).width
    assert w10 < w1 / 2


def test_bootstrap_validation(rng):
    sample, mass = make_sample()
    with pytest.raises(ValueError):
        bootstrap_precision(sample, mass, 0.3, num_resamples=5, rng=rng)
    with pytest.raises(ValueError):
        bootstrap_precision(sample, mass, 0.3, level=1.5, rng=rng)


def test_bootstrap_covers_population_value(small_ctx, rng):
    """The CI from a half sample should (usually) cover the
    full-population precision — checked at a mid threshold."""
    from repro.eval import build_evaluation_sample, precision_at

    tau = 0.45
    population = precision_at(
        small_ctx.sample, small_ctx.estimates.relative, tau
    ).precision
    eligible_nodes = np.flatnonzero(small_ctx.eligible_mask)
    half = build_evaluation_sample(
        small_ctx.world, eligible_nodes, rng, fraction=0.5
    )
    interval = bootstrap_precision(
        half,
        small_ctx.estimates.relative,
        tau,
        num_resamples=800,
        rng=rng,
    )
    assert interval.contains(population)


def test_detection_volume():
    mass = np.array([0.99, 0.5, -1.0, 0.98])
    eligible = np.array([True, True, True, False])
    assert detection_volume(mass, eligible, 0.9) == 1
    assert detection_volume(mass, eligible, 0.0) == 2
    with pytest.raises(ValueError):
        detection_volume(mass, eligible[:2], 0.5)
