"""Unit tests for the TrustRank baseline."""

import numpy as np
import pytest

from repro.baselines import (
    inverse_pagerank,
    select_seed,
    trustrank,
    trustrank_detector,
)
from repro.core import pagerank
from repro.datasets import figure2_graph
from repro.graph import WebGraph


def test_inverse_pagerank_ranks_broadcasters_high():
    # 0 reaches everything (best seed candidate); 3 reaches nothing
    g = WebGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
    inv = inverse_pagerank(g)
    assert inv[0] == max(inv)  # trust seeded at 0 would cover the web
    assert inv[3] == min(inv)


def test_select_seed_uses_oracle():
    g = WebGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
    selection = select_seed(g, lambda node: node != 3, seed_budget=2)
    assert len(selection.inspected) == 2
    assert 3 not in selection.seed
    with pytest.raises(ValueError):
        select_seed(g, lambda node: True, seed_budget=0)


def test_trustrank_flows_from_seed():
    example = figure2_graph()
    result = trustrank(example.graph, lambda n: True, seed=example.good_core)
    trust = result.trust
    # seed members and their out-neighbours have trust; unreachable spam
    # nodes have none
    assert trust[example.id_of("g0")] > 0
    assert trust[example.id_of("x")] > 0  # reachable via g0
    assert trust[example.id_of("s0")] == pytest.approx(0.0, abs=1e-15)
    assert trust[example.id_of("s1")] == pytest.approx(0.0, abs=1e-15)


def test_trustrank_seed_is_normalized_jump():
    """TrustRank uses a normalized jump over the seed (unlike the
    deliberately unnormalized mass core)."""
    example = figure2_graph()
    result = trustrank(example.graph, lambda n: True, seed=example.good_core)
    v = np.zeros(example.graph.num_nodes)
    v[example.good_core] = 1.0 / len(example.good_core)
    expected = pagerank(example.graph, v).scores
    assert np.allclose(result.trust, expected)


def test_trustrank_empty_seed_rejected():
    g = WebGraph.from_edges(2, [(0, 1)])
    with pytest.raises(ValueError, match="seed is empty"):
        trustrank(g, lambda n: False, seed_budget=2)


def test_trustrank_ranked_order():
    example = figure2_graph()
    result = trustrank(example.graph, lambda n: True, seed=example.good_core)
    ranked = result.ranked()
    assert result.trust[ranked[0]] >= result.trust[ranked[-1]]


def test_trustrank_full_pipeline_on_world(tiny_world):
    world = tiny_world
    result = trustrank(
        world.graph,
        lambda node: not world.spam_mask[node],
        seed_budget=50,
    )
    assert len(result.seed) > 0
    assert len(result.seed) <= 50
    # trust concentrates on good nodes: mean trust of good nodes beats
    # mean trust of spam nodes
    good_trust = result.trust[~world.spam_mask].mean()
    spam_trust = result.trust[world.spam_mask].mean()
    assert good_trust > spam_trust


def test_trustrank_detector_flags_untrusted_high_pr(small_ctx):
    trust = trustrank(
        small_ctx.graph,
        lambda node: not small_ctx.world.spam_mask[node],
        seed_budget=100,
    )
    mask = trustrank_detector(
        small_ctx.graph,
        trust.trust,
        small_ctx.estimates.pagerank,
        rho=10.0,
    )
    # flags something, and spam is over-represented among the flags
    assert mask.any()
    flagged_spam_rate = small_ctx.world.spam_mask[mask].mean()
    base_rate = small_ctx.world.spam_mask.mean()
    assert flagged_spam_rate > base_rate


def test_trustrank_detector_shape_check(small_ctx):
    with pytest.raises(ValueError):
        trustrank_detector(
            small_ctx.graph,
            np.ones(3),
            small_ctx.estimates.pagerank,
        )
