"""Tests for the TrustRank-vs-mass study (demotion vs detection)."""

import numpy as np
import pytest

from repro.eval import demotion_quality, run_trustrank_study


def test_demotion_quality_basics():
    ranking = np.array([3, 1, 0, 2])
    spam = np.array([True, False, False, True])
    assert demotion_quality(ranking, spam, 2) == pytest.approx(0.5)
    assert demotion_quality(ranking, spam, 4) == pytest.approx(0.5)
    with pytest.raises(ValueError):
        demotion_quality(ranking, spam, 0)


def test_study_shape(small_ctx):
    result = run_trustrank_study(small_ctx, budgets=(20, 200))
    rows = {row[0]: row for row in result.rows}
    baseline = rows["PageRank (no defense)"]
    # the undefended top-k contains plenty of spam ...
    assert baseline[2] > 0.15
    # ... TrustRank demotes it hard, even with a tiny seed
    tiny = rows["TrustRank, budget 20"]
    assert tiny[2] < baseline[2] / 2
    # mass-based candidate removal also cleans the top vs no defense
    mass = rows["spam mass (tau=0.98)"]
    assert mass[2] <= baseline[2]
    # after anomaly repair, mass detection precision approaches 1
    repaired = rows["spam mass (tau=0.98, anomalies repaired)"]
    assert repaired[3] >= 0.95
    # seeds respect budgets and are spam-free by construction
    assert tiny[1] <= 20


def test_study_seed_grows_with_budget(small_ctx):
    result = run_trustrank_study(small_ctx, budgets=(20, 200))
    sizes = [
        row[1]
        for row in result.rows
        if isinstance(row[0], str) and row[0].startswith("TrustRank")
    ]
    assert sizes[0] < sizes[1]
