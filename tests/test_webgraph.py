"""Unit tests for the CSR web-graph model."""

import numpy as np
import pytest

from repro.graph import GraphStats, WebGraph


def test_from_edges_basic():
    g = WebGraph.from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 2)])
    assert g.num_nodes == 4
    assert g.num_edges == 4
    assert list(g.out_neighbors(0)) == [1, 2]
    assert list(g.out_neighbors(3)) == []


def test_from_edges_drops_self_links():
    g = WebGraph.from_edges(3, [(0, 0), (0, 1), (1, 1)])
    assert g.num_edges == 1
    assert g.has_edge(0, 1)
    assert not g.has_edge(0, 0)


def test_from_edges_collapses_duplicates():
    g = WebGraph.from_edges(2, [(0, 1), (0, 1), (0, 1)])
    assert g.num_edges == 1


def test_from_edges_rejects_out_of_range():
    with pytest.raises(ValueError):
        WebGraph.from_edges(2, [(0, 5)])
    with pytest.raises(ValueError):
        WebGraph.from_edges(2, [(-1, 0)])


def test_from_edges_rejects_negative_node_count():
    with pytest.raises(ValueError):
        WebGraph.from_edges(-1, [])


def test_empty_graph():
    g = WebGraph.empty(5)
    assert g.num_nodes == 5
    assert g.num_edges == 0
    assert g.isolated_mask().all()


def test_zero_node_graph_rejected():
    from repro.errors import EmptyGraphError

    with pytest.raises(EmptyGraphError):
        WebGraph.empty(0)
    with pytest.raises(EmptyGraphError):
        WebGraph.from_edges(0, [])
    # the typed error is still a ValueError for legacy handlers
    with pytest.raises(ValueError):
        WebGraph.from_edges(0, [])


def test_in_neighbors_and_degrees():
    g = WebGraph.from_edges(4, [(0, 2), (1, 2), (3, 2), (2, 0)])
    assert sorted(g.in_neighbors(2).tolist()) == [0, 1, 3]
    assert g.in_degree(2) == 3
    assert g.out_degree(2) == 1
    assert g.in_degree(3) == 0
    assert np.array_equal(g.out_degree(), [1, 1, 1, 1])


def test_has_edge():
    g = WebGraph.from_edges(3, [(0, 1), (1, 2)])
    assert g.has_edge(0, 1)
    assert not g.has_edge(1, 0)
    assert not g.has_edge(0, 2)


def test_edges_iterator_roundtrip():
    edges = [(0, 1), (0, 3), (2, 1), (3, 0)]
    g = WebGraph.from_edges(4, edges)
    assert sorted(g.edges()) == sorted(edges)


def test_dangling_and_isolated_masks():
    # 0 -> 1, 2 isolated; 1 dangling (in only)
    g = WebGraph.from_edges(3, [(0, 1)])
    assert list(g.dangling_mask()) == [False, True, True]
    assert list(g.isolated_mask()) == [False, False, True]


def test_transpose_roundtrip():
    edges = [(0, 1), (1, 2), (2, 0), (0, 2)]
    g = WebGraph.from_edges(3, edges)
    t = g.transpose()
    assert sorted(t.edges()) == sorted((v, u) for u, v in edges)
    # transposing twice restores the original
    assert t.transpose() == g


def test_transpose_preserves_names():
    g = WebGraph.from_edges(2, [(0, 1)], names=["a.com", "b.com"])
    assert g.transpose().names == ("a.com", "b.com")


def test_stats_match_paper_quantities():
    # 4 nodes: 0->1; 2 has outlink to 1; 3 isolated
    g = WebGraph.from_edges(4, [(0, 1), (2, 1)])
    stats = g.stats()
    assert isinstance(stats, GraphStats)
    assert stats.num_nodes == 4
    assert stats.num_edges == 2
    assert stats.num_no_inlinks == 3  # 0, 2, 3
    assert stats.num_no_outlinks == 2  # 1, 3
    assert stats.num_isolated == 1  # 3
    assert stats.frac_isolated == pytest.approx(0.25)
    d = stats.as_dict()
    assert d["num_edges"] == 2
    assert d["frac_no_outlinks"] == pytest.approx(0.5)


def test_names_access():
    g = WebGraph.from_edges(2, [(0, 1)], names=["x.com", "y.com"])
    assert g.name_of(0) == "x.com"
    unnamed = WebGraph.from_edges(2, [(0, 1)])
    assert unnamed.name_of(1) == "node1"


def test_names_length_mismatch_rejected():
    with pytest.raises(ValueError):
        WebGraph.from_edges(2, [(0, 1)], names=["only-one.com"])


def test_contains_and_len():
    g = WebGraph.empty(3)
    assert 0 in g and 2 in g
    assert 3 not in g
    assert "0" not in g
    assert len(g) == 3


def test_node_range_checks():
    g = WebGraph.empty(2)
    with pytest.raises(IndexError):
        g.out_neighbors(2)
    with pytest.raises(IndexError):
        g.in_neighbors(-1)


def test_validation_rejects_bad_csr():
    with pytest.raises(ValueError):
        WebGraph(np.array([0, 2]), np.array([1]))  # indptr[-1] mismatch
    with pytest.raises(ValueError):
        WebGraph(np.array([1, 1]), np.array([], dtype=np.int64))  # not 0-start
    with pytest.raises(ValueError):
        WebGraph(np.array([0, 1]), np.array([0]))  # self-link
    with pytest.raises(ValueError):
        WebGraph(np.array([0, 2]), np.array([1, 1]))  # duplicate in row


def test_arrays_are_read_only():
    g = WebGraph.from_edges(2, [(0, 1)])
    with pytest.raises(ValueError):
        g.indptr[0] = 5
    with pytest.raises(ValueError):
        g.indices[0] = 0
    with pytest.raises(ValueError):
        g.out_degree()[0] = 7


def test_equality_and_hash():
    a = WebGraph.from_edges(3, [(0, 1), (1, 2)])
    b = WebGraph.from_edges(3, [(1, 2), (0, 1)])
    c = WebGraph.from_edges(3, [(0, 1)])
    assert a == b
    assert a != c
    assert hash(a) == hash(b)
    assert a != "not a graph"
