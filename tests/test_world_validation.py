"""Tests for synthetic-world invariant validation."""

import numpy as np
import pytest

from repro.graph import WebGraph
from repro.synth import (
    SyntheticWorld,
    WorldConfig,
    assert_valid_world,
    build_world,
    validate_world,
)


def test_stock_worlds_are_valid(tiny_world):
    assert validate_world(tiny_world) == []
    assert_valid_world(tiny_world)


def test_small_stock_world_is_valid():
    assert validate_world(build_world(WorldConfig.small())) == []


def make_world(groups, spam_ids=(2, 3), names=None):
    graph = WebGraph.from_edges(
        5, [(0, 1), (2, 3), (3, 2)], names=names
    )
    spam_mask = np.zeros(5, dtype=bool)
    spam_mask[list(spam_ids)] = True
    groups = {k: np.asarray(v, dtype=np.int64) for k, v in groups.items()}
    return SyntheticWorld(graph, spam_mask, groups)


def test_detects_spam_all_mismatch():
    world = make_world({"spam:all": [2]})  # node 3 missing
    issues = validate_world(world)
    assert any("missing from 'spam:all'" in issue for issue in issues)
    world = make_world({"spam:all": [0, 2, 3]})  # node 0 is good
    issues = validate_world(world)
    assert any("not spam-labeled" in issue for issue in issues)


def test_detects_spam_in_good_family():
    world = make_world({"gov": [0, 2]})
    issues = validate_world(world)
    assert any("'gov' holds 1 spam hosts" in issue for issue in issues)


def test_detects_good_in_farm_group():
    world = make_world(
        {"farm:0:target": [2], "farm:0:boosters": [0, 3]}
    )
    issues = validate_world(world)
    assert any("non-spam hosts" in issue for issue in issues)


def test_detects_orphan_boosters():
    world = make_world({"farm:9:boosters": [2, 3]})
    issues = validate_world(world)
    assert any("no matching" in issue for issue in issues)


def test_detects_multi_target_group():
    world = make_world(
        {"farm:0:target": [2, 3], "farm:0:boosters": [2, 3]}
    )
    issues = validate_world(world)
    assert any("exactly one node" in issue for issue in issues)


def test_detects_out_of_range_group():
    world = make_world({"anomalous": [0, 99]})
    # np.unique on [0, 99] is fine; range check fires
    issues = validate_world(world)
    assert any("out-of-range" in issue for issue in issues)


def test_detects_duplicate_names():
    world = make_world({}, names=["a", "b", "a", "c", "d"])
    issues = validate_world(world)
    assert any("not unique" in issue for issue in issues)


def test_detects_hijacked_spam_sources():
    world = make_world({"farm:0:hijacked_sources": [2]})
    issues = validate_world(world)
    assert any("victims" in issue for issue in issues)


def test_assert_raises_with_details():
    world = make_world({"gov": [2]})
    with pytest.raises(AssertionError, match="invalid synthetic world"):
        assert_valid_world(world)


def test_empty_group_reported():
    world = make_world({"blogs": []})
    # empty arrays are rejected at SyntheticWorld level? no — group ok
    issues = validate_world(world)
    assert any("empty" in issue for issue in issues)


def test_session_world_is_valid(small_ctx):
    assert validate_world(small_ctx.world) == []
